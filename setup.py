"""Setuptools entry point.

A ``setup.py`` (with no ``[build-system]`` table in ``pyproject.toml``)
keeps ``pip install -e .`` working on offline machines whose setuptools
predates built-in ``bdist_wheel`` support and that lack the ``wheel``
package: pip falls back to the legacy ``setup.py develop`` path, which
needs neither.
"""

from setuptools import setup

setup()
