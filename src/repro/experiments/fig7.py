"""Figure 7 — prediction MSE boxplots (thin wrapper).

The Monte-Carlo computation lives in :mod:`repro.experiments.fig6`
(Figures 6 and 7 share one run); this module re-exports the MSE table
builder for symmetry with the benchmark layout.
"""

from __future__ import annotations

from .fig6 import PAPER_THETAS, mse_table, run_fig6_fig7

__all__ = ["PAPER_THETAS", "mse_table", "run_fig6_fig7"]
