"""The runtime engine: task insertion, dependency resolution, execution.

:class:`Runtime` implements StarPU's sequential-task-flow model on a
thread pool. ``insert_task`` is non-blocking (with the ``threads``
engine): it registers accesses, infers dependencies via
:class:`~repro.runtime.graph.DependencyTracker`, and enqueues the task
when its dependency count reaches zero. Workers pull from a pluggable
ready queue; completion cascades decrement dependents' counters.

Error model: a failing codelet marks the task FAILED, cancels nothing
(already-ready tasks may still run — as in StarPU, data consistency is
the submitter's problem at that point) but records the exception;
``wait_all`` re-raises the *first* error so callers cannot silently lose
failures.

The ``serial`` engine runs each task synchronously inside ``insert_task``
— program order is always a legal schedule under sequential task flow —
and is used as the determinism oracle in tests and for debugging.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence, Tuple

from ..config import get_config
from ..exceptions import RuntimeEngineError
from ..resilience.faults import fault_point
from ..telemetry import spans as _telemetry
from ..utils.logging import get_logger
from .graph import DependencyTracker
from .handle import DataHandle
from .scheduler import make_queue
from .task import AccessMode, Task, TaskState
from .trace import TraceEvent, TraceRecorder

__all__ = ["Runtime"]

logger = get_logger("runtime")


class Runtime:
    """Task runtime with automatic dependency inference.

    Parameters
    ----------
    num_workers:
        Worker threads; ``None``/0 uses the configured default
        (``Config.resolved_workers``). Ignored by the serial engine.
    scheduler:
        Ready-queue policy: ``"fifo"``, ``"lifo"`` or ``"priority"``.
    engine:
        ``"threads"`` (asynchronous) or ``"serial"`` (synchronous,
        deterministic). ``None`` uses the configured default.
    trace:
        Record :class:`TraceEvent` rows for every executed task
        (unbounded — the ablation/test mode). When telemetry is armed
        (:func:`repro.telemetry.configure`) and ``trace`` is False, a
        *bounded* ring recorder (``telemetry_max_spans`` events) is
        created instead, so engine spans can adopt task events as
        children without unbounded growth in long-lived runtimes.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.runtime import Runtime, AccessMode
    >>> with Runtime(num_workers=2) as rt:
    ...     h = rt.register(np.zeros(4), name="x")
    ...     def fill(x):
    ...         x += 1.0
    ...     t = rt.insert_task(fill, [(h, AccessMode.READWRITE)])
    ...     rt.wait_all()
    >>> h.get().tolist()
    [1.0, 1.0, 1.0, 1.0]
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        *,
        scheduler: str = "priority",
        engine: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        cfg = get_config()
        self.engine = engine or cfg.runtime_engine
        if self.engine not in ("threads", "serial"):
            raise RuntimeEngineError(f"unknown engine {self.engine!r}")
        self.num_workers = (
            1 if self.engine == "serial" else (num_workers or cfg.resolved_workers())
        )
        self.tracker = DependencyTracker()
        if trace:
            self.trace: Optional[TraceRecorder] = TraceRecorder()
        elif _telemetry.enabled():
            self.trace = TraceRecorder(max_events=cfg.telemetry_max_spans)
        else:
            self.trace = None
        self._queue = make_queue(scheduler)
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._inflight = 0  # tasks inserted but not finished
        self._first_error: Optional[BaseException] = None
        self._shutdown = False
        self._shutdown_guard = threading.Lock()  # serializes shutdown()
        self._closed = False  # workers joined, teardown complete
        self._threads: list[threading.Thread] = []
        if self.engine == "threads":
            for i in range(self.num_workers):
                th = threading.Thread(target=self._worker_loop, args=(i,), daemon=True, name=f"repro-worker-{i}")
                th.start()
                self._threads.append(th)

    # -------------------------------------------------------------- public
    def register(self, payload: Any, name: Optional[str] = None) -> DataHandle:
        """Register a payload and return its handle."""
        self._check_alive()
        return DataHandle(payload, name=name)

    def insert_task(
        self,
        fn: Callable[..., Any],
        accesses: Sequence[Tuple[DataHandle, AccessMode]],
        *,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        name: Optional[str] = None,
        priority: int = 0,
    ) -> Task:
        """Submit a task; returns immediately with the ``threads`` engine.

        Dependencies on previously inserted tasks are inferred from the
        access declarations (sequential-task-flow semantics).
        """
        self._check_alive()
        task = Task(fn, accesses, args=args, kwargs=kwargs, name=name, priority=priority)
        if self.engine == "serial":
            self.tracker.register(task)
            self._run_task(task, worker=0)
            if task.error is not None and self._first_error is None:
                self._first_error = task.error
            return task
        with self._lock:
            deps = self.tracker.register(task)
            open_deps = [d for d in deps if d.state not in (TaskState.DONE, TaskState.FAILED)]
            task.unresolved = len(open_deps)
            for d in open_deps:
                d.dependents.append(task)
            self._inflight += 1
            if task.unresolved == 0:
                task.state = TaskState.READY
                self._queue.push(task)
                self._work_available.notify()
        return task

    def wait_all(self) -> None:
        """Block until every inserted task finished; re-raise first error.

        Purely notification-driven: completion of the last in-flight task
        signals ``_all_done`` (no polling — per-task overhead is the cost
        of a notify, not of a timeout slice).
        """
        if self.engine == "serial":
            self._raise_pending()
            return
        with self._lock:
            while self._inflight > 0:
                self._all_done.wait()
        self._raise_pending()

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop the workers. The runtime cannot be reused afterwards.

        Idempotent and thread-safe: concurrent and repeated calls (for
        example a ``with`` block followed by an explicit engine-recycle
        in :class:`~repro.serving.registry.ModelRegistry`) serialize on
        an internal guard, and every call returns only after the worker
        threads are joined — no worker thread outlives the first
        completed ``shutdown``.

        Unlike :meth:`wait_all`, the drain loop here keeps a generous
        safety timeout: shutdown must terminate even if a worker thread
        died abnormally and can no longer signal completion.
        """
        with self._shutdown_guard:
            if self._closed:
                return
            if wait and self.engine == "threads" and not self._shutdown:
                with self._lock:
                    while self._inflight > 0:
                        self._all_done.wait(timeout=0.5)
            with self._lock:
                self._shutdown = True
                self._work_available.notify_all()
            for th in self._threads:
                th.join(timeout=5.0)
            # Only declare closed once every worker actually joined; a
            # timed-out join (worker stuck in a long codelet) keeps the
            # thread listed so a later shutdown() retries the join and
            # `closed` never claims more than is true.
            alive = [th for th in self._threads if th.is_alive()]
            self._threads = alive
            if alive:
                logger.warning(
                    "shutdown: %d worker thread(s) did not join within timeout", len(alive)
                )
            self._closed = not alive

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has completed (workers joined)."""
        return self._closed

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------ internals
    def _check_alive(self) -> None:
        if self._shutdown:
            raise RuntimeEngineError("runtime has been shut down")

    def _raise_pending(self) -> None:
        err = self._first_error
        if err is not None:
            self._first_error = None
            raise err

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            with self._lock:
                task = self._queue.pop()
                while task is None and not self._shutdown:
                    # Notification-driven: every ready-queue push and the
                    # shutdown flag flip each notify this condition, so no
                    # poll timeout is needed (workers sleep only while the
                    # queue is verifiably empty, under the lock).
                    self._work_available.wait()
                    task = self._queue.pop()
                if task is None and self._shutdown:
                    return
            assert task is not None
            self._run_task(task, worker=worker_id)
            with self._lock:
                for dep in task.dependents:
                    dep.unresolved -= 1
                    if dep.unresolved == 0:
                        dep.state = TaskState.READY
                        self._queue.push(dep)
                        self._work_available.notify()
                if task.error is not None and self._first_error is None:
                    self._first_error = task.error
                self._inflight -= 1
                if self._inflight == 0:
                    self._all_done.notify_all()

    def _run_task(self, task: Task, worker: int) -> None:
        task.state = TaskState.RUNNING
        task.worker = worker
        task.t_start = time.perf_counter()
        try:
            fault_point("runtime.task", path=task.name)
            task.result = task.execute()
            task.state = TaskState.DONE
        except BaseException as exc:  # noqa: BLE001 - error channel, re-raised in wait_all
            task.error = exc
            task.state = TaskState.FAILED
            logger.debug("task %s failed: %r", task.name, exc)
        finally:
            task.t_end = time.perf_counter()
            if self.trace is not None:
                self.trace.record(
                    TraceEvent(task.id, task.name, worker, task.t_start, task.t_end)
                )
