"""Ready-queue policies for the runtime.

When several tasks are simultaneously ready, the policy decides execution
order. The paper's stack relies on StarPU's schedulers; here we provide
the three canonical policies and an ablation bench compares them:

* ``fifo`` — submission order (StarPU ``eager``);
* ``lifo`` — newest first (depth-first; smaller working set);
* ``priority`` — user priority, ties broken by submission order
  (Chameleon/HiCMA mark panel tasks high-priority to shorten the
  critical path).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional, Protocol

from .task import Task

__all__ = ["ReadyQueue", "FifoQueue", "LifoQueue", "PriorityReadyQueue", "make_queue"]


class ReadyQueue(Protocol):
    """Minimal interface the executor needs from a ready queue."""

    def push(self, task: Task) -> None:
        """Add a ready task."""
        ...

    def pop(self) -> Optional[Task]:
        """Remove and return the next task, or ``None`` when empty."""
        ...

    def __len__(self) -> int: ...


class FifoQueue:
    """First-in, first-out ready queue (StarPU's ``eager``)."""

    def __init__(self) -> None:
        self._q: deque[Task] = deque()

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self) -> Optional[Task]:
        return self._q.popleft() if self._q else None

    def __len__(self) -> int:
        return len(self._q)


class LifoQueue:
    """Last-in, first-out ready queue (depth-first execution)."""

    def __init__(self) -> None:
        self._q: list[Task] = []

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self) -> Optional[Task]:
        return self._q.pop() if self._q else None

    def __len__(self) -> int:
        return len(self._q)


class PriorityReadyQueue:
    """Max-priority queue; ties broken FIFO by insertion sequence."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []
        self._seq = 0

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (-task.priority, self._seq, task))
        self._seq += 1

    def pop(self) -> Optional[Task]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


_POLICIES = {
    "fifo": FifoQueue,
    "lifo": LifoQueue,
    "priority": PriorityReadyQueue,
}


def make_queue(policy: str) -> ReadyQueue:
    """Instantiate a ready queue by policy name.

    Parameters
    ----------
    policy:
        ``"fifo"``, ``"lifo"`` or ``"priority"``.
    """
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; expected one of {sorted(_POLICIES)}"
        ) from None
