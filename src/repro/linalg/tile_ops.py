"""Dense tile codelets: POTRF, TRSM, SYRK, GEMM (paper §V).

These are the four kernels of the right-looking tile Cholesky, written as
plain functions mutating their output tile in place so they can be used
directly, or inserted as runtime tasks (the runtime passes tile payloads
positionally). All operate on lower-triangular factors.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..exceptions import NotPositiveDefiniteError

__all__ = ["potrf_codelet", "trsm_codelet", "syrk_codelet", "gemm_codelet"]


def potrf_codelet(dkk: np.ndarray) -> None:
    """In-place lower Cholesky of a diagonal tile: ``dkk <- chol(dkk)``.

    The strict upper triangle is zeroed so the stored factor is exactly
    lower-triangular (simplifies ``to_dense`` and debugging).
    """
    try:
        factor = sla.cholesky(dkk, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(f"diagonal tile not positive definite: {exc}") from exc
    dkk[:] = np.tril(factor)


def trsm_codelet(lkk: np.ndarray, aik: np.ndarray) -> None:
    """Right triangular solve: ``aik <- aik @ inv(lkk).T`` in place.

    Implemented as ``X^T = lkk^{-1} aik^T`` (one LAPACK ``trtrs``-style
    call), which is the TRSM of the tile Cholesky panel update.
    """
    aik[:] = sla.solve_triangular(lkk, aik.T, lower=True, check_finite=False).T


def syrk_codelet(aik: np.ndarray, dii: np.ndarray) -> None:
    """Symmetric rank-``nb`` update: ``dii <- dii - aik @ aik.T`` in place."""
    dii -= aik @ aik.T


def gemm_codelet(aik: np.ndarray, ajk: np.ndarray, aij: np.ndarray) -> None:
    """Trailing update: ``aij <- aij - aik @ ajk.T`` in place."""
    aij -= aik @ ajk.T
