"""Maximum likelihood estimation and prediction (paper §III; the core).

The paper's pipeline: build ``Sigma(theta)`` from the Matérn kernel over
the (Morton-ordered) locations, evaluate the Gaussian log-likelihood

    l(theta) = -(n/2) log(2 pi) - (1/2) log|Sigma| - (1/2) z' Sigma^{-1} z

inside a derivative-free optimizer to obtain ``theta_hat``, then predict
unknown measurements via the conditional mean
``Z1 = Sigma_12 Sigma_22^{-1} Z2`` (eq. (4)).

Three computation variants, as in the paper's evaluation: ``full-block``
(LAPACK), ``full-tile`` (dense tile algorithms), and ``tlr`` at a chosen
accuracy threshold.
"""

from .loglik import LikelihoodEvaluator, exact_loglikelihood
from .estimator import FitResult, MLEstimator
from .prediction import conditional_variance, predict
from .prediction_engine import PredictionEngine
from .metrics import mean_squared_error, mean_absolute_error, root_mean_squared_error
from .montecarlo import MonteCarloResult, run_monte_carlo
from .fisher import FisherInformation, observed_information

__all__ = [
    "LikelihoodEvaluator",
    "exact_loglikelihood",
    "MLEstimator",
    "FitResult",
    "predict",
    "conditional_variance",
    "PredictionEngine",
    "mean_squared_error",
    "mean_absolute_error",
    "root_mean_squared_error",
    "run_monte_carlo",
    "MonteCarloResult",
    "FisherInformation",
    "observed_information",
]
