"""End-to-end fitting service over HTTP: the closed refit loop.

The headline test drives the ISSUE's acceptance path: ``POST /v1/fit``
→ poll ``GET /v1/jobs/<id>`` → the finished fit is hot-reloaded into
the serving worker and **served predictions switch to the new theta
with zero failed requests under concurrent traffic** — and every
answer produced while the swap was in flight matches either the old or
the new engine bit-for-bit.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import (
    ConfigurationError,
    FittingError,
    JobNotFoundError,
    ModelNotFoundError,
)
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator, PredictionEngine
from repro.serving import ServingClient, ServingServer

N = 100
MAXITER = 40


@pytest.fixture(scope="module")
def initial_bundle(tmp_path_factory):
    locs = generate_irregular_grid(N, seed=0)
    z = sample_gaussian_field(locs, MaternCovariance(1.0, 0.1, 0.5), seed=1)
    est = MLEstimator(locs, z, variant="full-block")
    fit = est.fit(maxiter=MAXITER)
    path = est.save_fit(fit, tmp_path_factory.mktemp("fit") / "station.bundle")
    return {"locations": locs, "z": z, "path": path, "theta": fit.theta}


@pytest.fixture(scope="module")
def server(initial_bundle):
    with ServingServer(
        {"station": str(initial_bundle["path"])},
        num_workers=2,
        service_options={"batch_window": 0.0},
        fit_options={"max_workers": 2, "checkpoint_every": 1},
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with ServingClient(server.url) as cli:
        yield cli


@pytest.fixture(scope="module")
def targets():
    return np.ascontiguousarray(np.random.default_rng(5).random((9, 2)))


def test_refit_to_hot_reload_with_zero_failures_under_traffic(
    server, client, targets, initial_bundle
):
    old_reference = PredictionEngine.from_bundle(initial_bundle["path"]).predict(targets)
    np.testing.assert_array_equal(client.predict("station", targets), old_reference)

    # New observations arrive (the field drifted).
    z_new = sample_gaussian_field(
        initial_bundle["locations"], MaternCovariance(2.0, 0.2, 1.0), seed=9
    )

    # Concurrent traffic hammers the model through the whole refit.
    answers, failures, stop = [], [], threading.Event()

    def hammer():
        with ServingClient(server.url) as cli:
            while not stop.is_set():
                try:
                    answers.append(cli.predict("station", targets))
                except Exception as exc:  # noqa: BLE001 - the assertion target
                    failures.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        submitted = client.fit(
            from_model="station", z=z_new, maxiter=MAXITER, seed=5
        )
        assert submitted["status"] == "queued"
        assert submitted["model_id"] == "station"
        record = client.wait_job(submitted["job_id"], timeout=300)
    finally:
        stop.set()
        for t in threads:
            t.join()

    assert record["status"] == "done" and record["served"] is True
    assert not failures, f"requests failed during the refit: {failures[:3]}"
    assert answers, "the traffic threads never completed a request"

    # Served predictions switched to the new theta, bit-identical to an
    # engine built from the job's bundle.
    new_reference = PredictionEngine.from_bundle(record["bundle_path"]).predict(targets)
    np.testing.assert_array_equal(client.predict("station", targets), new_reference)
    assert not np.array_equal(new_reference, old_reference)

    # In-flight answers saw the old engine or the new one — nothing else.
    for got in answers:
        assert np.array_equal(got, old_reference) or np.array_equal(got, new_reference)

    # Warm start seeded the search from the served model's theta, and the
    # new bundle records the refit's full settings for reproducibility.
    from repro.serving import load_model

    fit_meta = load_model(record["bundle_path"]).info["fit"]
    assert fit_meta["warm_start"] is True
    np.testing.assert_allclose(
        np.asarray(fit_meta["x0"]), initial_bundle["theta"], rtol=1e-12
    )
    assert fit_meta["seed"] == 5


def test_refit_parity_with_in_process_fit(client, targets, initial_bundle):
    """The HTTP fit of new observations equals MLEstimator.fit run by
    hand with the same settings — the service adds durability, not
    drift."""
    locs = initial_bundle["locations"]
    z_new = sample_gaussian_field(locs, MaternCovariance(0.8, 0.15, 0.7), seed=13)
    submitted = client.fit(
        model_id="fresh-model",
        locations=locs,
        z=z_new,
        n_starts=2,
        seed=31,
        maxiter=MAXITER,
        warm_start=False,
    )
    record = client.wait_job(submitted["job_id"], timeout=300)
    ref = MLEstimator(locs, z_new, variant="full-block").fit(
        maxiter=MAXITER, n_starts=2, seed=31
    )
    np.testing.assert_array_equal(
        np.asarray(record["result"]["theta"]), ref.theta
    )
    assert record["result"]["loglik"] == ref.loglik
    # The new model id is now registered and serving the fit.
    reference = PredictionEngine.from_bundle(record["bundle_path"]).predict(targets)
    np.testing.assert_array_equal(client.predict("fresh-model", targets), reference)


def test_job_listing_and_traces_over_http(client):
    jobs = client.jobs()
    assert jobs, "previous tests submitted jobs"
    assert all(j["status"] in ("queued", "running", "checkpointed", "done", "failed")
               for j in jobs)
    done = [j for j in jobs if j["status"] == "done"]
    # Status polls skip the trace entirely (it grows per iteration).
    slim = client.job(done[0]["job_id"], trace=False)
    assert "trace" not in slim and slim["status"] == "done"
    record = client.job(done[0]["job_id"])
    assert record["result"]["loglik"] == pytest.approx(record["result"]["loglik"])
    trace = record["trace"]["0"]
    assert [e["iteration"] for e in trace] == list(range(1, len(trace) + 1))
    # The trace logs the best-so-far log-likelihood: monotone nondecreasing.
    logliks = [e["loglik"] for e in trace]
    assert logliks == sorted(logliks)


def test_jobs_route_prefix_typos_404(server):
    """'/v1/jobsx' must be an unknown route, not the job list."""
    import http.client
    import json as _json

    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        for path in ("/v1/jobsx", "/v1/jobs-foo", "/v1/jobs/a/b"):
            conn.request("GET", path)
            resp = conn.getresponse()
            payload = _json.loads(resp.read())
            assert resp.status == 404, path
            assert payload["error"]["type"] == "ServerError", path
    finally:
        conn.close()


def test_dead_fit_scheduler_degrades_health(initial_bundle):
    with ServingServer({"m": str(initial_bundle["path"])}, num_workers=1) as srv:
        with ServingClient(srv.url) as cli:
            assert cli.health()["status"] == "ok"
            srv._orchestrator.stop()  # the fitting surface just died
            health = cli.health()
            assert health["fitting"] is False
            assert health["status"] == "degraded"


def test_fit_error_mapping(client, initial_bundle):
    with pytest.raises(ModelNotFoundError):
        client.fit(from_model="never-registered", maxiter=5)
    with pytest.raises(JobNotFoundError):
        client.job("job-424242")
    with pytest.raises(FittingError):
        client.fit(model_id="x", locations=[[0.1, 0.2]], z=[1.0], n_startz=3)
    with pytest.raises(FittingError):
        # from_model and bundle_path are mutually exclusive.
        client.fit(
            from_model="station", bundle_path=str(initial_bundle["path"]), maxiter=5
        )
    with pytest.raises(FittingError):
        client.fit(model_id="x", maxiter=5)  # no data source at all


def test_failed_fit_surfaces_through_wait_job(client, initial_bundle):
    submitted = client.fit(
        model_id="doomed",
        locations=initial_bundle["locations"],
        z=initial_bundle["z"],
        maxiter=5,
        model={
            "family": "MaternCovariance",
            "metric": "euclidean",
            "nugget": -1.0,  # rejected inside the worker at resolve time
            "theta": [1.0, 0.1, 0.5],
        },
    )
    with pytest.raises(FittingError, match="failed"):
        client.wait_job(submitted["job_id"], timeout=120)
    record = client.job(submitted["job_id"])
    assert record["status"] == "failed"
    assert record["restarts"] == 0  # deterministic failures are not retried
    # The target model id was never registered.
    with pytest.raises(ModelNotFoundError):
        client.predict("doomed", np.zeros((1, 2)))


def test_fitting_can_be_disabled(initial_bundle):
    with ServingServer(
        {"m": str(initial_bundle["path"])}, num_workers=1, enable_fitting=False
    ) as srv:
        with ServingClient(srv.url) as cli:
            assert "fitting" not in cli.health()
            with pytest.raises(ConfigurationError):
                cli.fit(from_model="m", maxiter=5)
            with pytest.raises(ConfigurationError):
                cli.jobs()


def test_bad_fit_options_fail_at_construction(initial_bundle):
    with pytest.raises(FittingError):
        ServingServer(
            {"m": str(initial_bundle["path"])}, fit_options={"max_workers": 0}
        )
    with pytest.raises(FittingError):
        ServingServer(
            {"m": str(initial_bundle["path"])}, fit_options={"bogus_knob": 1}
        )


def test_ephemeral_jobs_dir_restart_rolls_back_to_registered_bundles(
    initial_bundle, targets
):
    """Regression: with the default (temporary) jobs_dir, a refit
    publishes a bundle living inside the ledger; stop() deletes it, so
    a restarted server must serve the model's last externally
    registered bundle — not a path to nowhere."""
    z_new = sample_gaussian_field(
        initial_bundle["locations"], MaternCovariance(1.4, 0.18, 0.8), seed=21
    )
    old_reference = PredictionEngine.from_bundle(initial_bundle["path"]).predict(targets)
    server = ServingServer(
        {"station": str(initial_bundle["path"])}, num_workers=1
    ).start()
    try:
        with ServingClient(server.url) as cli:
            submitted = cli.fit(from_model="station", z=z_new, maxiter=10, seed=3)
            record = cli.wait_job(submitted["job_id"], timeout=300)
            assert record["served"]
            refit_pred = cli.predict("station", targets)
            assert not np.array_equal(refit_pred, old_reference)
        server.stop()
        server.start()  # the ephemeral ledger (and its bundles) are gone
        with ServingClient(server.url) as cli:
            got = cli.predict("station", targets)
        np.testing.assert_array_equal(got, old_reference)
    finally:
        server.stop()


def test_durable_jobs_dir_survives_server_restart(initial_bundle, tmp_path):
    """With an explicit jobs_dir the ledger is durable: a new server
    over the same directory still knows the finished job."""
    jobs_dir = tmp_path / "jobs"
    locs, z = initial_bundle["locations"], initial_bundle["z"]
    with ServingServer(
        {"station": str(initial_bundle["path"])}, num_workers=1, jobs_dir=jobs_dir
    ) as srv:
        with ServingClient(srv.url) as cli:
            submitted = cli.fit(from_model="station", z=z, maxiter=10, seed=3)
            cli.wait_job(submitted["job_id"], timeout=300)
    assert jobs_dir.is_dir()
    with ServingServer(
        {"station": str(initial_bundle["path"])}, num_workers=1, jobs_dir=jobs_dir
    ) as srv:
        with ServingClient(srv.url) as cli:
            record = cli.job(submitted["job_id"])
            assert record["status"] == "done"
            assert record["result"]["theta"]
    del locs
