"""Unified retry/deadline policies: determinism, idempotency, budgets."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ConfigurationError, DeadlineExceededError, ServerError
from repro.resilience import Deadline, RetryPolicy


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


def test_after_none_is_none():
    assert Deadline.after(None) is None


def test_remaining_and_expired():
    d = Deadline.after(30.0)
    assert 29.0 < d.remaining <= 30.0
    assert not d.expired
    past = Deadline(time.monotonic() - 1.0)
    assert past.expired
    assert past.remaining < 0


def test_check_raises_only_once_expired():
    Deadline.after(30.0).check("predict")  # plenty left: no raise
    past = Deadline(time.monotonic() - 0.5)
    with pytest.raises(DeadlineExceededError, match="predict deadline expired"):
        past.check("predict")


def test_clamp_bounds_a_layer_timeout():
    d = Deadline.after(1.0)
    assert d.clamp(30.0) <= 1.0  # the deadline wins over a generous timeout
    assert d.clamp(0.01) == 0.01  # a tight timeout stays tight
    expired = Deadline(time.monotonic() - 1.0)
    assert expired.clamp(30.0) == 0.0  # floored, never negative


# ---------------------------------------------------------------------------
# RetryPolicy validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"multiplier": 0.5},
        {"max_delay": -1.0},
        {"jitter": 1.5},
        {"jitter": -0.1},
    ],
)
def test_invalid_settings_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Deterministic backoff
# ---------------------------------------------------------------------------


def test_delay_sequence_is_deterministic():
    a = RetryPolicy(max_attempts=5, base_delay=0.1, seed=11)
    b = RetryPolicy(max_attempts=5, base_delay=0.1, seed=11)
    assert [a.delay(i) for i in range(4)] == [b.delay(i) for i in range(4)]
    c = RetryPolicy(max_attempts=5, base_delay=0.1, seed=12)
    assert [a.delay(i) for i in range(4)] != [c.delay(i) for i in range(4)]


def test_zero_jitter_is_exact_exponential():
    pol = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0, max_delay=10.0)
    assert [pol.delay(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.8]


def test_jitter_stays_within_the_configured_band():
    pol = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.5, seed=3)
    for attempt in range(6):
        raw = min(pol.max_delay, 0.1 * 2.0**attempt)
        assert raw * 0.5 <= pol.delay(attempt) <= raw * 1.5


def test_max_delay_caps_the_curve():
    pol = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0)
    assert pol.delay(5) == 2.0


def test_seed_defaults_to_configured_rng_seed():
    from repro.config import get_config

    assert RetryPolicy().seed == get_config().rng_seed


# ---------------------------------------------------------------------------
# should_retry: budget, idempotency, deadline, exception type
# ---------------------------------------------------------------------------


def test_allows_counts_total_attempts():
    pol = RetryPolicy(max_attempts=3)
    assert [pol.allows(i) for i in range(4)] == [True, True, True, False]


def test_budget_exhaustion_stops_retries():
    pol = RetryPolicy(max_attempts=2)
    exc = ServerError("boom")
    assert pol.should_retry(exc, 0)
    assert not pol.should_retry(exc, 1)  # attempt 1 was the last of 2


def test_non_idempotent_attempts_are_never_retried():
    pol = RetryPolicy(max_attempts=5)
    assert not pol.should_retry(ServerError("boom"), 0, idempotent=False)


def test_expired_deadline_vetoes_a_retry():
    pol = RetryPolicy(max_attempts=5)
    expired = Deadline(time.monotonic() - 1.0)
    assert not pol.should_retry(ServerError("boom"), 0, deadline=expired)
    live = Deadline.after(30.0)
    assert pol.should_retry(ServerError("boom"), 0, deadline=live)


def test_only_configured_exception_types_are_retryable():
    pol = RetryPolicy(retry_on=(ServerError,))
    assert pol.should_retry(ServerError("boom"), 0)
    assert not pol.should_retry(ValueError("boom"), 0)


# ---------------------------------------------------------------------------
# call(): the execution loop
# ---------------------------------------------------------------------------


def test_call_retries_to_success_with_policy_delays():
    pol = RetryPolicy(max_attempts=4, base_delay=0.1, seed=5)
    failures = iter([ServerError("one"), ServerError("two")])
    calls, slept, retried = [], [], []

    def flaky():
        calls.append(1)
        exc = next(failures, None)
        if exc is not None:
            raise exc
        return "ok"

    assert (
        pol.call(flaky, sleep=slept.append, on_retry=lambda a, e: retried.append(a))
        == "ok"
    )
    assert len(calls) == 3
    assert slept == [pol.delay(0), pol.delay(1)]  # the deterministic curve
    assert retried == [0, 1]


def test_call_exhausts_the_budget_and_reraises_the_last_error():
    pol = RetryPolicy(max_attempts=3, base_delay=0.0)
    calls = []

    def always_fails():
        calls.append(1)
        raise ServerError(f"failure {len(calls)}")

    with pytest.raises(ServerError, match="failure 3"):
        pol.call(always_fails, sleep=lambda _: None)
    assert len(calls) == 3


def test_call_does_not_retry_unlisted_exceptions():
    pol = RetryPolicy(max_attempts=5, retry_on=(ServerError,))
    calls = []

    def wrong_kind():
        calls.append(1)
        raise ValueError("not retryable")

    with pytest.raises(ValueError):
        pol.call(wrong_kind, sleep=lambda _: None)
    assert len(calls) == 1


def test_call_checks_the_deadline_before_each_attempt():
    pol = RetryPolicy(max_attempts=5, base_delay=0.0)
    with pytest.raises(DeadlineExceededError):
        pol.call(lambda: "never runs", deadline=Deadline(time.monotonic() - 1.0))


def test_call_clamps_sleeps_to_the_deadline():
    pol = RetryPolicy(max_attempts=3, base_delay=10.0, jitter=0.0)
    deadline = Deadline.after(0.05)
    slept = []
    failures = iter([ServerError("one")])

    def flaky():
        exc = next(failures, None)
        if exc is not None:
            raise exc
        return "ok"

    assert pol.call(flaky, deadline=deadline, sleep=slept.append) == "ok"
    (pause,) = slept
    assert pause <= 0.05  # the 10s backoff was clamped to the time left
