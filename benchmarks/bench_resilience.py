#!/usr/bin/env python
"""Resilience benchmark: what fault tolerance costs, and what it buys.

Four probes over the HTTP serving stack:

* **unarmed overhead** — nanoseconds per :func:`~repro.resilience
  .fault_point` call with no plan armed. The hooks sit on every
  request and task path, so this must be negligible.
* **baseline** — closed-loop HTTP traffic with no faults: error rate
  (expected 0) and latency percentiles.
* **under faults** — the same traffic with a seeded
  :class:`~repro.resilience.FaultPlan` armed (injected engine errors,
  pipe delays, one worker SIGKILL): error rate stays bounded, p99
  degrades but survives, and every successful answer still bit-matches
  the reference.
* **recovery time** — SIGKILL a worker, then measure the time until a
  predict succeeds again (respawn + retry, measured client-side).

Results go to ``BENCH_resilience.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --n 400 --requests 200

or through the benchmark suite (small problem):

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, arm, disarm, fault_point
from repro.serving import ModelBundle, ServingClient, ServingServer


def build_bundle(n: int, tile_size: int, root: Path, theta=(1.0, 0.1, 0.5)) -> Path:
    locs, _, _ = sort_locations(generate_irregular_grid(n, seed=0))
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant="full-block", tile_size=tile_size
    )
    bundle.factor = bundle.build_engine().factor()
    return bundle.save(root / "bench.bundle")


def measure_unarmed_overhead(calls: int = 200_000) -> dict:
    """Per-call cost of an unarmed fault point vs an empty loop."""
    disarm()

    t0 = time.perf_counter()
    for _ in range(calls):
        pass
    empty = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(calls):
        fault_point("engine.predict")
    armed_not = time.perf_counter() - t0

    return {
        "calls": calls,
        "ns_per_call": max(0.0, (armed_not - empty) / calls * 1e9),
        "ns_per_call_gross": armed_not / calls * 1e9,
    }


def drive(
    url: str,
    targets: np.ndarray,
    reference: np.ndarray,
    *,
    n_requests: int,
    concurrency: int,
    retry: bool,
) -> dict:
    """Closed loop; tallies latency percentiles, errors, wrong answers."""
    remaining = [n_requests]
    lock = threading.Lock()
    latencies: List[float] = []
    errors: List[str] = []
    wrong = [0]

    def worker() -> None:
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, seed=7) if retry else None
        with ServingClient(url, retry_policy=policy) as client:
            while True:
                with lock:
                    if remaining[0] <= 0:
                        return
                    remaining[0] -= 1
                t0 = time.perf_counter()
                try:
                    got = client.predict("bench", targets, deadline=30.0)
                    dt = time.perf_counter() - t0
                    ok = np.array_equal(got, reference)
                    with lock:
                        latencies.append(dt)
                        if not ok:
                            wrong[0] += 1
                except Exception as exc:  # noqa: BLE001 - tallied
                    with lock:
                        errors.append(type(exc).__name__)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1, int(len(latencies) * q))] * 1e3

    return {
        "requests": n_requests,
        "succeeded": len(latencies),
        "errors": len(errors),
        "error_types": sorted(set(errors)),
        "error_rate": len(errors) / n_requests,
        "wrong_answers": wrong[0],
        "wall_seconds": wall,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
    }


def measure_recovery(server: ServingServer, url: str, targets: np.ndarray,
                     kills: int = 3) -> dict:
    """SIGKILL the model's worker; time until a predict succeeds again."""
    times = []
    with ServingClient(url) as client:
        client.predict("bench", targets)
        for _ in range(kills):
            handle = server._workers[server.worker_for("bench")]
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(30.0)
            t0 = time.perf_counter()
            while True:  # the first request respawns the worker and retries
                try:
                    client.predict("bench", targets)
                    break
                except Exception:  # noqa: BLE001 - keep probing
                    time.sleep(0.005)
            times.append(time.perf_counter() - t0)
    return {
        "kills": kills,
        "recovery_ms_mean": float(np.mean(times) * 1e3),
        "recovery_ms_max": float(np.max(times) * 1e3),
    }


def run_bench(
    n: int = 900,
    m: int = 32,
    tile_size: int = 150,
    n_requests: int = 300,
    concurrency: int = 8,
    num_workers: int = 2,
) -> dict:
    overhead = measure_unarmed_overhead()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        path = build_bundle(n, tile_size, root)
        targets = np.ascontiguousarray(np.random.default_rng(7).random((m, 2)))
        reference = PredictionEngine.from_bundle(path).predict(targets)

        def fresh_server():
            return ServingServer(
                {"bench": path},
                num_workers=num_workers,
                max_worker_restarts=max(8, n_requests // 20),
                service_options={"batch_window": 0.0},
                enable_fitting=False,
            )

        disarm()
        with fresh_server() as server:
            with ServingClient(server.url) as warm:
                warm.predict("bench", targets)
            baseline = drive(
                server.url, targets, reference,
                n_requests=n_requests, concurrency=concurrency, retry=False,
            )
            recovery = measure_recovery(server, server.url, targets)

        # Faults scaled to the request volume: ~2% injected engine
        # errors, a stretch of delayed pipe messages, one worker kill.
        state_dir = root / "chaos"
        plan = FaultPlan(
            rules=[
                FaultRule(site="engine.predict", action="raise",
                          after=n_requests // 10, count=max(2, n_requests // 50)),
                FaultRule(site="worker.pipe", action="delay",
                          after=n_requests // 5, count=max(3, n_requests // 30),
                          delay=0.01),
                FaultRule(site="worker.pipe", action="kill", after=n_requests // 2),
            ],
            seed=1234,
            state_dir=state_dir,
        )
        arm(plan, propagate=True)
        try:
            with fresh_server() as server:
                with ServingClient(server.url) as warm:
                    warm.predict("bench", targets)
                faulted = drive(
                    server.url, targets, reference,
                    n_requests=n_requests, concurrency=concurrency, retry=True,
                )
                faulted["faults_fired"] = len(plan.fired())
                faulted["worker_restarts"] = server.n_worker_restarts
        finally:
            disarm()

    return {
        "config": {
            "n": n,
            "m_targets_per_request": m,
            "tile_size": tile_size,
            "n_requests": n_requests,
            "concurrency": concurrency,
            "num_workers": num_workers,
        },
        "unarmed_fault_point": overhead,
        "baseline": baseline,
        "under_faults": faulted,
        "recovery": recovery,
    }


def write_report(report: dict, out: Optional[str] = None) -> Path:
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_resilience.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_resilience(outdir):
    """Benchmark-suite entry: small problem, invariant-flavored asserts."""
    report = run_bench(n=400, m=24, tile_size=100, n_requests=120, concurrency=6)
    assert report["baseline"]["errors"] == 0
    assert report["baseline"]["wrong_answers"] == 0
    under = report["under_faults"]
    assert under["wrong_answers"] == 0  # degraded, never silently wrong
    assert under["error_rate"] <= 0.10  # bounded: injected errors only
    assert under["faults_fired"] >= 3
    assert under["worker_restarts"] >= 1
    # The unarmed hook must stay deep in noise territory (< 5 µs/call
    # even on a loaded CI runner; typical is tens of ns).
    assert report["unarmed_fault_point"]["ns_per_call_gross"] < 5_000
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=900, help="training-set size")
    parser.add_argument("--m", type=int, default=32, help="targets per request")
    parser.add_argument("--tile-size", type=int, default=150, help="tile size nb")
    parser.add_argument("--requests", type=int, default=300, help="total requests")
    parser.add_argument("--concurrency", type=int, default=8, help="client threads")
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(
        n=args.n,
        m=args.m,
        tile_size=args.tile_size,
        n_requests=args.requests,
        concurrency=args.concurrency,
        num_workers=args.workers,
    )
    path = write_report(report, args.out)
    print(f"wrote {path}")
    print(
        f"unarmed fault_point: "
        f"{report['unarmed_fault_point']['ns_per_call_gross']:.0f} ns/call gross"
    )
    for name in ("baseline", "under_faults"):
        r = report[name]
        print(
            f"  {name:>12}: error rate {r['error_rate']:6.2%}  "
            f"p50 {r['p50_ms']:6.2f} ms  p99 {r['p99_ms']:6.2f} ms  "
            f"wrong answers {r['wrong_answers']}"
        )
    rec = report["recovery"]
    print(
        f"recovery after SIGKILL: mean {rec['recovery_ms_mean']:.0f} ms, "
        f"max {rec['recovery_ms_max']:.0f} ms over {rec['kills']} kills"
    )


if __name__ == "__main__":
    main()
