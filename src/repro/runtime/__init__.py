"""Task-based runtime system (StarPU substitute; paper §VI).

ExaGeoStat expresses its high-level operations (matrix generation,
Cholesky, solves, log-determinant) as *tasks* over tile-sized data, and
lets StarPU infer dependencies from data access modes and execute the DAG
asynchronously on the available hardware. This subpackage reproduces that
programming model in pure Python:

* :class:`DataHandle` — a registered piece of data (typically one tile);
* :class:`AccessMode` — ``READ`` / ``WRITE`` / ``READWRITE`` declarations;
* :class:`Runtime` — sequential-task-flow insertion with automatic
  dependency inference and out-of-order execution on a thread pool
  (numpy/scipy BLAS release the GIL, so tile tasks genuinely overlap);
* ready-queue policies (FIFO / LIFO / priority) and execution tracing.

A ``serial`` engine executes tasks synchronously at insertion in program
order, which is always a legal schedule — used for debugging and as a
determinism oracle in tests.
"""

from .task import AccessMode, Task, TaskState
from .handle import DataHandle
from .executor import Runtime
from .trace import TraceEvent, TraceRecorder
from .graph import DependencyTracker, build_networkx_dag

__all__ = [
    "AccessMode",
    "Task",
    "TaskState",
    "DataHandle",
    "Runtime",
    "TraceEvent",
    "TraceRecorder",
    "DependencyTracker",
    "build_networkx_dag",
]
