"""HTTP body-hardening and client-side validation tests.

The satellite fixes around the transport work: the router must answer
malformed or hostile ``Content-Length`` declarations with typed 4xx
responses *before* reading (or allocating for) the body, the
``serving_max_body`` knob must govern both transports, and the client
must reject un-encodable inputs (ragged lists, non-finite floats,
oversized JSON bodies) with typed errors *before* any bytes hit the
socket.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.config import Config
from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import (
    ConfigurationError,
    PayloadTooLargeError,
    ShapeError,
    ValidationError,
)
from repro.kernels import MaternCovariance
from repro.serving import ModelBundle, ServingClient, ServingServer, wire

N, NB = 144, 36


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(model=model, locations=locs, z=z,
                         variant="full-block", tile_size=NB)
    bundle.factor = bundle.build_engine().factor()
    path = bundle.save(tmp_path_factory.mktemp("bundles") / "m.bundle")
    # A deliberately small body cap: large enough for control-plane
    # JSON, small enough that a modest JSON predict trips it while the
    # same predict fits over the ~5x denser binary framing.
    with ServingServer({"m": path}, num_workers=1, max_body=16384) as srv:
        yield srv


def _raw_request(server, head_lines, body=b""):
    """Send a hand-built request; return (status, parsed-error-payload)."""
    sock = socket.create_connection((server.host, server.port), timeout=30)
    try:
        sock.sendall("\r\n".join(head_lines).encode("latin-1") + b"\r\n\r\n" + body)
        sock.shutdown(socket.SHUT_WR)
        raw = b""
        while True:
            piece = sock.recv(65536)
            if not piece:
                break
            raw += piece
    finally:
        sock.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    body_bytes = rest.split(b"\r\n\r\n")[0]
    try:
        payload = json.loads(body_bytes) if body_bytes else {}
    except json.JSONDecodeError:
        payload = {}
    return status, payload.get("error", {})


def _post_head(server, content_length, path="/v1/predict"):
    return [
        f"POST {path} HTTP/1.1",
        f"Host: {server.host}:{server.port}",
        "Content-Type: application/json",
        f"Content-Length: {content_length}",
    ]


# --------------------------------------------------------------------------
# Router body hardening
# --------------------------------------------------------------------------


def test_garbage_content_length_is_400(server):
    status, error = _raw_request(server, _post_head(server, "banana"))
    assert status == 400
    assert "Content-Length" in error.get("message", "")


def test_negative_content_length_is_400(server):
    status, error = _raw_request(server, _post_head(server, "-7"))
    assert status == 400
    assert "negative" in error.get("message", "")


def test_oversized_content_length_is_413_before_body_read(server):
    """A hostile declared length must be refused from the *header* —
    note no body bytes are ever sent here."""
    status, error = _raw_request(server, _post_head(server, str(1 << 40)))
    assert status == 413
    assert error.get("type") == "PayloadTooLargeError"
    assert "serving_max_body" in error.get("message", "")
    # A JSON request over the cap is pointed at the binary transport.
    assert wire.CONTENT_TYPE in error.get("message", "")


def test_missing_content_length_is_400(server):
    status, _ = _raw_request(
        server,
        [f"POST /v1/predict HTTP/1.1",
         f"Host: {server.host}:{server.port}",
         "Content-Type: application/json"],
    )
    assert status == 400


def test_malformed_deadline_header_is_400(server):
    body = json.dumps({"model_id": "m", "targets": [[0.1, 0.2]]}).encode()
    head = _post_head(server, len(body)) + ["X-Repro-Deadline: soonish"]
    status, error = _raw_request(server, head, body)
    assert status == 400
    assert "X-Repro-Deadline" in error.get("message", "")


def test_server_rejects_silly_max_body():
    with pytest.raises(ConfigurationError, match="max_body"):
        ServingServer({}, max_body=512)


def test_config_knob_validates():
    with pytest.raises(ConfigurationError, match="serving_max_body"):
        Config(serving_max_body=100)
    assert Config().serving_max_body == 64 * 1024 * 1024


# --------------------------------------------------------------------------
# Keep-alive per-request state: one handler instance serves EVERY
# request on an HTTP/1.1 connection, so flags a request sets must never
# leak into the next one.
# --------------------------------------------------------------------------


def test_keepalive_typed_error_after_streamed_binary_reply(server):
    """Regression: ``_streamed`` left True by a successful streamed
    binary predict must not make a later request's typed error on the
    SAME keep-alive connection silently drop the connection instead of
    replying (which broke ``predict_pipelined``'s per-request error
    semantics and triggered spurious client-side retries)."""
    body = json.dumps({"model_id": "m", "targets": [[0.5, 0.5]]}).encode()
    sock = socket.create_connection((server.host, server.port), timeout=30)
    try:
        fp = sock.makefile("rb")
        head = _post_head(server, len(body)) + [f"Accept: {wire.CONTENT_TYPE}"]
        sock.sendall("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)
        status, headers = wire.parse_http_head(fp)
        assert status == 200
        assert headers.get("transfer-encoding") == "chunked"
        reader = wire.ChunkedReader(fp)
        _, arrays = wire.read_message(reader.read)
        reader.drain()  # position the stream at the next response
        assert arrays["prediction"].shape == (1,)
        # Same connection, now a typed error: the server must REPLY
        # (404 JSON), not kill the connection over stale stream state.
        bad = json.dumps({"model_id": "missing", "targets": [[0.5, 0.5]]}).encode()
        sock.sendall(
            "\r\n".join(_post_head(server, len(bad))).encode("latin-1")
            + b"\r\n\r\n" + bad
        )
        status, headers = wire.parse_http_head(fp)
        assert status == 404
        error = json.loads(fp.read(int(headers["content-length"])))["error"]
        assert error["type"] == "ModelNotFoundError"
    finally:
        sock.close()


def test_keepalive_413_still_closes_connection(server):
    """Regression: ``_body_read`` left True by a completed request must
    not defeat the close-on-unread-body guard — an early 413 on a
    reused connection still closes it, so undelivered body bytes can
    never desync the next request's framing."""
    body = json.dumps({"model_id": "m", "targets": [[0.5, 0.5]]}).encode()
    sock = socket.create_connection((server.host, server.port), timeout=30)
    try:
        fp = sock.makefile("rb")
        sock.sendall(
            "\r\n".join(_post_head(server, len(body))).encode("latin-1")
            + b"\r\n\r\n" + body
        )
        status, headers = wire.parse_http_head(fp)
        assert status == 200
        fp.read(int(headers["content-length"]))  # leave framing clean
        # Second request declares an over-cap body (none is sent): the
        # 413 arrives before any body read, so the connection must die.
        sock.sendall(
            "\r\n".join(_post_head(server, server.max_body + 1)).encode("latin-1")
            + b"\r\n\r\n"
        )
        status, headers = wire.parse_http_head(fp)
        assert status == 413
        fp.read(int(headers["content-length"]))
        # Probe: a third request must meet a closed socket, never a
        # served response off desynced framing.
        try:
            sock.sendall(
                f"GET /healthz HTTP/1.1\r\nHost: {server.host}\r\n\r\n".encode()
            )
            leftover = fp.read(1)
        except (BrokenPipeError, ConnectionResetError):
            leftover = b""
        assert leftover == b""
    finally:
        sock.close()


# --------------------------------------------------------------------------
# The cap + the transports, end to end
# --------------------------------------------------------------------------


def test_json_over_cap_fails_typed_but_binary_fits(server):
    """The same predict that busts the 16 kB cap as JSON text sails
    through as binary framing — the error message's own advice."""
    targets = np.random.default_rng(0).random((600, 2))  # ~26 kB JSON, ~10 kB binary
    with ServingClient(server.url) as cli:
        with pytest.raises(PayloadTooLargeError, match="serving_max_body"):
            cli.predict("m", targets)
        prediction = cli.predict("m", targets, transport="binary")
    assert prediction.shape == (600,)


def test_binary_over_cap_is_413_too(server):
    targets = np.random.default_rng(1).random((2000, 2))  # ~32 kB binary
    with ServingClient(server.url, transport="binary") as cli:
        with pytest.raises(PayloadTooLargeError):
            cli.predict("m", targets)
        # The refusal must not poison the connection for a sane retry.
        assert cli.predict("m", targets[:100]).shape == (100,)


# --------------------------------------------------------------------------
# Client-side refusals: typed, and before any bytes are sent.
# (The client below points at a dead port — if validation ever tried to
# connect first, these tests would fail with a connection error.)
# --------------------------------------------------------------------------


@pytest.fixture()
def offline_client():
    return ServingClient("http://127.0.0.1:9", max_body=4096)


def test_ragged_targets_rejected_client_side(offline_client):
    with pytest.raises(ValidationError, match="targets"):
        offline_client.predict("m", [[0.1, 0.2], [0.3]])


def test_object_dtype_targets_rejected_client_side(offline_client):
    with pytest.raises(ValidationError, match="targets"):
        offline_client.predict("m", np.array([[0.1, "x"], [0.3, None]],
                                             dtype=object))


def test_nonfinite_targets_rejected_client_side(offline_client):
    with pytest.raises(ShapeError, match="targets"):
        offline_client.predict("m", np.array([[0.1, np.nan]]))


def test_ragged_z_rejected_client_side(offline_client):
    with pytest.raises(ValidationError, match='z'):
        offline_client.predict("m", np.zeros((2, 2)), z=[[1.0], [2.0, 3.0]])


def test_ragged_locations_rejected_in_fit(offline_client):
    with pytest.raises(ValidationError, match="locations"):
        offline_client.fit(locations=[[0.0, 0.1], [0.2]], z=[1.0, 2.0])


def test_client_refuses_nonfinite_json(offline_client):
    """Strict JSON encode: NaN must never leave the client as a bare
    ``NaN`` token. The refusal names the transport that CAN carry it."""
    with pytest.raises(ValidationError, match="binary"):
        offline_client._encode_json({"x": float("nan")})


def test_client_refuses_oversized_json_body(offline_client):
    big = np.random.default_rng(2).random((400, 2))
    with pytest.raises(PayloadTooLargeError, match="binary"):
        offline_client.predict("m", big)


def test_pipelined_validates_before_connecting(offline_client):
    """predict_pipelined must validate every request before writing any
    — here the dead port proves validation fires first."""
    with pytest.raises(ValidationError, match="targets"):
        offline_client.predict_pipelined(
            [{"model_id": "m", "targets": [[0.1, 0.2]]},
             {"model_id": "m", "targets": [[0.1], [0.2, 0.3]]}]
        )
