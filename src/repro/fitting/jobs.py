"""Fit jobs: the durable unit of work of the fitting service.

A :class:`FitJobSpec` says *what to fit* — the data (inline arrays or a
reference to an existing :class:`~repro.serving.store.ModelBundle`), the
kernel family, the substrate (full-block / full-tile / TLR), and the
optimizer settings including the multistart seed. Everything in it is
JSON + ``.npz`` serializable, so a job survives the process that
submitted it.

A :class:`JobStore` is the on-disk ledger those jobs live in. Each job
is a directory::

    <root>/<job_id>/
        spec.json, spec_arrays.npz     what to fit
        state.json                     queued | running | checkpointed |
                                       done | failed, timestamps, result
        starts/checkpoint_<i>.npz      resumable Nelder-Mead state
        starts/trace_<i>.jsonl         per-iteration (iteration, loglik,
                                       theta) trajectory
        starts/result_<i>.json         one multistart leg's outcome
        starts/error_<i>.json          one leg's typed failure
        bundle/                        the finished ModelBundle

``state.json`` has a single writer (the orchestrator process); worker
processes only append to their own per-start artifacts. All JSON writes
are atomic (temp + ``os.replace``), so a crash at any point leaves a
recoverable store: :meth:`JobStore.recover` turns orphaned ``running``
jobs back into ``checkpointed``/``queued`` and the orchestrator resumes
them from their checkpoints.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import get_config
from ..exceptions import FittingError, JobNotFoundError
from ..optim.bounds import validate_bounds
from ..optim.neldermead import multistart_points
from ..optim.result import HistoryEntry

__all__ = ["FitJobSpec", "ResolvedFit", "JobStore", "merge_start_results"]

SPEC_NAME = "spec.json"
SPEC_ARRAYS_NAME = "spec_arrays.npz"
STATE_NAME = "state.json"
STARTS_DIR = "starts"
BUNDLE_DIR = "bundle"

#: Legal job states and the transitions the orchestrator drives.
JOB_STATES = ("queued", "running", "checkpointed", "done", "failed")


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename into it survives a host crash.

    Without this, ``os.replace`` is atomic against *process* death but
    a crashed host can replay the directory from its journal without
    the rename — resurrecting the pre-transition job state. Tolerates
    filesystems that refuse directory fsync (some network mounts).
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _read_json(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


@dataclass
class FitJobSpec:
    """Everything a worker process needs to run (part of) an MLE fit.

    Data can be given inline (``locations`` + ``z``) or by reference to
    a persisted bundle (``bundle_path``); inline fields override the
    bundle's. The common refit shapes fall out naturally:

    * *fresh fit*: inline ``locations``/``z`` (+ optional model spec);
    * *refit on new observations*: ``bundle_path`` + inline ``z`` —
      same stations, new measurements, with ``z`` in the *original*
      fit's input row order (the bundle's persisted Morton permutation
      realigns it to the stored locations automatically);
    * *warm-start refit*: either of the above with ``warm_start=True``
      and a ``bundle_path`` — the bundle's fitted theta becomes the
      first multistart point, so a drifted model re-converges in a
      fraction of the iterations.

    Attributes
    ----------
    locations, z:
        Inline training data (``(n, d)`` and ``(n,)``).
    bundle_path:
        Directory of a :class:`~repro.serving.store.ModelBundle` to
        take data / model / substrate defaults (and the warm-start
        theta) from.
    model_spec:
        Kernel description (:func:`~repro.serving.store.model_to_spec`
        format); default: the bundle's model, else Matérn.
    metric:
        Distance metric when no model/bundle supplies one.
    variant, acc, tile_size, compression_method:
        Substrate overrides; default: the bundle's, else config.
    use_morton:
        Morton-reorder the locations (as every fit does by default).
    maxiter, ftol, xtol:
        Optimizer controls (see :func:`~repro.optim.nelder_mead`).
    n_starts, seed:
        Multistart width and the seed of its deterministic start draw.
    x0:
        Explicit starting theta (overrides warm start and the
        empirical default).
    bounds:
        ``{"lower": [...], "upper": [...]}`` optimization box;
        default: the estimator's :meth:`default_bounds`.
    warm_start:
        Seed the first start from the bundle's fitted theta.
    model_id:
        Serving model id the finished fit should be published under
        (the orchestrator's ``on_complete`` hook handles the actual
        registration / hot-reload).
    include_factor, include_distance_cache:
        Forwarded to :meth:`MLEstimator.save_fit` when the finished
        fit is bundled.
    """

    locations: Optional[np.ndarray] = None
    z: Optional[np.ndarray] = None
    bundle_path: Optional[str] = None
    model_spec: Optional[dict] = None
    metric: str = "euclidean"
    variant: Optional[str] = None
    acc: Optional[float] = None
    tile_size: Optional[int] = None
    compression_method: Optional[str] = None
    use_morton: bool = True
    maxiter: int = 200
    ftol: float = 1e-6
    xtol: float = 1e-6
    n_starts: int = 1
    seed: Optional[int] = None
    x0: Optional[Sequence[float]] = None
    bounds: Optional[dict] = None
    warm_start: bool = False
    model_id: Optional[str] = None
    include_factor: bool = True
    include_distance_cache: bool = False

    def __post_init__(self) -> None:
        if self.locations is not None:
            self.locations = np.ascontiguousarray(self.locations, dtype=np.float64)
        if self.z is not None:
            self.z = np.ascontiguousarray(self.z, dtype=np.float64)
            if self.z.ndim != 1:
                raise FittingError(
                    f"fit observations must be 1-D, got shape {self.z.shape}"
                )
        if self.locations is None and self.bundle_path is None:
            raise FittingError(
                "a fit job needs data: pass locations+z or a bundle_path"
            )
        if self.locations is not None and self.z is not None:
            if self.z.shape[0] != self.locations.shape[0]:
                raise FittingError(
                    f"z has {self.z.shape[0]} observations for "
                    f"{self.locations.shape[0]} locations"
                )
        if self.locations is not None and self.z is None and self.bundle_path is None:
            raise FittingError("locations were given without observations z")
        if self.warm_start and self.bundle_path is None:
            raise FittingError("warm_start needs a bundle_path to take theta from")
        if self.n_starts < 1:
            raise FittingError(f"n_starts must be >= 1, got {self.n_starts}")
        if self.maxiter < 1:
            raise FittingError(f"maxiter must be >= 1, got {self.maxiter}")
        if self.ftol <= 0 or self.xtol <= 0:
            raise FittingError(
                f"ftol/xtol must be > 0, got ftol={self.ftol} xtol={self.xtol}"
            )
        if self.bounds is not None:
            try:
                validate_bounds(self.bounds["lower"], self.bounds["upper"])
            except (KeyError, TypeError) as exc:
                raise FittingError(
                    'bounds must be {"lower": [...], "upper": [...]}'
                ) from exc

    # ------------------------------------------------------------ serialize
    def to_dict(self) -> dict:
        """Scalar fields as a JSON-able dict (arrays travel separately)."""
        return {
            "bundle_path": self.bundle_path,
            "model_spec": self.model_spec,
            "metric": self.metric,
            "variant": self.variant,
            "acc": self.acc,
            "tile_size": self.tile_size,
            "compression_method": self.compression_method,
            "use_morton": self.use_morton,
            "maxiter": self.maxiter,
            "ftol": self.ftol,
            "xtol": self.xtol,
            "n_starts": self.n_starts,
            "seed": self.seed,
            "x0": None if self.x0 is None else [float(v) for v in self.x0],
            "bounds": self.bounds,
            "warm_start": self.warm_start,
            "model_id": self.model_id,
            "include_factor": self.include_factor,
            "include_distance_cache": self.include_distance_cache,
            "has_locations": self.locations is not None,
            "has_z": self.z is not None,
        }

    def save(self, job_dir: Union[str, Path]) -> Path:
        """Persist the spec under ``job_dir`` (json + npz for arrays)."""
        job_dir = Path(job_dir)
        job_dir.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(job_dir / SPEC_NAME, self.to_dict())
        arrays: Dict[str, np.ndarray] = {}
        if self.locations is not None:
            arrays["locations"] = self.locations
        if self.z is not None:
            arrays["z"] = self.z
        if arrays:
            np.savez(job_dir / SPEC_ARRAYS_NAME, **arrays)
        return job_dir

    @classmethod
    def load(cls, job_dir: Union[str, Path]) -> "FitJobSpec":
        """Read a spec written by :meth:`save`."""
        job_dir = Path(job_dir)
        spec_path = job_dir / SPEC_NAME
        if not spec_path.is_file():
            raise FittingError(f"{job_dir} holds no fit-job spec ({SPEC_NAME})")
        try:
            raw = _read_json(spec_path)
        except json.JSONDecodeError as exc:
            raise FittingError(f"{spec_path} is not valid JSON: {exc}") from exc
        locations = z = None
        arrays_path = job_dir / SPEC_ARRAYS_NAME
        if raw.get("has_locations") or raw.get("has_z"):
            if not arrays_path.is_file():
                raise FittingError(f"{job_dir} spec references missing {SPEC_ARRAYS_NAME}")
            with np.load(arrays_path) as npz:
                locations = npz["locations"] if raw.get("has_locations") else None
                z = npz["z"] if raw.get("has_z") else None
        raw = {k: v for k, v in raw.items() if k not in ("has_locations", "has_z")}
        return cls(locations=locations, z=z, **raw)

    # -------------------------------------------------------------- resolve
    def resolve(self, *, runtime=None) -> "ResolvedFit":
        """Materialize the job: estimator, bounds, and the start list.

        Resolution is deterministic and shared by every worker process
        of a job — each worker regenerates the identical
        :func:`~repro.optim.neldermead.multistart_points` list from the
        spec and claims its index, which is what makes process-parallel
        multistart bit-identical to the sequential search.
        """
        from ..kernels.covariance import MaternCovariance
        from ..mle.estimator import MLEstimator
        from ..optim.bounds import empirical_start
        from ..serving.store import load_model, model_from_spec

        bundle = None
        if self.bundle_path is not None:
            bundle = load_model(self.bundle_path)
        locations = self.locations if self.locations is not None else (
            bundle.locations if bundle is not None else None
        )
        z = self.z if self.z is not None else (bundle.z if bundle is not None else None)
        if locations is None or z is None:
            raise FittingError(
                "fit job resolves to no data (bundle has no observations and "
                "none were given inline)"
            )
        z = np.asarray(z, dtype=np.float64)
        if (
            self.locations is None
            and self.z is not None
            and bundle is not None
            and bundle.perm is not None
        ):
            # "Same stations, new measurements": inline z follows the
            # original fit's input row order, but the bundle's stored
            # locations are Morton-permuted — realign with the bundle's
            # persisted permutation (the same contract as the z override
            # of MLEstimator.predict).
            if z.shape[0] != len(bundle.perm):
                raise FittingError(
                    f"inline z has {z.shape[0]} observations for the bundle's "
                    f"{len(bundle.perm)} locations"
                )
            z = z[np.asarray(bundle.perm, dtype=np.intp)]
        if z.ndim != 1:
            raise FittingError(f"fit observations must be 1-D, got shape {z.shape}")
        if z.shape[0] != np.asarray(locations).shape[0]:
            raise FittingError(
                f"resolved z has {z.shape[0]} observations for "
                f"{np.asarray(locations).shape[0]} locations"
            )
        if self.model_spec is not None:
            model = model_from_spec(self.model_spec)
        elif bundle is not None:
            model = bundle.model
        else:
            model = MaternCovariance(metric=self.metric)
        variant = self.variant or (bundle.variant if bundle is not None else "full-block")
        acc = self.acc if self.acc is not None else (
            bundle.acc if bundle is not None else None
        )
        tile_size = self.tile_size if self.tile_size is not None else (
            bundle.tile_size if bundle is not None else None
        )
        compression = self.compression_method or (
            bundle.compression_method if bundle is not None else None
        )
        estimator = MLEstimator(
            locations,
            z,
            model=model,
            variant=variant,
            acc=acc,
            tile_size=tile_size,
            use_morton=self.use_morton,
            runtime=runtime,
            compression_method=compression,
        )
        if self.locations is None and bundle is not None and bundle.perm is not None:
            # The bundle's rows are already Morton-permuted relative to
            # the *original* fit's input. Compose that permutation with
            # this estimator's own (identity on sorted data), so the
            # refit bundle persists original-order → stored-order — the
            # realignment contract survives any number of refit
            # generations instead of degrading to identity after one.
            source = np.asarray(bundle.perm, dtype=np.intp)
            estimator._perm = (
                source if estimator._perm is None else source[estimator._perm]
            )
        if self.bounds is not None:
            lower, upper = validate_bounds(self.bounds["lower"], self.bounds["upper"])
        else:
            lower, upper = estimator.default_bounds()
        if self.x0 is not None:
            x0 = np.asarray(self.x0, dtype=np.float64)
        elif self.warm_start and bundle is not None:
            x0 = np.asarray(bundle.model.theta, dtype=np.float64)
        else:
            x0 = empirical_start(estimator.z, lower, upper)
        seed = get_config().rng_seed if self.seed is None else int(self.seed)
        starts = multistart_points(
            lower, upper, n_starts=self.n_starts, x0=x0, seed=seed
        )
        return ResolvedFit(
            estimator=estimator,
            lower=lower,
            upper=upper,
            x0=x0,
            starts=starts,
            seed=seed,
        )


@dataclass
class ResolvedFit:
    """A :class:`FitJobSpec` materialized into runnable pieces."""

    estimator: object  # MLEstimator (kept loose to avoid an import cycle)
    lower: np.ndarray
    upper: np.ndarray
    x0: np.ndarray
    starts: List[np.ndarray]
    seed: int


def merge_start_results(results: Sequence[dict]) -> dict:
    """Combine per-start outcomes with sequential-multistart semantics.

    Strictly-better ``fun`` wins; ties keep the earliest start — the
    exact rule of :func:`~repro.optim.neldermead.multistart_nelder_mead`,
    so a fanned-out job reports the same theta the sequential search
    would. Evaluation counts aggregate across starts.
    """
    if not results or any(r is None for r in results):
        raise FittingError("cannot merge: not every start has a result")
    best_idx = 0
    for i, res in enumerate(results[1:], start=1):
        if res["fun"] < results[best_idx]["fun"]:
            best_idx = i
    best = results[best_idx]
    return {
        "theta": [float(v) for v in best["x"]],
        "loglik": -float(best["fun"]),
        "fun": float(best["fun"]),
        "nfev": int(sum(r["nfev"] for r in results)),
        "nit": int(sum(r["nit"] for r in results)),
        "converged": bool(best["converged"]),
        "message": str(best["message"]),
        "best_start": best_idx,
        "elapsed": float(sum(r.get("elapsed", 0.0) for r in results)),
    }


class JobStore:
    """On-disk ledger of fit jobs (single-writer ``state.json`` per job).

    Thread-safe within one process; the orchestrator is the only writer
    of job *state*, while worker processes write only their own
    per-start artifact files — so no cross-process locking is needed.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # --------------------------------------------------------------- create
    def create(self, spec: FitJobSpec) -> str:
        """Persist ``spec`` as a new ``queued`` job; returns the job id.

        An unset multistart ``seed`` is pinned to the *submitter's*
        configured ``rng_seed`` here, before the spec hits disk — worker
        processes (which may be spawned with default config, or belong
        to a future orchestrator restarted under different config) must
        all regenerate the identical start list.
        """
        if spec.seed is None:
            spec.seed = get_config().rng_seed
        with self._lock:
            existing = [
                int(p.name.split("-", 1)[1])
                for p in self.root.iterdir()
                if p.is_dir() and p.name.startswith("job-")
                and p.name.split("-", 1)[1].isdigit()
            ]
            job_id = f"job-{(max(existing) + 1 if existing else 1):06d}"
            job_dir = self.root / job_id
            spec.save(job_dir)
            (job_dir / STARTS_DIR).mkdir(exist_ok=True)
            _write_json_atomic(
                job_dir / STATE_NAME,
                {
                    "job_id": job_id,
                    "status": "queued",
                    "n_starts": spec.n_starts,
                    "model_id": spec.model_id,
                    "created_at": time.time(),
                    "started_at": None,
                    "finished_at": None,
                    "restarts": 0,
                    "error": None,
                    "result": None,
                    "bundle_path": None,
                },
            )
            return job_id

    # --------------------------------------------------------------- lookup
    def job_dir(self, job_id: str) -> Path:
        path = self.root / job_id
        if not (path / STATE_NAME).is_file():
            raise JobNotFoundError(f"fit job {job_id!r} is not in this store")
        return path

    def spec(self, job_id: str) -> FitJobSpec:
        return FitJobSpec.load(self.job_dir(job_id))

    def state(self, job_id: str) -> dict:
        try:
            return _read_json(self.job_dir(job_id) / STATE_NAME)
        except json.JSONDecodeError as exc:
            raise FittingError(f"job {job_id!r} state file is corrupt: {exc}") from exc

    def update(self, job_id: str, **fields: object) -> dict:
        """Merge ``fields`` into the job's state (atomic read-modify-write)."""
        with self._lock:
            state = self.state(job_id)
            status = fields.get("status")
            if status is not None and status not in JOB_STATES:
                raise FittingError(f"unknown job status {status!r}")
            state.update(fields)
            _write_json_atomic(self.job_dir(job_id) / STATE_NAME, state)
            return state

    def list_jobs(self) -> List[dict]:
        """State summaries of every job, in submission order."""
        with self._lock:
            out = []
            for path in sorted(self.root.iterdir()):
                if path.is_dir() and (path / STATE_NAME).is_file():
                    out.append(_read_json(path / STATE_NAME))
            return out

    # ------------------------------------------------------ start artifacts
    def checkpoint_path(self, job_id: str, start: int) -> Path:
        return self.job_dir(job_id) / STARTS_DIR / f"checkpoint_{start}.npz"

    def trace_path(self, job_id: str, start: int) -> Path:
        return self.job_dir(job_id) / STARTS_DIR / f"trace_{start}.jsonl"

    def start_result_path(self, job_id: str, start: int) -> Path:
        return self.job_dir(job_id) / STARTS_DIR / f"result_{start}.json"

    def start_error_path(self, job_id: str, start: int) -> Path:
        return self.job_dir(job_id) / STARTS_DIR / f"error_{start}.json"

    def write_start_result(self, job_id: str, start: int, result: dict) -> None:
        _write_json_atomic(self.start_result_path(job_id, start), result)

    def read_start_result(self, job_id: str, start: int) -> Optional[dict]:
        path = self.start_result_path(job_id, start)
        if not path.is_file():
            return None
        return _read_json(path)

    def write_start_error(self, job_id: str, start: int, exc: BaseException) -> None:
        _write_json_atomic(
            self.start_error_path(job_id, start),
            {"type": type(exc).__name__, "message": str(exc)},
        )

    def read_start_error(self, job_id: str, start: int) -> Optional[dict]:
        path = self.start_error_path(job_id, start)
        if not path.is_file():
            return None
        return _read_json(path)

    def has_checkpoint(self, job_id: str, start: int) -> bool:
        return self.checkpoint_path(job_id, start).is_file()

    def trace(self, job_id: str) -> Dict[int, List[dict]]:
        """Per-start ``(iteration, loglik, theta)`` trajectories."""
        job_dir = self.job_dir(job_id)
        n_starts = int(self.state(job_id).get("n_starts", 1))
        out: Dict[int, List[dict]] = {}
        for i in range(n_starts):
            path = job_dir / STARTS_DIR / f"trace_{i}.jsonl"
            if not path.is_file():
                continue
            entries = []
            with path.open() as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except json.JSONDecodeError:
                        break  # torn final line from a kill; keep the prefix
            out[i] = entries
        return out

    def history(self, job_id: str, start: int) -> List[HistoryEntry]:
        """A start's trace as optimizer :class:`HistoryEntry` records
        (``fun`` is the negated loglik, matching the minimizer)."""
        entries = self.trace(job_id).get(start, [])
        return [
            HistoryEntry(
                int(e["iteration"]),
                np.asarray(e["theta"], dtype=np.float64),
                -float(e["loglik"]),
            )
            for e in entries
        ]

    def bundle_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / BUNDLE_DIR

    def write_result(self, job_id: str, result: dict) -> None:
        """Persist the job's merged result (written by the finalize
        process; the scheduler reads it back instead of re-merging)."""
        _write_json_atomic(self.job_dir(job_id) / "result.json", result)

    def read_result(self, job_id: str) -> Optional[dict]:
        path = self.job_dir(job_id) / "result.json"
        if not path.is_file():
            return None
        return _read_json(path)

    def record(self, job_id: str, *, include_trace: bool = True) -> dict:
        """The job's state plus (optionally) its per-start traces."""
        rec = self.state(job_id)
        if include_trace:
            rec["trace"] = {str(i): t for i, t in self.trace(job_id).items()}
        return rec

    # -------------------------------------------------------------- recover
    def recover(self) -> List[str]:
        """Reset orphaned ``running`` jobs after a crash or shutdown.

        A job can only be ``running`` while an orchestrator owns it; on
        startup (or after :meth:`~repro.fitting.FitOrchestrator.stop`)
        any job still marked ``running`` lost its owner. Jobs with at
        least one checkpoint or finished start go back to
        ``checkpointed`` (their paid iterations resume); the rest go
        back to ``queued``. Returns the ids that were reset.
        """
        recovered = []
        with self._lock:
            # A writer killed mid-write leaves a ``*.tmp`` behind; the
            # real file (if any) is the last complete version. Sweep
            # the strays so they can never be mistaken for artifacts.
            for pattern in ("*/*.tmp", f"*/{STARTS_DIR}/*.tmp"):
                for stray in self.root.glob(pattern):
                    try:
                        stray.unlink()
                    except OSError:  # pragma: no cover - best effort
                        pass
            for state in self.list_jobs():
                if state.get("status") != "running":
                    continue
                job_id = state["job_id"]
                n_starts = int(state.get("n_starts", 1))
                has_progress = any(
                    self.has_checkpoint(job_id, i)
                    or self.read_start_result(job_id, i) is not None
                    for i in range(n_starts)
                )
                self.update(
                    job_id, status="checkpointed" if has_progress else "queued"
                )
                recovered.append(job_id)
        return recovered

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobStore(root={str(self.root)!r}, jobs={len(self.list_jobs())})"
