"""Smoke and shape tests for the experiment drivers (figures/tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ablation, fig1, fig2, fig3, fig4, fig5, speedup
from repro.experiments.common import ResultTable, bench_scale, fmt


class TestResultTable:
    def test_render_and_alignment(self):
        t = ResultTable("Demo", ["a", "bb"], notes=["footnote"])
        t.add_row(1, 2.5)
        t.add_row(None, "x")
        text = t.render()
        assert "Demo" in text and "footnote" in text
        assert "-" in text  # None marker

    def test_row_length_guard(self):
        t = ResultTable("T", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_save_txt_and_csv(self, tmp_path):
        t = ResultTable("T", ["a", "b"])
        t.add_row(1, 2)
        path = t.save("unit", directory=tmp_path)
        assert path.read_text().startswith("T")
        assert (tmp_path / "unit.csv").read_text().splitlines()[0] == "a,b"

    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(0.0) == "0"
        assert fmt(1234567.0, digits=3) == "1.235e+06"
        assert fmt("text") == "text"

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale() == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "anything")
        assert bench_scale() == "quick"


class TestFig1:
    def test_rank_table(self):
        table = fig1.run_fig1(n=256, nb=64, accuracies=(1e-4, 1e-8))
        assert len(table.rows) == 2
        # Tighter accuracy -> larger max rank (column 1).
        assert table.rows[1][1] >= table.rows[0][1]


class TestFig2:
    def test_properties(self):
        table = fig2.run_fig2(n=400, n_test=38)
        d = {row[0]: row[1] for row in table.rows}
        assert d["points generated"] == 400
        assert d["fit points"] == 362
        assert d["prediction points"] == 38
        assert d["min nearest-neighbour distance"] > 0


class TestFig3:
    def test_model_series_shape(self):
        t = fig3.model_series("haswell", n_values=(55225, 112225))
        assert len(t.rows) == 2
        assert t.headers[0] == "n"
        row = t.rows[-1]
        # Fig 3 ordering: full-block > full-tile > all TLR columns.
        assert row[1] > row[2]
        assert all(row[2] > c for c in row[3:])

    def test_measured_series_tiny(self):
        t = fig3.measured_series(n_values=(144,), accuracies=(1e-7,), tile_size=48)
        assert len(t.rows) == 1
        assert all(isinstance(c, float) and c > 0 for c in t.rows[0][1:])


class TestFig4Fig5:
    def test_fig4_tables(self):
        t = fig4.model_series(256, n_values=(250_000, 1_000_000))
        assert len(t.rows) == 2
        big = t.rows[-1]
        assert big[1] is None or big[1] > big[2]  # TLR wins (or dense OOM)

    def test_fig5_model(self):
        t = fig5.model_series(n_values=(250_000,))
        assert len(t.rows) == 1

    def test_fig5_measured_tiny(self):
        t = fig5.measured_series(n_values=(144,), accuracies=(1e-7,), m=10, tile_size=48)
        assert len(t.rows) == 1


class TestSpeedupTables:
    def test_shared_memory_matches_claims_loosely(self):
        t = speedup.shared_memory_speedups()
        by_machine = {row[0]: row for row in t.rows}
        for name, claim in speedup.PAPER_CLAIMED_SPEEDUPS.items():
            got = by_machine[name][1]
            assert claim * 0.5 <= got <= claim * 1.5

    def test_distributed(self):
        t = speedup.distributed_speedups(n_nodes=256)
        assert len(t.rows) >= 1
        assert all(row[1] > 0 for row in t.rows)


class TestAblations:
    def test_compression_method_study(self):
        t = ablation.compression_method_study(nb=48, acc=1e-6)
        methods = {row[1] for row in t.rows}
        assert methods == {"svd", "rsvd", "aca"}
        # Every method satisfies the accuracy contract (with ACA slack).
        assert all(row[3] < 1e-4 for row in t.rows)

    def test_ordering_study(self):
        t = ablation.ordering_study(n=256, nb=64, acc=1e-6)
        rows = {row[0]: row for row in t.rows}
        # Morton ordering compresses at least as well as a random shuffle.
        assert rows["morton"][2] <= rows["random permutation"][2]

    def test_scheduler_study(self):
        t = ablation.scheduler_study(n=256, nb=64, num_workers=4)
        assert len(t.rows) == 3
        assert all(row[1] > 0 for row in t.rows)

    def test_tile_size_sweep_tiny(self):
        t = ablation.tile_size_sweep(n=256, tile_sizes=(64, 128), acc=1e-6)
        assert len(t.rows) == 2
