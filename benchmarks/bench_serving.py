#!/usr/bin/env python
"""Serving benchmark: micro-batched vs unbatched prediction service.

Measures the serving subsystem end to end — persisted bundle ->
:class:`~repro.serving.ModelRegistry` -> :class:`~repro.serving.
PredictionService` — under a closed-loop burst of concurrent clients,
in two configurations of the same model:

* ``unbatched`` — ``batch_window=0``, ``max_batch=1``: one engine call
  per request (the request-at-a-time baseline);
* ``batched``   — a small coalescing window: concurrent requests for
  the model are grouped into stacked-target
  :meth:`~repro.mle.prediction_engine.PredictionEngine.predict_many`
  calls (bit-identical results, far fewer engine calls).

Reports requests/sec and p50/p95 latency for both, plus a dedicated
*coalescing proof*: one burst of simultaneous requests and the number
of engine calls it produced. Results go to ``BENCH_serving.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --n 400 --requests 48

or through the benchmark suite (small problem):

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.serving import ModelBundle, ModelRegistry, PredictionService


def build_bundle_dir(n: int, tile_size: int, variant: str, acc: float, root: Path) -> Path:
    """Persist one synthetic fitted model (true theta stands in for a fit)."""
    locs, _, _ = sort_locations(generate_irregular_grid(n, seed=0))
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant,
        tile_size=tile_size, acc=acc,
    )
    return bundle.save(root / "bench.bundle")


def _target_sets(n_requests: int, m: int, seed: int = 7) -> list:
    """Distinct targets per request (no cross-cache freebies for either config)."""
    rng = np.random.default_rng(seed)
    return [np.ascontiguousarray(rng.random((m, 2))) for _ in range(n_requests)]


async def _drive(
    service: PredictionService, targets: list, concurrency: int
) -> float:
    """Fire every target set through the service with bounded concurrency."""
    gate = asyncio.Semaphore(concurrency)

    async def one(t):
        async with gate:
            return await service.predict("bench", t)

    t0 = time.perf_counter()
    await asyncio.gather(*[one(t) for t in targets])
    return time.perf_counter() - t0


def run_config(
    path: Path,
    targets: list,
    *,
    batched: bool,
    window: float,
    max_batch: int,
    concurrency: int,
) -> dict:
    """One service configuration over a fresh registry (cold engine warmed first)."""

    async def main():
        with ModelRegistry(max_models=2) as registry:
            registry.register("bench", path)
            async with PredictionService(
                registry,
                batch_window=window if batched else 0.0,
                max_batch=max_batch if batched else 1,
            ) as svc:
                await svc.predict("bench", targets[0])  # warm: load + factor
                svc.metrics.reset()
                wall = await _drive(svc, targets, concurrency)
                snap = svc.metrics.snapshot()
        return wall, snap

    wall, snap = asyncio.run(main())
    counters, latency = snap["counters"], snap["latency_seconds"]
    return {
        "wall_seconds": wall,
        "requests_per_second": len(targets) / wall,
        "p50_ms": latency.get("p50", 0.0) * 1e3,
        "p95_ms": latency.get("p95", 0.0) * 1e3,
        "engine_calls": counters.get("engine_calls", 0),
        "coalesced_requests": counters.get("coalesced_requests", 0),
        "completed": counters.get("completed", 0),
    }


def run_coalescing_burst(path: Path, m: int, burst: int, window: float) -> dict:
    """The acceptance probe: one burst of simultaneous identical-model requests."""
    targets = _target_sets(burst, m, seed=23)

    async def main():
        with ModelRegistry(max_models=2) as registry:
            registry.register("bench", path)
            async with PredictionService(
                registry, batch_window=window, max_batch=max(burst, 2)
            ) as svc:
                await svc.predict("bench", targets[0])  # warm
                svc.metrics.reset()
                outs = await asyncio.gather(*[svc.predict("bench", t) for t in targets])
                snap = svc.metrics.snapshot()
            # Parity evidence: the coalesced answers equal sequential ones.
            engine = registry.engine("bench")
            max_err = max(
                float(np.max(np.abs(out - engine.predict(t)))) if out.size else 0.0
                for out, t in zip(outs, targets)
            )
        return snap, max_err

    snap, max_err = asyncio.run(main())
    return {
        "concurrent_requests": burst,
        "engine_calls": snap["counters"].get("engine_calls", 0),
        "coalesced_requests": snap["counters"].get("coalesced_requests", 0),
        "max_abs_err_vs_sequential": max_err,
    }


def run_bench(
    n: int = 900,
    m: int = 32,
    tile_size: int = 150,
    acc: float = 1e-9,
    variant: str = "full-block",
    n_requests: int = 96,
    concurrency: int = 48,
    window: float = 0.002,
    max_batch: int = 16,
) -> dict:
    # Note the shape of the closed loop: with more in-flight clients than
    # ``max_batch``, every batched round fills to max_batch from the
    # already-queued backlog and dispatches immediately — the window is a
    # straggler bound, not a per-round tax. A benchmark with
    # ``max_batch >= concurrency`` would instead wait out the full window
    # every round and understate batched throughput.
    """Benchmark batched vs unbatched serving on one persisted model."""
    with tempfile.TemporaryDirectory() as tmp:
        path = build_bundle_dir(n, tile_size, variant, acc, Path(tmp))
        targets = _target_sets(n_requests, m)
        unbatched = run_config(
            path, targets, batched=False, window=window,
            max_batch=max_batch, concurrency=concurrency,
        )
        batched = run_config(
            path, targets, batched=True, window=window,
            max_batch=max_batch, concurrency=concurrency,
        )
        burst = run_coalescing_burst(path, m, burst=8, window=max(window, 0.05))
    summary = {
        "n": n,
        "m_targets_per_request": m,
        "variant": variant,
        "tile_size": tile_size,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "batch_window_seconds": window,
        "max_batch": max_batch,
        "throughput_speedup_batched_vs_unbatched": (
            batched["requests_per_second"] / max(1e-12, unbatched["requests_per_second"])
        ),
        "engine_call_reduction": unbatched["engine_calls"] / max(1, batched["engine_calls"]),
    }
    return {
        "summary": summary,
        "unbatched": unbatched,
        "batched": batched,
        "coalescing_burst": burst,
    }


def write_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the benchmark report JSON (default: ``results/BENCH_serving.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_serving.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_serving(outdir):
    """Benchmark-suite entry: small problem, coalescing + throughput assertions."""
    report = run_bench(
        n=400, m=24, tile_size=100, n_requests=64, concurrency=32, max_batch=8
    )
    burst = report["coalescing_burst"]
    assert burst["concurrent_requests"] >= 4
    assert burst["engine_calls"] <= 2
    assert burst["max_abs_err_vs_sequential"] == 0.0
    assert report["summary"]["throughput_speedup_batched_vs_unbatched"] > 1.0
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=900, help="training-set size")
    parser.add_argument("--m", type=int, default=32, help="targets per request")
    parser.add_argument("--tile-size", type=int, default=150, help="tile size nb")
    parser.add_argument("--acc", type=float, default=1e-9, help="TLR accuracy")
    parser.add_argument(
        "--variant", default="full-block", choices=("full-block", "full-tile", "tlr")
    )
    parser.add_argument("--requests", type=int, default=96, help="total requests")
    parser.add_argument("--concurrency", type=int, default=48, help="concurrent clients")
    parser.add_argument("--window", type=float, default=0.002, help="batch window (s)")
    parser.add_argument("--max-batch", type=int, default=16, help="max requests per batch")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(
        n=args.n,
        m=args.m,
        tile_size=args.tile_size,
        acc=args.acc,
        variant=args.variant,
        n_requests=args.requests,
        concurrency=args.concurrency,
        window=args.window,
        max_batch=args.max_batch,
    )
    path = write_report(report, args.out)
    s = report["summary"]
    print(f"wrote {path}")
    print(
        f"n={s['n']} m={s['m_targets_per_request']} variant={s['variant']} "
        f"requests={s['n_requests']} concurrency={s['concurrency']}"
    )
    for name in ("unbatched", "batched"):
        r = report[name]
        print(
            f"  {name:>9}: {r['requests_per_second']:8.1f} req/s  "
            f"p50 {r['p50_ms']:6.2f} ms  p95 {r['p95_ms']:6.2f} ms  "
            f"engine calls {r['engine_calls']}"
        )
    burst = report["coalescing_burst"]
    print(
        f"coalescing burst: {burst['concurrent_requests']} concurrent requests "
        f"-> {burst['engine_calls']} engine call(s), "
        f"max |err| vs sequential = {burst['max_abs_err_vs_sequential']:.1e}"
    )
    print(
        f"throughput speedup (batched vs unbatched): "
        f"{s['throughput_speedup_batched_vs_unbatched']:.2f}x"
    )


if __name__ == "__main__":
    main()
