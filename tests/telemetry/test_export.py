"""Prometheus rendering/linting and cross-process trace assembly."""

from __future__ import annotations

import pytest

from repro.telemetry.export import assemble_trace, lint_prometheus, render_prometheus
from repro.telemetry.metrics import MetricsRegistry


def _snapshot():
    reg = MetricsRegistry()
    reg.counter("requests", help="total requests").inc(7)
    reg.gauge("warm_engines").set(2)
    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    return reg.snapshot()


def test_render_passes_lint():
    text = render_prometheus(_snapshot())
    lint_prometheus(text)  # must not raise


def test_counter_gets_total_suffix_and_type():
    text = render_prometheus(_snapshot())
    assert "# TYPE repro_requests_total counter" in text
    assert "\nrepro_requests_total 7" in text
    assert "# HELP repro_requests_total total requests" in text
    # gauges are not suffixed
    assert "repro_warm_engines 2" in text


def test_histogram_buckets_are_cumulative_with_inf():
    lines = render_prometheus(_snapshot()).splitlines()
    buckets = [l for l in lines if l.startswith("repro_latency_seconds_bucket")]
    assert buckets == [
        'repro_latency_seconds_bucket{le="0.1"} 1',
        'repro_latency_seconds_bucket{le="1"} 2',
        'repro_latency_seconds_bucket{le="+Inf"} 3',
    ]
    assert "repro_latency_seconds_count 3" in lines
    assert any(l.startswith("repro_latency_seconds_sum") for l in lines)


def test_render_sanitizes_hostile_names():
    snap = {"counters": {"bad name-with.dots": 1}, "gauges": {}, "histograms": {}, "help": {}}
    text = render_prometheus(snap)
    lint_prometheus(text)
    assert "repro_bad_name_with_dots_total 1" in text


@pytest.mark.parametrize(
    "bad",
    [
        "no_type_declared 1\n",
        "# TYPE x counter\nx 1\nx{le=} 2\n",
        "# TYPE x counter\nx not-a-number\n",
        "# BOGUS comment\n",
    ],
)
def test_lint_rejects_malformed(bad):
    with pytest.raises(ValueError):
        lint_prometheus(bad)


def _span(sid, parent, name, t):
    return {
        "trace_id": "t1",
        "span_id": sid,
        "parent_id": parent,
        "name": name,
        "t_start": t,
        "duration": 0.01,
    }


def test_assemble_nests_dedupes_and_sorts():
    spans = [
        _span("b", "a", "child-late", 2.0),
        _span("a", None, "root", 0.0),
        _span("c", "a", "child-early", 1.0),
        _span("b", "a", "child-late", 2.0),  # duplicate collection
        {"trace_id": "other", "span_id": "z", "parent_id": None, "name": "noise", "t_start": 0.0},
    ]
    tree = assemble_trace("t1", spans)
    assert tree["span_count"] == 3
    (root,) = tree["tree"]
    assert root["name"] == "root"
    assert [c["name"] for c in root["children"]] == ["child-early", "child-late"]


def test_assemble_orphans_become_roots():
    spans = [
        _span("a", None, "root", 0.0),
        _span("x", "missing-parent", "orphan", 1.0),
    ]
    tree = assemble_trace("t1", spans)
    assert [r["name"] for r in tree["tree"]] == ["root", "orphan"]
    assert tree["span_count"] == 2
