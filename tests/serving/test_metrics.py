"""ServiceMetrics regressions (empty latency window, arrival rates) and
construction-time validation of serving knobs across the stack."""

from __future__ import annotations

import time

import pytest

from repro.config import Config
from repro.exceptions import ConfigurationError
from repro.serving import ModelRegistry, PredictionService, ServiceMetrics
from repro.serving.service import BatchPolicy


# --------------------------------------------------------------------------
# Empty-window latency regression.
# --------------------------------------------------------------------------


def test_percentiles_on_empty_window_are_zero_not_an_error():
    """Regression: a fresh (or freshly reset) metrics object must answer
    every percentile query with 0.0 — readers poll /v1/metrics before
    the first request completes."""
    metrics = ServiceMetrics()
    for p in (0.0, 50.0, 95.0, 100.0):
        assert metrics.percentile(p) == 0.0
    metrics.observe_latency(0.25)
    assert metrics.percentile(50.0) == 0.25
    metrics.reset()
    assert metrics.percentile(95.0) == 0.0


def test_snapshot_always_carries_latency_keys():
    """Regression: the latency block must carry count/mean/p50/p95/max
    even with zero samples, so snapshot consumers (benchmark writers,
    the HTTP /v1/metrics endpoint) never KeyError on a quiet service."""
    snap = ServiceMetrics().snapshot()
    latency = snap["latency_seconds"]
    assert latency == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    metrics = ServiceMetrics()
    for v in (0.1, 0.2, 0.3):
        metrics.observe_latency(v)
    latency = metrics.snapshot()["latency_seconds"]
    assert latency["count"] == 3
    assert latency["max"] == 0.3
    assert latency["p50"] == 0.2
    assert latency["mean"] == pytest.approx(0.2)


def test_percentile_rejects_out_of_range():
    metrics = ServiceMetrics()
    with pytest.raises(ValueError):
        metrics.percentile(-1.0)
    with pytest.raises(ValueError):
        metrics.percentile(101.0)


# --------------------------------------------------------------------------
# Arrival-rate window (feeds the adaptive batching policy).
# --------------------------------------------------------------------------


def test_arrival_rate_needs_two_samples_and_goes_stale():
    metrics = ServiceMetrics()
    now = time.monotonic()
    assert metrics.arrival_rate("m", t=now) is None
    metrics.record_arrival("m", now - 1.0)
    assert metrics.arrival_rate("m", t=now) is None  # one sample: no rate
    metrics.record_arrival("m", now - 0.5)
    assert metrics.arrival_rate("m", t=now) == pytest.approx(2.0)  # 1 gap / 0.5 s
    # A model that went quiet must not keep reporting its old rate.
    assert metrics.arrival_rate("m", t=now + 1000.0) is None


def test_arrival_rate_estimates_requests_per_second():
    metrics = ServiceMetrics()
    base = time.monotonic()
    for i in range(11):
        metrics.record_arrival("hot", base + 0.01 * i)  # 100 req/s
    rate = metrics.arrival_rate("hot", t=base + 0.1)
    assert rate == pytest.approx(100.0, rel=1e-6)
    snap = metrics.snapshot()
    assert "hot" in snap["arrival_rates"]


def test_metrics_constructor_validation():
    with pytest.raises(ValueError):
        ServiceMetrics(max_samples=0)
    with pytest.raises(ValueError):
        ServiceMetrics(max_arrivals=1)
    with pytest.raises(ValueError):
        ServiceMetrics(arrival_horizon=0.0)


# --------------------------------------------------------------------------
# Construction-time rejection of nonsensical serving knobs — config,
# service, registry, and policy all fail at build time, not first request.
# --------------------------------------------------------------------------


def test_config_rejects_nonsense_serving_knobs():
    with pytest.raises(ConfigurationError):
        Config(serving_max_batch=0)
    with pytest.raises(ConfigurationError):
        Config(serving_batch_window=-0.001)
    with pytest.raises(ConfigurationError):
        Config(serving_queue_size=0)
    with pytest.raises(ConfigurationError):
        Config(serving_max_models=0)
    with pytest.raises(ConfigurationError):
        Config(serving_workers=0)
    with pytest.raises(ConfigurationError):
        Config(serving_max_window=-1.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"max_batch": -3},
        {"batch_window": -0.5},
        {"max_queue": 0},
        {"default_deadline": 0.0},
        {"default_deadline": -2.0},
        {"max_window": -0.1},
    ],
)
def test_service_rejects_nonsense_knobs_at_construction(kwargs):
    """Regression: these used to be silently clamped (max_batch=0 served
    as 1); now they fail loudly before any request can hit them."""
    with ModelRegistry(max_models=2) as registry:
        with pytest.raises(ConfigurationError):
            PredictionService(registry, **kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_models": 0},
        {"num_shards": 0},
        {"workers_per_shard": 0},
    ],
)
def test_registry_rejects_nonsense_knobs_at_construction(kwargs):
    with pytest.raises(ConfigurationError):
        ModelRegistry(**kwargs)


def test_batch_policy_validation():
    with pytest.raises(ConfigurationError):
        BatchPolicy(batch_window=-0.01)
    with pytest.raises(ConfigurationError):
        BatchPolicy(max_batch=0)
    policy = BatchPolicy(batch_window=0.0, max_batch=3)
    assert policy.batch_window == 0.0 and policy.max_batch == 3
