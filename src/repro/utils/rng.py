"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts either an integer seed,
a :class:`numpy.random.Generator`, or ``None`` (library default seed), and
normalizes through :func:`as_generator`. Monte-Carlo harnesses spawn
statistically independent child generators via :func:`spawn_generators`,
following numpy's ``SeedSequence`` guidance, so replicates are reproducible
and independent regardless of execution order.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..config import get_config

__all__ = ["as_generator", "spawn_generators"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` uses the library's configured default seed, making unseeded
    calls deterministic (a deliberate choice for reproducibility of the
    paper's experiments; pass your own generator for fresh entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        seed = get_config().rng_seed
    return np.random.default_rng(int(seed))


def spawn_generators(n: int, seed: SeedLike = None) -> List[np.random.Generator]:
    """Create ``n`` independent child generators from ``seed``.

    Uses ``SeedSequence.spawn`` so children are independent streams; the
    Monte-Carlo harness assigns one child per replicate.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        if seed is None:
            seed = get_config().rng_seed
        ss = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in ss.spawn(n)]
