"""Micro-benchmark: per-task runtime overhead must stay notification-fast.

The worker loop and ``wait_all`` are purely notification-driven (no poll
timeouts); a regression back to timed polling (the seed's 0.2 s / 0.5 s
waits) would push the per-task latency of a dependency chain into the
hundreds of milliseconds. The bounds below are two orders of magnitude
above healthy notify latency, so the test is loose enough for loaded CI
machines yet fails loudly on any return to polling.
"""

from __future__ import annotations

import time

import numpy as np

from repro.runtime import AccessMode, Runtime

RW = AccessMode.READWRITE


def _bump(x):
    x += 1.0


def test_chained_task_overhead():
    """A strict dependency chain hands off between tasks via notify."""
    n_tasks = 200
    with Runtime(num_workers=2) as rt:
        h = rt.register(np.zeros(1))
        t0 = time.perf_counter()
        for _ in range(n_tasks):
            rt.insert_task(_bump, [(h, RW)])
        rt.wait_all()
        elapsed = time.perf_counter() - t0
        assert float(h.get()[0]) == n_tasks
    per_task = elapsed / n_tasks
    assert per_task < 5e-3, f"per-task overhead {per_task * 1e3:.2f} ms (polling regression?)"


def test_wait_all_wakeup_latency():
    """wait_all must return promptly after the last task finishes."""
    with Runtime(num_workers=2) as rt:
        h = rt.register(np.zeros(1))
        rt.insert_task(_bump, [(h, RW)])
        t0 = time.perf_counter()
        rt.wait_all()
        latency = time.perf_counter() - t0
    assert latency < 0.25, f"wait_all took {latency:.3f}s for one trivial task"


def test_independent_task_throughput():
    """Many independent no-op tasks: total wall time stays sub-second."""
    n_tasks = 300
    with Runtime(num_workers=4) as rt:
        handles = [rt.register(np.zeros(1)) for _ in range(n_tasks)]
        t0 = time.perf_counter()
        for h in handles:
            rt.insert_task(_bump, [(h, RW)])
        rt.wait_all()
        elapsed = time.perf_counter() - t0
    assert elapsed / n_tasks < 5e-3
