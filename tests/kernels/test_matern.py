"""Tests for the Matérn correlation family (paper §IV)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import special

from repro.exceptions import ShapeError
from repro.kernels.matern import (
    exponential_correlation,
    gaussian_correlation,
    matern_correlation,
    whittle_correlation,
)


def bessel_matern(r, range_, nu):
    """Direct eq. (5) evaluation (unit variance), for cross-checking."""
    r = np.asarray(r, dtype=float)
    x = r / range_
    out = np.ones_like(x)
    pos = x > 0
    out[pos] = (
        2 ** (1 - nu) / special.gamma(nu) * x[pos] ** nu * special.kv(nu, x[pos])
    )
    return out


class TestSpecialCases:
    def test_zero_distance_is_one(self):
        for nu in (0.3, 0.5, 1.0, 1.5, 2.5, 3.7):
            assert matern_correlation(np.array(0.0), 0.1, nu) == pytest.approx(1.0)

    def test_exponential_case(self, rng):
        r = rng.random(50) * 2
        np.testing.assert_allclose(
            matern_correlation(r, 0.17, 0.5), np.exp(-r / 0.17), rtol=1e-12
        )
        np.testing.assert_allclose(
            exponential_correlation(r, 0.17), np.exp(-r / 0.17), rtol=1e-12
        )

    def test_whittle_case_matches_bessel(self, rng):
        r = rng.random(30) + 0.01
        np.testing.assert_allclose(
            whittle_correlation(r, 0.2), bessel_matern(r, 0.2, 1.0), rtol=1e-9
        )
        np.testing.assert_allclose(
            matern_correlation(r, 0.2, 1.0), bessel_matern(r, 0.2, 1.0), rtol=1e-9
        )

    @pytest.mark.parametrize("nu", [1.5, 2.5])
    def test_polynomial_fast_paths(self, nu, rng):
        r = rng.random(40) * 3 + 1e-3
        np.testing.assert_allclose(
            matern_correlation(r, 0.3, nu), bessel_matern(r, 0.3, nu), rtol=1e-9
        )

    def test_general_nu_matches_bessel(self, rng):
        r = rng.random(25) * 2 + 1e-3
        for nu in (0.3, 0.75, 1.2, 3.3):
            np.testing.assert_allclose(
                matern_correlation(r, 0.15, nu), bessel_matern(r, 0.15, nu), rtol=1e-8
            )

    def test_large_nu_uses_gaussian_limit(self):
        r = np.linspace(0, 0.5, 20)
        got = matern_correlation(r, 0.1, 80.0)
        np.testing.assert_allclose(got, gaussian_correlation(r, 0.1), rtol=1e-12)


class TestNumericalRobustness:
    def test_huge_distances_underflow_to_zero(self):
        r = np.array([1e3, 1e6])
        for nu in (0.5, 1.0, 2.2):
            vals = matern_correlation(r, 0.01, nu)
            assert np.all(np.isfinite(vals))
            assert np.all(vals < 1e-10)

    def test_tiny_positive_distance(self):
        vals = matern_correlation(np.array([1e-14]), 0.1, 0.8)
        assert np.all(np.isfinite(vals))
        assert vals[0] == pytest.approx(1.0, abs=1e-3)

    def test_values_in_unit_interval(self, rng):
        r = np.abs(rng.normal(0, 2, 200))
        for nu in (0.4, 0.5, 1.0, 1.5, 2.5, 4.0):
            vals = matern_correlation(r, 0.2, nu)
            assert np.all(vals >= 0.0) and np.all(vals <= 1.0)

    def test_monotone_decreasing_in_distance(self):
        r = np.linspace(0, 2, 100)
        for nu in (0.5, 1.0, 1.5, 3.0):
            vals = matern_correlation(r, 0.3, nu)
            assert np.all(np.diff(vals) <= 1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(ShapeError):
            matern_correlation(np.array([1.0]), -0.1, 0.5)
        with pytest.raises(ShapeError):
            matern_correlation(np.array([1.0]), 0.1, 0.0)

    @given(
        st.floats(0.01, 5.0),
        st.floats(0.05, 2.0),
        st.floats(0.2, 4.0),
    )
    def test_property_bounded_and_finite(self, r, range_, nu):
        v = float(matern_correlation(np.array(r), range_, nu))
        assert np.isfinite(v)
        assert 0.0 <= v <= 1.0


class TestPositiveDefiniteness:
    @pytest.mark.parametrize("nu", [0.5, 1.0, 1.5, 0.8])
    def test_min_eigenvalue_nonnegative(self, nu, rng):
        pts = rng.random((40, 2))
        from repro.kernels.distance import euclidean_distance_matrix

        d = euclidean_distance_matrix(pts)
        c = matern_correlation(d, 0.2, nu)
        eigs = np.linalg.eigvalsh(c)
        assert eigs.min() > -1e-8
