"""Execution tracing for the runtime.

Records per-task (worker, start, end) triples so tests and ablations can
compute utilization, per-codelet time breakdowns, and Gantt-style rows —
the information StarPU exposes through its FxT traces.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed task occurrence."""

    task_id: int
    name: str
    worker: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        """Seconds spent executing."""
        return self.t_end - self.t_start


class TraceRecorder:
    """Thread-safe accumulator of :class:`TraceEvent` records."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        """Append one event (called from worker threads)."""
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of recorded events (sorted by start time)."""
        with self._lock:
            return sorted(self._events, key=lambda e: e.t_start)

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------ analysis
    def makespan(self) -> float:
        """Wall-clock span from first start to last end (0 if empty)."""
        ev = self.events
        if not ev:
            return 0.0
        return max(e.t_end for e in ev) - min(e.t_start for e in ev)

    def busy_time(self) -> float:
        """Total task execution time summed over workers."""
        return sum(e.duration for e in self.events)

    def utilization(self, num_workers: int) -> float:
        """Fraction of worker-seconds spent executing tasks, in [0, 1]."""
        span = self.makespan()
        if span <= 0.0 or num_workers <= 0:
            return 0.0
        return min(1.0, self.busy_time() / (span * num_workers))

    def by_codelet(self) -> Dict[str, Tuple[int, float]]:
        """Per-codelet ``(count, total_seconds)`` summary."""
        out: Dict[str, Tuple[int, float]] = {}
        for e in self.events:
            count, total = out.get(e.name, (0, 0.0))
            out[e.name] = (count + 1, total + e.duration)
        return out

    def gantt_rows(self) -> List[Tuple[int, str, float, float]]:
        """``(worker, name, start, end)`` rows, normalized to t0 = 0."""
        ev = self.events
        if not ev:
            return []
        t0 = min(e.t_start for e in ev)
        return [(e.worker, e.name, e.t_start - t0, e.t_end - t0) for e in ev]
