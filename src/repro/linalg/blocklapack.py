"""Full-block (LAPACK-style) dense reference path.

The paper's "Full-block" variant is the classical LAPACK implementation
linked against Intel MKL: one big Cholesky factorization of the dense
covariance matrix, a triangular solve, and a log-determinant read off the
factor's diagonal. This module is that baseline, expressed through
scipy's LAPACK bindings, and is the ground truth the tile and TLR paths
are validated against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla

from ..exceptions import NotPositiveDefiniteError
from ..utils.validation import check_square

__all__ = ["block_cholesky", "block_logdet_from_factor", "block_cholesky_solve"]


def block_cholesky(a: np.ndarray, *, overwrite: bool = False) -> np.ndarray:
    """Lower Cholesky factor of a symmetric positive-definite matrix.

    Parameters
    ----------
    a:
        ``(n, n)`` SPD matrix.
    overwrite:
        Allow scipy to factor in place (the input is then clobbered).

    Returns
    -------
    Lower-triangular ``L`` with ``L @ L.T == a`` (strict upper zeroed).

    Raises
    ------
    NotPositiveDefiniteError
        If the matrix is not numerically positive definite.
    """
    check_square(a, "a")
    try:
        factor = sla.cholesky(a, lower=True, overwrite_a=overwrite, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc
    return factor


def block_logdet_from_factor(factor: np.ndarray) -> float:
    """``log |A|`` from a lower Cholesky factor: ``2 * sum(log diag(L))``."""
    check_square(factor, "factor")
    diag = np.diagonal(factor)
    if np.any(diag <= 0.0):
        raise NotPositiveDefiniteError("factor has non-positive diagonal entries")
    return float(2.0 * np.sum(np.log(diag)))


def block_cholesky_solve(
    factor: np.ndarray, b: np.ndarray, *, return_half_solve: bool = False
) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
    """Solve ``A x = b`` given the lower Cholesky factor of ``A``.

    Parameters
    ----------
    factor:
        Lower Cholesky factor ``L``.
    b:
        Right-hand side(s), ``(n,)`` or ``(n, m)``.
    return_half_solve:
        Also return ``y = L^{-1} b``. The Gaussian log-likelihood needs
        only ``||y||^2 = z' A^{-1} z``, so MLE paths stop half-way.

    Returns
    -------
    ``x`` (and ``y`` when requested).
    """
    check_square(factor, "factor")
    y = sla.solve_triangular(factor, b, lower=True, check_finite=False)
    x = sla.solve_triangular(factor, y, lower=True, trans="T", check_finite=False)
    if return_half_solve:
        return x, y
    return x
