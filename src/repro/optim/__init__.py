"""Derivative-free optimization (NLopt substitute; paper §VI).

ExaGeoStat maximizes the Gaussian log-likelihood with NLopt's
derivative-free local optimizers. This subpackage provides a from-scratch
bound-constrained Nelder-Mead simplex implementation with the same role:
maximize a black-box objective over a box, no gradients, tolerance-based
termination. A multi-start wrapper guards against the simplex stalling on
anisotropic likelihood surfaces.
"""

from .result import HistoryEntry, OptimizeResult
from .neldermead import (
    SimplexState,
    multistart_nelder_mead,
    multistart_points,
    nelder_mead,
)
from .bounds import clip_to_bounds, default_matern_bounds, empirical_start

__all__ = [
    "HistoryEntry",
    "OptimizeResult",
    "SimplexState",
    "nelder_mead",
    "multistart_nelder_mead",
    "multistart_points",
    "clip_to_bounds",
    "default_matern_bounds",
    "empirical_start",
]
