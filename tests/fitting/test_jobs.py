"""JobStore: spec round-trips, state machine, and crash recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import FittingError, JobNotFoundError
from repro.fitting.checkpoint import save_state
from repro.fitting.jobs import FitJobSpec, JobStore, merge_start_results
from repro.kernels import MaternCovariance
from repro.optim.neldermead import SimplexState, multistart_points


@pytest.fixture(scope="module")
def data():
    locs = generate_irregular_grid(64, seed=0)
    z = sample_gaussian_field(locs, MaternCovariance(1.0, 0.1, 0.5), seed=1)
    return locs, z


class TestFitJobSpec:
    def test_round_trip_with_inline_arrays(self, data, tmp_path):
        locs, z = data
        spec = FitJobSpec(
            locations=locs,
            z=z,
            variant="full-tile",
            tile_size=16,
            n_starts=3,
            seed=11,
            maxiter=50,
            bounds={"lower": [0.01, 0.001, 0.1], "upper": [10.0, 2.0, 4.0]},
            model_id="m1",
        )
        spec.save(tmp_path)
        loaded = FitJobSpec.load(tmp_path)
        np.testing.assert_array_equal(loaded.locations, locs)
        np.testing.assert_array_equal(loaded.z, z)
        assert loaded.variant == "full-tile"
        assert loaded.tile_size == 16
        assert loaded.n_starts == 3 and loaded.seed == 11
        assert loaded.bounds == spec.bounds
        assert loaded.model_id == "m1"

    def test_round_trip_with_bundle_reference(self, data, tmp_path):
        locs, z = data
        from repro.serving import ModelBundle

        model = MaternCovariance(1.3, 0.2, 0.7)
        bundle_path = ModelBundle(
            model=model, locations=locs, z=z, variant="full-block"
        ).save(tmp_path / "b.bundle")
        spec = FitJobSpec(bundle_path=str(bundle_path), warm_start=True, maxiter=30)
        spec.save(tmp_path / "job")
        loaded = FitJobSpec.load(tmp_path / "job")
        assert loaded.locations is None and loaded.z is None
        resolved = loaded.resolve()
        # Data and model come from the bundle; warm start = bundle theta.
        assert resolved.estimator.locations.shape == locs.shape
        np.testing.assert_array_equal(resolved.x0, model.theta)
        np.testing.assert_array_equal(resolved.starts[0], model.theta)

    def test_resolution_matches_in_process_fit_inputs(self, data):
        """The spec's resolved bounds / x0 / starts are exactly what
        MLEstimator.fit would use — the precondition for parallel
        multistart parity."""
        from repro.mle import MLEstimator
        from repro.optim.bounds import empirical_start

        locs, z = data
        spec = FitJobSpec(locations=locs, z=z, n_starts=4, seed=13)
        resolved = spec.resolve()
        est = MLEstimator(locs, z)
        lower, upper = est.default_bounds()
        np.testing.assert_array_equal(resolved.lower, lower)
        np.testing.assert_array_equal(resolved.upper, upper)
        np.testing.assert_array_equal(
            resolved.x0, empirical_start(est.z, lower, upper)
        )
        expected = multistart_points(
            lower, upper, n_starts=4, x0=resolved.x0, seed=13
        )
        assert len(resolved.starts) == 4
        for a, b in zip(resolved.starts, expected):
            np.testing.assert_array_equal(a, b)

    def test_refit_z_in_original_order_is_realigned_by_the_bundle_perm(
        self, tmp_path
    ):
        """Regression: 'same stations, new measurements' with unsorted
        original locations — inline z arrives in the user's original row
        order, the bundle's locations are Morton-permuted, and the
        persisted permutation must realign them. Without it the MLE
        would silently fit shuffled (location, value) pairs."""
        from repro.mle import MLEstimator

        rng = np.random.default_rng(3)
        locs = np.ascontiguousarray(rng.random((64, 2)))  # NOT pre-sorted
        model = MaternCovariance(1.0, 0.1, 0.5)
        z1 = sample_gaussian_field(locs, model, seed=1)
        est = MLEstimator(locs, z1, variant="full-block")
        assert est._perm is not None and not np.array_equal(
            est._perm, np.arange(64)
        ), "test needs a non-identity Morton permutation"
        fit = est.fit(maxiter=15)
        bundle_path = est.save_fit(fit, tmp_path / "b.bundle")

        z2 = sample_gaussian_field(locs, MaternCovariance(1.5, 0.2, 0.8), seed=9)
        resolved = FitJobSpec(bundle_path=str(bundle_path), z=z2).resolve()
        # The resolved estimator pairs each stored location with the new
        # measurement taken at that station.
        np.testing.assert_array_equal(resolved.estimator.z, z2[est._perm])
        # End-to-end: same theta as fitting (locs, z2) directly.
        ref = MLEstimator(locs, z2, variant="full-block").fit(maxiter=25)
        job_fit = resolved.estimator.fit(maxiter=25)
        np.testing.assert_array_equal(job_fit.theta, ref.theta)

        with pytest.raises(FittingError):
            FitJobSpec(bundle_path=str(bundle_path), z=z2[:10]).resolve()

        # Chained refits: the refit bundle must persist the COMPOSED
        # original→stored permutation, so a second-generation refit
        # still accepts z in the original station order.
        resolved2 = FitJobSpec(bundle_path=str(bundle_path), z=z2).resolve()
        np.testing.assert_array_equal(resolved2.estimator._perm, est._perm)

    def test_seed_pinned_at_submit_time(self, data, tmp_path):
        """A seed-less spec must capture the submitter's configured
        rng_seed in spec.json — workers (possibly spawned with default
        config, or run by a restarted orchestrator) regenerate the same
        start list."""
        from repro.config import use_config

        locs, z = data
        store = JobStore(tmp_path)
        with use_config(rng_seed=777):
            job = store.create(FitJobSpec(locations=locs, z=z, n_starts=3))
        loaded = store.spec(job)
        assert loaded.seed == 777
        resolved = loaded.resolve()  # default config: must still use 777
        assert resolved.seed == 777

    def test_validation_errors(self, data):
        locs, z = data
        with pytest.raises(FittingError):
            FitJobSpec()  # no data at all
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs, z=z[:10])  # length mismatch
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs)  # locations without z
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs, z=z, warm_start=True)  # no theta source
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs, z=z, n_starts=0)
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs, z=z, maxiter=0)
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs, z=z, bounds={"lower": [0.1]})
        with pytest.raises(FittingError):
            FitJobSpec(locations=locs, z=np.stack([z, z], axis=1))  # 2-D z


class TestMergeRule:
    def test_best_fun_wins_ties_keep_earliest(self):
        results = [
            {"x": [1.0], "fun": 2.0, "nfev": 10, "nit": 5, "converged": True, "message": "a", "elapsed": 0.1},
            {"x": [2.0], "fun": 1.0, "nfev": 20, "nit": 6, "converged": False, "message": "b", "elapsed": 0.2},
            {"x": [3.0], "fun": 1.0, "nfev": 30, "nit": 7, "converged": True, "message": "c", "elapsed": 0.3},
        ]
        merged = merge_start_results(results)
        assert merged["best_start"] == 1  # strict <: the tie keeps index 1
        assert merged["theta"] == [2.0]
        assert merged["nfev"] == 60 and merged["nit"] == 18
        assert merged["loglik"] == -1.0

    def test_incomplete_results_rejected(self):
        with pytest.raises(FittingError):
            merge_start_results([None])


class TestJobStore:
    def _spec(self, data):
        locs, z = data
        return FitJobSpec(locations=locs, z=z, n_starts=2, maxiter=20)

    def test_create_assigns_sequential_ids_and_queued_state(self, data, tmp_path):
        store = JobStore(tmp_path)
        a = store.create(self._spec(data))
        b = store.create(self._spec(data))
        assert [a, b] == ["job-000001", "job-000002"]
        assert store.state(a)["status"] == "queued"
        assert store.state(a)["n_starts"] == 2
        assert [s["job_id"] for s in store.list_jobs()] == [a, b]

    def test_ids_continue_after_reopen(self, data, tmp_path):
        store = JobStore(tmp_path)
        store.create(self._spec(data))
        reopened = JobStore(tmp_path)
        assert reopened.create(self._spec(data)) == "job-000002"

    def test_unknown_job_raises_typed_error(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobNotFoundError):
            store.state("job-999999")
        with pytest.raises(FittingError):
            store.update("job-999999", status="done")

    def test_update_rejects_unknown_status(self, data, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(self._spec(data))
        with pytest.raises(FittingError):
            store.update(job, status="exploded")

    def test_start_artifacts_round_trip(self, data, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(self._spec(data))
        result = {"x": [1.0, 2.0, 3.0], "fun": -5.0, "nfev": 42, "nit": 17,
                  "converged": True, "message": "ok", "elapsed": 1.5}
        store.write_start_result(job, 0, result)
        assert store.read_start_result(job, 0) == result
        assert store.read_start_result(job, 1) is None
        store.write_start_error(job, 1, ValueError("boom"))
        assert store.read_start_error(job, 1) == {"type": "ValueError", "message": "boom"}

    def test_trace_tolerates_a_torn_final_line(self, data, tmp_path):
        """A worker killed mid-write leaves a partial last line; the
        trace keeps the complete prefix instead of failing."""
        store = JobStore(tmp_path)
        job = store.create(self._spec(data))
        with store.trace_path(job, 0).open("w") as fh:
            fh.write(json.dumps({"iteration": 1, "loglik": -3.0, "theta": [1.0]}) + "\n")
            fh.write('{"iteration": 2, "loglik": -2.')  # torn by the kill
        trace = store.trace(job)
        assert [e["iteration"] for e in trace[0]] == [1]

    def test_recover_resets_orphaned_running_jobs(self, data, tmp_path):
        """Crash recovery: 'running' without an owner goes back to
        'checkpointed' when there is progress on disk, else 'queued'."""
        store = JobStore(tmp_path)
        with_progress = store.create(self._spec(data))
        without_progress = store.create(self._spec(data))
        finished = store.create(self._spec(data))
        store.update(with_progress, status="running")
        store.update(without_progress, status="running")
        store.update(finished, status="done")
        state = SimplexState(
            simplex=np.zeros((4, 3)), fvals=np.zeros(4), iteration=3, nfev=7,
            history=[],
        )
        save_state(store.checkpoint_path(with_progress, 0), state)

        recovered = JobStore(tmp_path)  # a fresh orchestrator's view
        reset = recovered.recover()
        assert sorted(reset) == sorted([with_progress, without_progress])
        assert recovered.state(with_progress)["status"] == "checkpointed"
        assert recovered.state(without_progress)["status"] == "queued"
        assert recovered.state(finished)["status"] == "done"

    def test_recover_sweeps_torn_mid_write_temp_files(self, data, tmp_path):
        """A writer killed between opening its temp file and the
        ``os.replace`` leaves a ``*.tmp`` stray. ``recover()`` removes
        them, the durable copies stay authoritative, and the job still
        resumes from its checkpoint."""
        store = JobStore(tmp_path)
        job = store.create(self._spec(data))
        store.update(job, status="running")
        state = SimplexState(
            simplex=np.zeros((4, 3)), fvals=np.zeros(4), iteration=5, nfev=9,
            history=[],
        )
        save_state(store.checkpoint_path(job, 0), state)

        # Simulate kills mid-write: truncated temp files next to the
        # committed state.json and checkpoint.
        torn_state = store.job_dir(job) / "state.json.tmp"
        torn_state.write_text('{"status": "don')  # cut mid-token
        ckpt = store.checkpoint_path(job, 0)
        torn_ckpt = ckpt.with_name(ckpt.name + ".tmp")
        torn_ckpt.write_bytes(ckpt.read_bytes()[:40])

        recovered = JobStore(tmp_path)
        assert recovered.recover() == [job]
        assert not torn_state.exists() and not torn_ckpt.exists()
        # The committed versions were untouched by the sweep.
        assert recovered.state(job)["status"] == "checkpointed"
        assert recovered.has_checkpoint(job, 0)
        from repro.fitting.checkpoint import load_state

        resumed = load_state(ckpt)
        assert resumed.iteration == 5 and resumed.nfev == 9

    def test_record_includes_trace(self, data, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(self._spec(data))
        with store.trace_path(job, 1).open("w") as fh:
            fh.write(json.dumps({"iteration": 1, "loglik": -1.0, "theta": [1.0]}) + "\n")
        record = store.record(job)
        assert record["trace"]["1"][0]["loglik"] == -1.0
        assert "trace" not in store.record(job, include_trace=False)
