"""Accuracy metrics (paper eq. (7)).

The paper assesses prediction quality with the mean squared error over
100 held-out points; MAE and RMSE are provided as standard companions.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import as_float_array

__all__ = ["mean_squared_error", "root_mean_squared_error", "mean_absolute_error"]


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    yt = as_float_array(y_true, "y_true")
    yp = as_float_array(y_pred, "y_pred")
    if yt.shape != yp.shape:
        raise ShapeError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.size == 0:
        raise ShapeError("metrics need at least one value")
    return yt, yp


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MSE, the paper's eq. (7): ``mean((Y_i - Yhat_i)^2)``."""
    yt, yp = _pair(y_true, y_pred)
    return float(np.mean((yt - yp) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Square root of the MSE."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    yt, yp = _pair(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))
