"""TLR codelets: the four kernels of the TLR Cholesky (paper §V).

Each codelet mutates its output tile in place (dense diagonal tiles) or
rebinds the factors of its output :class:`LowRank` block, so the same
functions serve the serial loop and the task runtime.

Kernel inventory (lower Cholesky, iteration ``k``):

* :func:`tlr_potrf_codelet` — dense POTRF on ``D_kk``;
* :func:`tlr_trsm_codelet` — ``A_ik <- A_ik L_kk^{-T}`` touches only the
  ``k x nb`` factor ``V_ik`` (this is where TLR wins its flops);
* :func:`tlr_syrk_codelet` — dense diagonal update
  ``D_ii -= U_ik (V_ik V_ik^T) U_ik^T`` via two skinny GEMMs;
* :func:`tlr_gemm_codelet` — low-rank trailing update
  ``A_ij -= U_ik (V_ik V_jk^T U_jk^T)`` followed by QR+SVD recompression
  back to the accuracy threshold.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..exceptions import NotPositiveDefiniteError
from .compression import LowRank, lr_add, recompress

__all__ = [
    "tlr_potrf_codelet",
    "tlr_trsm_codelet",
    "tlr_syrk_codelet",
    "tlr_gemm_codelet",
]


def tlr_potrf_codelet(dkk: np.ndarray) -> None:
    """In-place lower Cholesky of a dense diagonal tile."""
    try:
        factor = sla.cholesky(dkk, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            f"diagonal tile not positive definite under TLR updates: {exc}"
        ) from exc
    dkk[:] = np.tril(factor)


def tlr_trsm_codelet(lkk: np.ndarray, block: LowRank) -> None:
    """``block <- block @ inv(lkk).T`` applied to the V factor only.

    With ``A_ik = U V``, the panel TRSM ``A_ik L_kk^{-T}`` equals
    ``U (V L_kk^{-T})``; cost ``O(k nb^2)`` instead of ``O(nb^3)``.
    """
    if block.rank == 0:
        return
    vt = sla.solve_triangular(lkk, block.v.T, lower=True, check_finite=False)
    block.set_factors(block.u, np.ascontiguousarray(vt.T))


def tlr_syrk_codelet(aik: LowRank, dii: np.ndarray) -> None:
    """Dense diagonal update ``dii -= aik @ aik.T`` from a low-rank panel.

    Factored as ``(U (V V^T)) U^T`` — two ``nb x k`` GEMMs plus a ``k x k``
    Gram matrix, ``O(k nb^2 + k^2 nb)`` flops.
    """
    if aik.rank == 0:
        return
    w = aik.v @ aik.v.T
    t = aik.u @ w
    dii -= t @ aik.u.T


def tlr_gemm_codelet(
    aij: LowRank,
    aik: LowRank,
    ajk: LowRank,
    acc: float,
    *,
    rule: str | None = None,
) -> None:
    """Low-rank trailing update ``aij -= aik @ ajk.T``, then recompress.

    The product of two low-rank panels is itself low-rank with rank
    ``min(k_ik, k_jk)``:

        aik @ ajk.T = U_ik (V_ik V_jk^T) U_jk^T = U_ik W U_jk^T

    The update is appended by factor concatenation (exact) and rounded
    back to accuracy ``acc`` with QR+SVD recompression — HiCMA's scheme
    for keeping ranks bounded across the ``O(nt^3)`` update sweep.
    """
    if aik.rank == 0 or ajk.rank == 0:
        return
    w = aik.v @ ajk.v.T  # (k_ik, k_jk)
    pu = aik.u  # (nb_i, k_ik)
    pv = w @ ajk.u.T  # (k_ik, nb_j)
    update = LowRank(pu, pv)
    summed = lr_add(aij, update, beta=-1.0)
    rounded = recompress(summed, acc, rule=rule)
    aij.set_factors(rounded.u, rounded.v)
