"""Counters and latency percentiles for the serving subsystem.

A deliberately small, dependency-free metrics surface: named monotonic
counters plus a bounded reservoir of request latencies, all behind one
lock so the asyncio event loop, executor worker threads, and benchmark
readers can share a :class:`ServiceMetrics` instance. ``snapshot()``
returns the plain-dict form that ``benchmarks/bench_serving.py`` writes
into ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict

__all__ = ["ServiceMetrics"]


def _nearest_rank(samples: list, p: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty sample."""
    rank = max(0, min(len(samples) - 1, round(p / 100.0 * (len(samples) - 1))))
    return samples[rank]


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for a prediction service.

    Parameters
    ----------
    max_samples:
        Latency samples retained (newest-wins ring buffer). Percentiles
        are computed over this window, so a long-running service reports
        *recent* latency, not lifetime latency.

    Counter names used by :class:`~repro.serving.service.PredictionService`:

    ``requests``            accepted submissions;
    ``completed``           requests answered successfully;
    ``engine_calls``        PredictionEngine invocations (the quantity
                            micro-batching minimizes);
    ``batches``             dispatch rounds that grouped >= 2 requests;
    ``coalesced_requests``  requests served through a grouped call;
    ``rejected_overload``   submissions refused by backpressure;
    ``deadline_exceeded``   requests expired before dispatch;
    ``batch_retries``       failed groups re-dispatched per request so
                            one bad request cannot poison its batch;
    ``errors``              requests failed by an engine error.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=int(max_samples))

    # -------------------------------------------------------------- writers
    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter ``name`` by ``by`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    def observe_latency(self, seconds: float) -> None:
        """Record one request's submit-to-answer latency."""
        with self._lock:
            self._latencies.append(float(seconds))

    def reset(self) -> None:
        """Zero every counter and drop all latency samples."""
        with self._lock:
            self._counters.clear()
            self._latencies.clear()

    # -------------------------------------------------------------- readers
    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def percentile(self, p: float) -> float:
        """Latency percentile ``p`` in [0, 100] over the retained window.

        Nearest-rank on the sorted sample; 0.0 with no samples.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return 0.0
        return _nearest_rank(samples, p)

    def snapshot(self) -> dict:
        """Plain-dict view: all counters plus latency statistics (seconds)."""
        with self._lock:
            counters = dict(self._counters)
            samples = sorted(self._latencies)
        latency = {"count": len(samples)}
        if samples:
            latency.update(
                mean=sum(samples) / len(samples),
                p50=_nearest_rank(samples, 50.0),
                p95=_nearest_rank(samples, 95.0),
                max=samples[-1],
            )
        return {"counters": counters, "latency_seconds": latency}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"ServiceMetrics({dict(self._counters)}, samples={len(self._latencies)})"
