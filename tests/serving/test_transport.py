"""End-to-end transport parity and fault tests for the binary wire path.

The headline assertions of the PR-7 transport work:

* JSON and binary transports are **bit-identical** (0.0 absolute
  error) to the in-process engine for every substrate — streamed or
  buffered, serial or pipelined, predict-by-id or register-by-upload.
* Where strict JSON *cannot* be correct (non-finite predictions) the
  JSON path fails typed instead of shipping ``NaN`` as a quiet
  ``null``/``Infinity`` token, and the binary path carries the exact
  bits.
* A connection dropped mid-stream — on the request or the response
  side — yields a typed error, leaves no half-written registry or
  upload state, and the server keeps serving.
"""

from __future__ import annotations

import io
import socket
import time

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import ModelNotFoundError, PredictionError, ServerError
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.resilience.faults import FaultPlan, FaultRule, arm, disarm
from repro.serving import ModelBundle, ServingClient, ServingServer, wire

N, NB, ACC = 144, 36, 1e-9
VARIANTS = ("full-block", "full-tile", "tlr")


def _make_bundle(variant, z=None):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(1.0, 0.1, 0.5)
    if z is None:
        z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant, tile_size=NB, acc=ACC
    )
    bundle.factor = bundle.build_engine().factor()
    return bundle


@pytest.fixture(scope="module")
def bundle_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("bundles")
    paths = {v: _make_bundle(v).save(root / f"{v}.bundle") for v in VARIANTS}
    # A model whose kriging weights overflow float64: every prediction
    # is non-finite — the regression vehicle for the JSON NaN bug.
    bad_z = np.where(np.arange(N) % 2 == 0, 1e308, -1e308)
    paths["nonfinite"] = _make_bundle("full-block", z=bad_z).save(
        root / "nonfinite.bundle"
    )
    return paths


@pytest.fixture(scope="module")
def server(bundle_paths):
    with ServingServer(
        dict(bundle_paths),
        num_workers=2,
        service_options={"batch_window": 0.01, "max_batch": 16},
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with ServingClient(server.url) as cli:
        yield cli


@pytest.fixture(scope="module")
def bclient(server):
    with ServingClient(server.url, transport="binary") as cli:
        yield cli


@pytest.fixture(scope="module")
def targets():
    return np.ascontiguousarray(np.random.default_rng(5).random((11, 2)))


@pytest.fixture(autouse=True)
def _no_faults():
    yield
    disarm()


# --------------------------------------------------------------------------
# Parity: binary == JSON == in-process, bit for bit, per substrate.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_binary_json_inprocess_bit_identical(bundle_paths, client, bclient,
                                             targets, variant):
    reference = PredictionEngine.from_bundle(bundle_paths[variant]).predict(targets)
    via_json = client.predict(variant, targets)
    via_binary = bclient.predict(variant, targets)
    np.testing.assert_array_equal(via_json, reference)
    np.testing.assert_array_equal(via_binary, reference)


@pytest.mark.parametrize("variant", VARIANTS)
def test_binary_explicit_z_bit_identical(bundle_paths, bclient, targets, variant):
    engine = PredictionEngine.from_bundle(bundle_paths[variant])
    z = 0.5 * engine.z + 1.0
    np.testing.assert_array_equal(
        bclient.predict(variant, targets, z=z), engine.predict(targets, z=z)
    )


def test_per_call_transport_override(bundle_paths, client, targets):
    """One client, both transports: ``transport=`` per call wins."""
    reference = PredictionEngine.from_bundle(bundle_paths["tlr"]).predict(targets)
    np.testing.assert_array_equal(
        client.predict("tlr", targets, transport="binary"), reference
    )
    np.testing.assert_array_equal(client.predict("tlr", targets), reference)


def test_streamed_equals_buffered_decode(server, bundle_paths, bclient):
    """A multi-chunk streamed response decodes identically to buffering
    the whole chunked body first and decoding from memory."""
    big = np.random.default_rng(6).random((20_000, 2))  # 320 kB > CHUNK_SIZE
    streamed = bclient.predict("full-block", big)

    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        meta = {"model_id": "full-block"}
        arrays = {"targets": big}
        conn.request(
            "POST", "/v1/predict", body=wire.encode_message(meta, arrays),
            headers={"Content-Type": wire.CONTENT_TYPE,
                     "Accept": wire.CONTENT_TYPE},
        )
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == wire.CONTENT_TYPE
        whole_body = response.read()  # buffered: the other decode path
    finally:
        conn.close()
    _, buffered = wire.read_message(io.BytesIO(whole_body).read)
    np.testing.assert_array_equal(streamed, buffered["prediction"])
    np.testing.assert_array_equal(
        streamed, PredictionEngine.from_bundle(bundle_paths["full-block"]).predict(big)
    )


# --------------------------------------------------------------------------
# Pipelining
# --------------------------------------------------------------------------


@pytest.mark.parametrize("transport", ("json", "binary"))
def test_pipelined_equals_serial(bundle_paths, client, bclient, transport):
    rng = np.random.default_rng(7)
    requests = [
        {"model_id": variant, "targets": rng.random((9, 2))}
        for variant in VARIANTS for _ in range(3)
    ]
    cli = bclient if transport == "binary" else client
    pipelined = cli.predict_pipelined(requests, transport=transport)
    assert len(pipelined) == len(requests)
    for req, got in zip(requests, pipelined):
        serial = client.predict(req["model_id"], req["targets"])
        np.testing.assert_array_equal(got, serial)
        reference = PredictionEngine.from_bundle(
            bundle_paths[req["model_id"]]
        ).predict(np.asarray(req["targets"]))
        np.testing.assert_array_equal(got, reference)


def test_pipelined_error_slots_are_none_and_typed(client, targets):
    requests = [
        {"model_id": "full-block", "targets": targets},
        {"model_id": "no-such-model", "targets": targets},
        {"model_id": "tlr", "targets": targets},
    ]
    with pytest.raises(ModelNotFoundError):
        client.predict_pipelined(requests)


# --------------------------------------------------------------------------
# Register-by-upload (binary body on /v1/models/<id>)
# --------------------------------------------------------------------------


def test_register_by_upload_bit_identical(bundle_paths, bclient, client, targets):
    """An uploaded bundle — factor and all — serves bit-identically to
    the engine the originating process would build. This covers the
    F-order preservation guarantee: the uploaded Cholesky factor must
    keep its LAPACK memory layout or predictions drift by an ulp."""
    bundle = _make_bundle("full-block")
    reference = bundle.build_engine().predict(targets)
    result = bclient.upload("uploaded-model", bundle)
    assert result["model_id"] == "uploaded-model"
    assert any("uploaded-model" in ids for ids in client.models().values())
    np.testing.assert_array_equal(bclient.predict("uploaded-model", targets),
                                  reference)
    np.testing.assert_array_equal(client.predict("uploaded-model", targets),
                                  reference)


# --------------------------------------------------------------------------
# Non-finite predictions: typed on JSON, bit-exact on binary.
# --------------------------------------------------------------------------


def test_nonfinite_prediction_json_is_typed_not_mangled(client, targets):
    """Regression: the old encoder shipped NaN/inf as bare ``Infinity``
    tokens (invalid JSON). Strict JSON must refuse, typed, and point at
    the transport that can carry the values."""
    with pytest.raises(PredictionError, match="non-finite") as excinfo:
        client.predict("nonfinite", targets)
    assert "binary" in str(excinfo.value)
    # The 500 must not poison the keep-alive connection.
    client.health()


def test_nonfinite_prediction_binary_is_bit_exact(bundle_paths, bclient, targets):
    reference = PredictionEngine.from_bundle(bundle_paths["nonfinite"]).predict(
        targets
    )
    assert not np.isfinite(reference).any()
    got = bclient.predict("nonfinite", targets)
    assert got.tobytes() == reference.tobytes()  # NaN-safe bit equality


# --------------------------------------------------------------------------
# Connection dropped mid-stream
# --------------------------------------------------------------------------


def _send_partial_binary(server, path, meta, arrays, fraction=0.5):
    """Open a raw connection, declare the full Content-Length, send only
    ``fraction`` of the body, then drop the connection."""
    blob = wire.encode_message(meta, arrays)
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {server.host}:{server.port}\r\n"
        f"Content-Type: {wire.CONTENT_TYPE}\r\n"
        f"Content-Length: {len(blob)}\r\n"
        f"\r\n"
    ).encode("latin-1")
    sock = socket.create_connection((server.host, server.port), timeout=30)
    try:
        sock.sendall(head + blob[: max(1, int(len(blob) * fraction))])
    finally:
        sock.close()  # mid-body drop


def test_request_dropped_mid_stream_predict(server, client, bundle_paths, targets):
    _send_partial_binary(
        server, "/v1/predict", {"model_id": "full-block"}, {"targets": targets}
    )
    # The handler saw a truncated stream; the server must keep serving.
    reference = PredictionEngine.from_bundle(bundle_paths["full-block"]).predict(
        targets
    )
    np.testing.assert_array_equal(client.predict("full-block", targets), reference)
    assert client.health()["status"] == "ok"


def test_request_dropped_mid_stream_upload_leaves_no_state(server, client):
    bundle = _make_bundle("full-block")
    meta, arrays = bundle.to_payload()
    _send_partial_binary(server, "/v1/models/half-uploaded", meta, arrays)
    # Give the handler a beat to unwind, then prove nothing leaked.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leftovers = list(server._upload_dir.glob("half-uploaded*"))
        if not leftovers:
            break
        time.sleep(0.05)
    assert not leftovers
    assert all(
        "half-uploaded" not in ids for ids in client.models().values()
    ), "a half-sent upload must never reach the registry"
    with pytest.raises(ModelNotFoundError):
        client.predict("half-uploaded", np.zeros((1, 2)))


def test_response_dropped_mid_stream_is_typed_and_not_retried(
    server, bundle_paths, targets
):
    """Kill the connection mid-*response* via the ``wire.stream`` fault
    site: the client must surface a typed ServerError (the request DID
    execute — a blind resend could double-execute) and the server must
    keep serving."""
    arm(FaultPlan(rules=[FaultRule(site="wire.stream", action="raise",
                                   exception="OSError")]))
    try:
        with ServingClient(server.url, transport="binary") as cli:
            with pytest.raises(ServerError, match="cut short"):
                cli.predict("full-block", targets)
    finally:
        disarm()
    reference = PredictionEngine.from_bundle(bundle_paths["full-block"]).predict(
        targets
    )
    with ServingClient(server.url, transport="binary") as cli:
        np.testing.assert_array_equal(cli.predict("full-block", targets), reference)
