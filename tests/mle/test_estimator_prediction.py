"""Tests for the MLE driver and kriging prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    GeoDataset,
    generate_irregular_grid,
    sample_gaussian_field,
)
from repro.kernels import ExponentialCovariance, MaternCovariance
from repro.mle.estimator import MLEstimator
from repro.mle.metrics import (
    mean_absolute_error,
    mean_squared_error,
    root_mean_squared_error,
)
from repro.mle.prediction import conditional_variance, predict


@pytest.fixture(scope="module")
def fitted_problem():
    locs = generate_irregular_grid(225, seed=21)
    truth = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, truth, seed=22)
    return locs, z, truth


class TestMLEstimatorFit:
    def test_recovers_parameters_fullblock(self, fitted_problem):
        locs, z, truth = fitted_problem
        est = MLEstimator(locs, z, variant="full-block")
        fit = est.fit(maxiter=150)
        # Small-n estimates are noisy; require the right ballpark.
        assert 0.3 < fit.theta[0] < 3.0
        assert 0.02 < fit.theta[1] < 0.5
        assert 0.25 < fit.theta[2] < 1.2
        assert fit.loglik > -1e11
        assert fit.n_evals > 10
        assert fit.time_per_iteration > 0

    def test_tlr_matches_fullblock_fit(self, fitted_problem):
        locs, z, truth = fitted_problem
        fit_fb = MLEstimator(locs, z, variant="full-block").fit(maxiter=120)
        fit_tlr = MLEstimator(locs, z, variant="tlr", acc=1e-9, tile_size=45).fit(
            maxiter=120
        )
        np.testing.assert_allclose(fit_tlr.theta, fit_fb.theta, rtol=0.05)

    def test_fixed_start_and_bounds(self, fitted_problem):
        locs, z, _ = fitted_problem
        est = MLEstimator(locs, z, variant="full-block")
        lower = np.array([0.5, 0.05, 0.4])
        upper = np.array([2.0, 0.2, 0.6])
        fit = est.fit(x0=[1.0, 0.1, 0.5], bounds=(lower, upper), maxiter=60)
        assert np.all(fit.theta >= lower) and np.all(fit.theta <= upper)

    def test_from_dataset_inherits_metric(self, fitted_problem):
        locs, z, _ = fitted_problem
        ds = GeoDataset(locs, z, metric="euclidean", name="t")
        est = MLEstimator.from_dataset(ds, variant="full-block")
        assert est.model.metric == "euclidean"

    def test_morton_toggle(self, fitted_problem):
        locs, z, _ = fitted_problem
        est_m = MLEstimator(locs, z, use_morton=True)
        est_n = MLEstimator(locs, z, use_morton=False)
        # Same multiset of locations, different order.
        assert not np.array_equal(est_m.locations, est_n.locations)
        assert sorted(map(tuple, est_m.locations.tolist())) == sorted(
            map(tuple, est_n.locations.tolist())
        )

    def test_two_parameter_family(self, fitted_problem):
        locs, z, _ = fitted_problem
        est = MLEstimator(locs, z, model=ExponentialCovariance(), variant="full-block")
        fit = est.fit(maxiter=80)
        assert fit.theta.shape == (2,)


class TestPrediction:
    def test_kriging_interpolates_training_points(self, fitted_problem):
        locs, z, truth = fitted_problem
        pred = predict(locs, z, locs[:10], truth, variant="full-block")
        np.testing.assert_allclose(pred, z[:10], atol=1e-6)

    @pytest.mark.parametrize("variant,acc", [("full-tile", None), ("tlr", 1e-10)])
    def test_variants_agree_with_fullblock(self, fitted_problem, variant, acc):
        locs, z, truth = fitted_problem
        new = generate_irregular_grid(25, seed=30) * 0.8 + 0.1
        base = predict(locs, z, new, truth, variant="full-block")
        got = predict(locs, z, new, truth, variant=variant, acc=acc, tile_size=45)
        np.testing.assert_allclose(got, base, atol=1e-4)

    def test_prediction_better_than_mean(self, fitted_problem):
        locs, z, truth = fitted_problem
        train, test = slice(0, 200), slice(200, 225)
        pred = predict(locs[train], z[train], locs[test], truth, variant="full-block")
        mse_pred = mean_squared_error(z[test], pred)
        mse_mean = mean_squared_error(z[test], np.zeros(25))
        assert mse_pred < mse_mean

    def test_estimator_predict_roundtrip(self, fitted_problem):
        locs, z, _ = fitted_problem
        est = MLEstimator(locs[:200], z[:200], variant="full-block")
        fit = est.fit(maxiter=80)
        pred = est.predict(fit, locs[200:])
        assert pred.shape == (25,)
        assert mean_squared_error(z[200:], pred) < np.var(z)

    def test_conditional_variance_properties(self, fitted_problem):
        locs, z, truth = fitted_problem
        var_obs = conditional_variance(locs[:100], locs[:5], truth)
        np.testing.assert_allclose(var_obs, 0.0, atol=1e-6)  # observed points
        far = np.array([[5.0, 5.0]])  # far outside the domain
        var_far = conditional_variance(locs[:100], far, truth)
        assert var_far[0] == pytest.approx(truth.variance, rel=1e-3)


class TestMetrics:
    def test_values(self):
        a, b = np.array([1.0, 2.0, 3.0]), np.array([1.0, 3.0, 1.0])
        assert mean_squared_error(a, b) == pytest.approx(5.0 / 3.0)
        assert root_mean_squared_error(a, b) == pytest.approx(np.sqrt(5.0 / 3.0))
        assert mean_absolute_error(a, b) == pytest.approx(1.0)

    def test_shape_guards(self):
        with pytest.raises(Exception):
            mean_squared_error(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(Exception):
            mean_squared_error(np.array([]), np.array([]))
