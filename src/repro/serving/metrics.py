"""Counters, latency percentiles, and arrival rates for serving.

A deliberately small, dependency-free metrics surface: named monotonic
counters, a bounded reservoir of request latencies, and per-model
arrival timestamps, all behind one lock so the asyncio event loop,
executor worker threads, and benchmark readers can share a
:class:`ServiceMetrics` instance. ``snapshot()`` returns the plain-dict
form that ``benchmarks/bench_serving.py`` writes into
``BENCH_serving.json`` and that the HTTP server's ``/v1/metrics``
endpoint reports per worker.

The arrival-timestamp window is what the adaptive batching policy
learns from: :meth:`arrival_rate` estimates a model's recent request
rate, and :class:`~repro.serving.service.PredictionService` sizes that
model's coalescing window to roughly the time a batch takes to fill.

Since the telemetry layer landed, :class:`ServiceMetrics` is also a
*compatibility façade* over the process-wide
:class:`~repro.telemetry.metrics.MetricsRegistry`: when telemetry is
armed, every counter increment mirrors into a
``service_<name>`` registry counter and every latency observation into
the ``service_latency_seconds`` histogram, so the router's Prometheus
exposition sees serving traffic without any caller changing its
``metrics.inc(...)`` calls. Snapshot/percentile behavior is unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

from ..telemetry import metrics as _registry
from ..telemetry import spans as _telemetry

__all__ = ["ServiceMetrics"]


def _nearest_rank(samples: list, p: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty sample."""
    rank = max(0, min(len(samples) - 1, round(p / 100.0 * (len(samples) - 1))))
    return samples[rank]


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for a prediction service.

    Parameters
    ----------
    max_samples:
        Latency samples retained (newest-wins ring buffer). Percentiles
        are computed over this window, so a long-running service reports
        *recent* latency, not lifetime latency.
    max_arrivals:
        Arrival timestamps retained per model for rate estimation.
    arrival_horizon:
        Seconds after which a model's newest arrival is considered
        stale; :meth:`arrival_rate` then reports ``None`` so the
        adaptive window falls back to its default instead of acting on
        ancient traffic.

    Counter names used by :class:`~repro.serving.service.PredictionService`:

    ``requests``            accepted submissions;
    ``completed``           requests answered successfully;
    ``engine_calls``        PredictionEngine invocations (the quantity
                            micro-batching minimizes);
    ``batches``             dispatch rounds that grouped >= 2 requests;
    ``coalesced_requests``  requests served through a grouped call;
    ``rejected_overload``   submissions refused by backpressure;
    ``deadline_exceeded``   requests expired before dispatch;
    ``batch_retries``       failed groups re-dispatched per request so
                            one bad request cannot poison its batch;
    ``errors``              requests failed by an engine error.
    """

    def __init__(
        self,
        max_samples: int = 4096,
        *,
        max_arrivals: int = 128,
        arrival_horizon: float = 30.0,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        if max_arrivals < 2:
            raise ValueError(f"max_arrivals must be >= 2, got {max_arrivals}")
        if arrival_horizon <= 0:
            raise ValueError(f"arrival_horizon must be > 0, got {arrival_horizon}")
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=int(max_samples))
        self._arrivals: Dict[str, Deque[float]] = {}
        self._max_arrivals = int(max_arrivals)
        self._arrival_horizon = float(arrival_horizon)
        # Telemetry mirror: per-name registry counters are cached so the
        # armed write path is one dict lookup + one add, and the whole
        # mirror is skipped (one global read) when telemetry is off.
        self._mirror: Dict[str, _registry.Counter] = {}
        self._mirror_hist: Optional[_registry.Histogram] = None

    # -------------------------------------------------------------- writers
    def inc(self, name: str, by: int = 1) -> None:
        """Increment counter ``name`` by ``by`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)
        if _telemetry.enabled():
            counter = self._mirror.get(name)
            if counter is None:
                counter = _registry.get_registry().counter(f"service_{name}")
                self._mirror[name] = counter
            counter.inc(int(by))

    def observe_latency(self, seconds: float) -> None:
        """Record one request's submit-to-answer latency."""
        with self._lock:
            self._latencies.append(float(seconds))
        if _telemetry.enabled():
            hist = self._mirror_hist
            if hist is None:
                hist = self._mirror_hist = _registry.get_registry().histogram(
                    "service_latency_seconds",
                    help="submit-to-answer request latency",
                )
            hist.observe(float(seconds))

    def record_arrival(self, model_id: str, t: Optional[float] = None) -> None:
        """Record one request arrival for ``model_id`` (monotonic seconds)."""
        t = time.monotonic() if t is None else float(t)
        with self._lock:
            window = self._arrivals.get(model_id)
            if window is None:
                window = deque(maxlen=self._max_arrivals)
                self._arrivals[model_id] = window
            window.append(t)

    def reset(self) -> None:
        """Zero every counter, drop all latency samples and arrivals."""
        with self._lock:
            self._counters.clear()
            self._latencies.clear()
            self._arrivals.clear()

    # -------------------------------------------------------------- readers
    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def percentile(self, p: float) -> float:
        """Latency percentile ``p`` in [0, 100] over the retained window.

        Nearest-rank on the sorted sample; 0.0 with no samples (an empty
        window must read as "no latency observed", never raise).
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return 0.0
        return _nearest_rank(samples, p)

    def arrival_rate(self, model_id: str, t: Optional[float] = None) -> Optional[float]:
        """Recent request rate for ``model_id`` in requests/second.

        Estimated over the retained arrival window; ``None`` when fewer
        than two arrivals were seen, when the window spans no time, or
        when the newest arrival is older than ``arrival_horizon`` (the
        model has gone quiet — stale rates must not size its window).
        """
        now = time.monotonic() if t is None else float(t)
        with self._lock:
            window = self._arrivals.get(model_id)
            if window is None or len(window) < 2:
                return None
            first, last, count = window[0], window[-1], len(window)
        if now - last > self._arrival_horizon or last <= first:
            return None
        return (count - 1) / (last - first)

    def snapshot(self) -> dict:
        """Plain-dict view: all counters plus latency statistics (seconds).

        The latency block always carries ``count``/``mean``/``p50``/
        ``p95``/``max`` keys — 0.0 on an empty window — so readers
        (benchmark writers, the ``/v1/metrics`` endpoint) never need
        per-key existence checks.
        """
        now = time.monotonic()
        with self._lock:
            counters = dict(self._counters)
            samples = sorted(self._latencies)
            models = list(self._arrivals)
        latency = {
            "count": len(samples),
            "mean": sum(samples) / len(samples) if samples else 0.0,
            "p50": _nearest_rank(samples, 50.0) if samples else 0.0,
            "p95": _nearest_rank(samples, 95.0) if samples else 0.0,
            "max": samples[-1] if samples else 0.0,
        }
        rates = {}
        for model_id in models:
            rate = self.arrival_rate(model_id, t=now)
            if rate is not None:
                rates[model_id] = rate
        return {
            "counters": counters,
            "latency_seconds": latency,
            "arrival_rates": rates,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"ServiceMetrics({dict(self._counters)}, samples={len(self._latencies)})"
