"""Circuit breakers and admission control for the serving stack.

Retries and respawns handle *transient* failures; a dependency that is
down for seconds at a time needs the opposite treatment — stop sending
it work, answer callers fast, and probe for recovery. That is the
circuit breaker, and it appears at two grains in this stack:

* **per model** inside each worker's
  :class:`~repro.serving.service.PredictionService` — repeated engine
  failures (corrupt rehydration, injected engine faults) open the
  model's breaker; while open the service serves the model's
  last-known-good engine generation (degraded) or fails fast with
  :class:`~repro.exceptions.CircuitOpenError` instead of queueing doomed
  work;
* **per worker** inside the router's worker handles — repeated
  transport failures (timeouts from a hung worker) open the worker's
  breaker so HTTP threads stop stacking up behind a 120-second timeout
  each; a respawned worker starts with a fresh, closed breaker.

:class:`AdmissionGate` is the load-shedding companion: a bounded count
of in-flight requests at the router. Beyond the bound, requests are
rejected *immediately* with :class:`~repro.exceptions.LoadShedError`
(HTTP 503 + ``Retry-After``) — an overloaded server that answers "come
back later" in microseconds beats one that makes every client wait out
a timeout.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..config import get_config
from ..exceptions import ConfigurationError, LoadShedError
from ..telemetry import spans as _telemetry

__all__ = ["CircuitBreaker", "AdmissionGate"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic closed / open / half-open breaker, monotonic-clock based.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker (default: configured
        ``breaker_threshold``).
    recovery_time:
        Seconds the breaker stays open before admitting probes
        (default: configured ``breaker_recovery``).
    half_open_max:
        Concurrent probes admitted while half-open. One is the safe
        default: a single request decides re-close vs re-open.
    clock:
        Injectable time source (tests advance a fake clock instead of
        sleeping).

    Thread-safe; every transition happens under one lock. Counters
    (``n_opens``, ``n_failures``, ``n_successes``) are cumulative for
    metrics surfaces.
    """

    def __init__(
        self,
        *,
        failure_threshold: Optional[int] = None,
        recovery_time: Optional[float] = None,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        cfg = get_config()
        self.failure_threshold = (
            cfg.breaker_threshold if failure_threshold is None else int(failure_threshold)
        )
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.recovery_time = (
            cfg.breaker_recovery if recovery_time is None else float(recovery_time)
        )
        if self.recovery_time <= 0:
            raise ConfigurationError(
                f"recovery_time must be > 0, got {recovery_time}"
            )
        if int(half_open_max) < 1:
            raise ConfigurationError(f"half_open_max must be >= 1, got {half_open_max}")
        self.half_open_max = int(half_open_max)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._probes = 0  # in-flight, while half-open
        self._opened_at = 0.0
        self.n_opens = 0
        self.n_failures = 0
        self.n_successes = 0

    # --------------------------------------------------------------- queries
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (after lazily
        applying the open → half-open timeout transition)."""
        with self._lock:
            self._tick_locked()
            return self._state

    @property
    def retry_after(self) -> float:
        """Seconds until an open breaker admits probes (0 when not open)."""
        with self._lock:
            self._tick_locked()
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._opened_at + self.recovery_time - self._clock())

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        Open: denied until ``recovery_time`` elapses. Half-open: up to
        ``half_open_max`` probes are admitted; their outcomes (reported
        via :meth:`record_success` / :meth:`record_failure`) decide the
        next state. Callers that get ``True`` MUST report an outcome,
        or half-open probe slots leak.
        """
        with self._lock:
            self._tick_locked()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes < self.half_open_max:
                self._probes += 1
                return True
            return False

    # -------------------------------------------------------------- outcomes
    def record_success(self) -> None:
        """Report a successful call: closes a half-open breaker, clears
        the consecutive-failure count of a closed one."""
        with self._lock:
            self.n_successes += 1
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes = 0
                # State transitions land on the request trace that
                # caused them — the "why was this degraded/fast-failed"
                # breadcrumb. No-op when telemetry is off.
                _telemetry.annotate("breaker", "half-open -> closed")
            self._failures = 0

    def record_failure(self) -> None:
        """Report a failed call: trips a closed breaker at the threshold,
        re-opens a half-open one immediately."""
        with self._lock:
            self.n_failures += 1
            if self._state == HALF_OPEN:
                self._open_locked()
                return
            if self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._open_locked()

    def _open_locked(self) -> None:
        previous = self._state
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probes = 0
        self.n_opens += 1
        _telemetry.annotate("breaker", f"{previous} -> open")

    def _tick_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = HALF_OPEN
            self._probes = 0
            _telemetry.annotate("breaker", "open -> half-open")

    def snapshot(self) -> dict:
        """Plain-dict state for metrics endpoints."""
        with self._lock:
            self._tick_locked()
            return {
                "state": self._state,
                "n_opens": self.n_opens,
                "n_failures": self.n_failures,
                "n_successes": self.n_successes,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, opens={self.n_opens})"


class AdmissionGate:
    """Bounded in-flight admission: shed load instead of queueing it.

    Parameters
    ----------
    max_inflight:
        Requests allowed inside the gate at once (default: configured
        ``serving_max_inflight``).
    retry_after:
        The ``Retry-After`` hint (seconds) attached to shed requests.

    Use as a context manager around the guarded section::

        with gate.admit():          # raises LoadShedError when full
            handle_request()
    """

    def __init__(
        self,
        *,
        max_inflight: Optional[int] = None,
        retry_after: float = 0.1,
    ) -> None:
        cfg = get_config()
        self.max_inflight = (
            cfg.serving_max_inflight if max_inflight is None else int(max_inflight)
        )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if float(retry_after) < 0:
            raise ConfigurationError(f"retry_after must be >= 0, got {retry_after}")
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0
        self.n_shed = 0
        self.n_admitted = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.n_shed += 1
                return False
            self._inflight += 1
            self.n_admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def admit(self) -> "_Admission":
        """Context manager form; raises :class:`LoadShedError` when full."""
        if not self.try_acquire():
            raise LoadShedError(
                f"server is at its {self.max_inflight} in-flight request limit",
                retry_after=self.retry_after,
            )
        return _Admission(self)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "n_shed": self.n_shed,
                "n_admitted": self.n_admitted,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdmissionGate({self.inflight}/{self.max_inflight}, shed={self.n_shed})"


class _Admission:
    """Releases one admission slot on exit (success or error)."""

    __slots__ = ("_gate",)

    def __init__(self, gate: AdmissionGate) -> None:
        self._gate = gate

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc: object) -> None:
        self._gate.release()


# Convenience: per-key breaker pools (per model, per worker) share one
# configuration and create breakers lazily.
class BreakerPool:
    """Lazily-created :class:`CircuitBreaker` per key, shared options."""

    def __init__(self, **options: object) -> None:
        self._options = options
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(**self._options)  # type: ignore[arg-type]
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            items = list(self._breakers.items())
        return {key: breaker.snapshot() for key, breaker in items}


__all__.append("BreakerPool")
