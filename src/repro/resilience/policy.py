"""Unified retry and deadline policies for serving + fitting.

Before this module, three retry/timeout snippets had grown
independently: the client's retry-once on a stale keep-alive
connection, the router's retry-once on a dead worker, and the fit
orchestrator's per-leg restart budget. Each hand-rolled its own
attempt counting; none shared backoff, jitter, or a notion of "time
left". :class:`RetryPolicy` and :class:`Deadline` are the shared
vocabulary they now consult.

Design points:

* **Deterministic jitter.** Backoff delays are jittered to avoid
  thundering herds, but the jitter derives from a seed (default: the
  configured ``rng_seed``), so a test run's retry timing — like
  everything else in this library — replays exactly.
* **Idempotency awareness.** A policy carries ``retry_on`` exception
  types but the *caller* decides whether the failed attempt could have
  had side effects; :meth:`RetryPolicy.should_retry` takes an
  ``idempotent`` flag so "the request may have executed" can veto a
  retry regardless of the error type.
* **Absolute deadlines.** A :class:`Deadline` is a point on the
  monotonic clock, created once at the edge (the HTTP handler) and
  passed down; every layer re-derives "seconds remaining" from it, so
  queueing time in one layer shrinks the budget of the next instead of
  each layer granting itself a fresh timeout.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type

from ..config import get_config
from ..exceptions import ConfigurationError, DeadlineExceededError

__all__ = ["RetryPolicy", "Deadline"]


class Deadline:
    """An absolute point in monotonic time a piece of work must finish by.

    Examples
    --------
    >>> d = Deadline.after(30.0)
    >>> d.remaining > 29.0
    True
    >>> Deadline.after(None) is None
    True
    """

    __slots__ = ("t_end",)

    def __init__(self, t_end: float) -> None:
        self.t_end = float(t_end)

    @classmethod
    def after(cls, budget: Optional[float]) -> Optional["Deadline"]:
        """A deadline ``budget`` seconds from now; ``None`` stays ``None``
        (no deadline), so optional budgets thread through unchanged."""
        if budget is None:
            return None
        return cls(time.monotonic() + float(budget))

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["Deadline"]:
        """A deadline from an ``X-Repro-Deadline`` header (budget seconds).

        ``None`` (no header) stays ``None``. A malformed value raises
        ``ValueError`` with the header named, which the HTTP layer maps
        to a 400 — a proxy's typo must not silently serve without the
        budget it meant to impose. Parsed at the *edge*, before the
        request body is read, so streaming body reads are already
        bounded by the client's budget.
        """
        if value is None:
            return None
        try:
            budget = float(value)
        except ValueError:
            raise ValueError(
                f"malformed X-Repro-Deadline header {value!r} (want seconds)"
            ) from None
        return cls.after(budget)

    @property
    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.t_end - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() > self.t_end

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if already expired."""
        overdue = time.monotonic() - self.t_end
        if overdue > 0:
            raise DeadlineExceededError(
                f"{what} deadline expired {overdue:.3f}s ago"
            )

    def clamp(self, timeout: float) -> float:
        """``timeout`` bounded by the time remaining (floored at 0)."""
        return max(0.0, min(float(timeout), self.remaining))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining:.3f}s)"


class RetryPolicy:
    """Jittered exponential backoff with a bounded attempt budget.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (1 = no retries).
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Exponential growth factor between retries.
    max_delay:
        Cap on any single backoff sleep.
    jitter:
        Fraction in [0, 1] by which each delay is randomized:
        ``delay * (1 ± jitter)``, clamped non-negative. ``0`` disables
        jitter entirely.
    retry_on:
        Exception types that are retryable; anything else re-raises
        immediately.
    seed:
        Seed of the deterministic jitter stream (default: configured
        ``rng_seed``) — two policies with equal settings produce equal
        delay sequences.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=7)
    >>> policy.delay(0) == RetryPolicy(max_attempts=3, base_delay=0.1, seed=7).delay(0)
    True
    """

    __slots__ = (
        "max_attempts",
        "base_delay",
        "multiplier",
        "max_delay",
        "jitter",
        "retry_on",
        "seed",
    )

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        jitter: float = 0.5,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        seed: Optional[int] = None,
    ) -> None:
        if int(max_attempts) < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
        if float(base_delay) < 0:
            raise ConfigurationError(f"base_delay must be >= 0, got {base_delay}")
        if float(multiplier) < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {multiplier}")
        if float(max_delay) < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        if not (0.0 <= float(jitter) <= 1.0):
            raise ConfigurationError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.retry_on = tuple(retry_on)
        self.seed = get_config().rng_seed if seed is None else int(seed)

    # -------------------------------------------------------------- queries
    def allows(self, attempt: int) -> bool:
        """Whether 0-based ``attempt`` is within budget (attempt 0 always is)."""
        return int(attempt) < self.max_attempts

    def delay(self, attempt: int) -> float:
        """Backoff before the retry that follows 0-based ``attempt``.

        Deterministic: the jitter factor is drawn from a generator
        seeded by ``(seed, attempt)``, so a given policy configuration
        yields one fixed delay sequence.
        """
        raw = min(self.max_delay, self.base_delay * self.multiplier ** int(attempt))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        u = random.Random(self.seed * 1_000_003 + int(attempt)).random()
        return max(0.0, raw * (1.0 + self.jitter * (2.0 * u - 1.0)))

    def should_retry(
        self,
        exc: BaseException,
        attempt: int,
        *,
        idempotent: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """Whether the failure of 0-based ``attempt`` warrants a retry.

        A non-idempotent attempt is never retried — the work may have
        executed even though the caller saw an error (a predict would
        run twice, a reload would double-swap). An expired deadline
        likewise vetoes: re-trying work nobody is waiting for just
        burns an engine.
        """
        if not idempotent:
            return False
        if not self.allows(int(attempt) + 1):
            return False
        if deadline is not None and deadline.expired:
            return False
        return isinstance(exc, self.retry_on)

    # ------------------------------------------------------------ execution
    def call(
        self,
        fn: Callable[[], object],
        *,
        deadline: Optional[Deadline] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Run ``fn`` under this policy, sleeping the backoff between tries.

        ``sleep`` is injectable so tests capture the exact delays
        instead of waiting them out.
        """
        attempt = 0
        while True:
            if deadline is not None:
                deadline.check("retried call")
            try:
                return fn()
            except self.retry_on as exc:
                if not self.should_retry(exc, attempt, deadline=deadline):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt)
                if pause > 0.0:
                    sleep(pause if deadline is None else deadline.clamp(pause))
                attempt += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, jitter={self.jitter}, "
            f"seed={self.seed})"
        )
