"""The model registry: lazy bundles, warm engines, sharded runtimes.

A serving worker holds many fitted models but only a bounded number of
them warm: each warm model is a :class:`~repro.mle.prediction_engine.
PredictionEngine` whose ``Sigma_22`` factor and distance caches are
O(n²) memory. :class:`ModelRegistry` is the thread-safe keeper of that
working set:

* **Lazy loading.** Models are *registered* by bundle path (cheap);
  the bundle is read and its engine built on the first request.
* **LRU bounding.** At most ``max_models`` engines stay resident;
  the least-recently-used engine is dropped and transparently
  rehydrated from its bundle when requested again.
* **Sharding.** Models are assigned to ``num_shards`` shards by a
  stable hash of their id. Each shard owns (lazily) one
  :class:`~repro.runtime.Runtime` worker pool shared by its engines —
  the single-process analogue of spreading models across serving
  workers, bounding total thread count regardless of model count.
  Runtime shutdown is idempotent, so :meth:`close` (or the context
  manager) can always recycle the pools safely.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..config import get_config
from ..exceptions import BundleCorruptError, ConfigurationError, ModelNotFoundError
from ..mle.prediction_engine import PredictionEngine
from ..resilience.faults import fault_point
from ..runtime import Runtime
from ..telemetry import spans as _telemetry
from .store import ModelBundle, load_model

__all__ = ["ModelRegistry"]


def _stable_shard(model_id: str, num_shards: int) -> int:
    """Deterministic shard assignment, stable across processes and runs."""
    digest = hashlib.sha1(model_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % num_shards


class ModelRegistry:
    """Thread-safe registry of persisted models and warm engines.

    Parameters
    ----------
    max_models:
        Engines kept warm (default: configured ``serving_max_models``);
        least-recently-used eviction beyond that.
    num_shards:
        Shards the model space is hashed into. Only meaningful together
        with ``workers_per_shard``.
    workers_per_shard:
        When set, each shard lazily creates a
        :class:`~repro.runtime.Runtime` with that many workers, shared
        by every engine on the shard (task-parallel factorizations).
        ``None`` (default) builds serial engines — the right choice for
        many small models.
    cache_distances, parallel_generation, compression_batch:
        Engine knobs, resolved against *this thread's* config at
        construction — engines may later be built on executor threads
        whose thread-local config is the default.

    Examples
    --------
    >>> from repro.serving import ModelRegistry
    >>> registry = ModelRegistry(max_models=2)      # doctest: +SKIP
    >>> registry.register("soil", "fits/soil.bundle")  # doctest: +SKIP
    >>> registry.engine("soil").predict(targets)    # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        max_models: Optional[int] = None,
        num_shards: int = 1,
        workers_per_shard: Optional[int] = None,
        cache_distances: Optional[bool] = None,
        parallel_generation: Optional[bool] = None,
        compression_batch: Optional[int] = None,
    ) -> None:
        cfg = get_config()
        # Nonsense knobs are rejected here, at construction, instead of
        # being silently clamped or surfacing as a confusing failure on
        # the first request.
        if max_models is not None and int(max_models) < 1:
            raise ConfigurationError(f"max_models must be >= 1, got {max_models}")
        self.max_models = (
            cfg.serving_max_models if max_models is None else int(max_models)
        )
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        if workers_per_shard is not None and int(workers_per_shard) < 1:
            raise ConfigurationError(
                f"workers_per_shard must be >= 1, got {workers_per_shard}"
            )
        self.workers_per_shard = workers_per_shard
        self.cache_distances = (
            cfg.cache_distances if cache_distances is None else bool(cache_distances)
        )
        self.parallel_generation = (
            cfg.parallel_generation if parallel_generation is None else bool(parallel_generation)
        )
        self.compression_batch = (
            cfg.compression_batch if compression_batch is None else max(1, int(compression_batch))
        )
        self._lock = threading.RLock()
        self._load_locks: Dict[str, threading.Lock] = {}  # per-model cold loads
        self._paths: Dict[str, Path] = {}
        self._bundles: Dict[str, ModelBundle] = {}  # in-memory (unsaved) bundles
        self._engines: "OrderedDict[str, PredictionEngine]" = OrderedDict()
        # Last-known-good engine per model, held *outside* the LRU so a
        # bundle that turns corrupt after its engine was evicted can still
        # be served (degraded) from the previous generation.
        self._lkg: Dict[str, PredictionEngine] = {}
        self._degraded: set = set()
        self._runtimes: Dict[int, Runtime] = {}
        self._closed = False
        self.n_loads = 0
        self.n_evictions = 0
        self.n_hits = 0
        self.n_reloads = 0
        self.n_fallbacks = 0

    # ------------------------------------------------------------- register
    def register(self, model_id: str, path: Union[str, Path]) -> "ModelRegistry":
        """Register a persisted bundle under ``model_id`` (no I/O yet)."""
        with self._lock:
            self._check_open()
            self._paths[model_id] = Path(path)
        return self

    def add_bundle(self, model_id: str, bundle: ModelBundle) -> "ModelRegistry":
        """Register an in-memory bundle (kept resident; survives eviction)."""
        with self._lock:
            self._check_open()
            self._bundles[model_id] = bundle
        return self

    def add_engine(self, model_id: str, engine: PredictionEngine) -> "ModelRegistry":
        """Install a pre-built engine directly (counts toward ``max_models``).

        Without a registered path or bundle for ``model_id`` the engine
        cannot be rehydrated after eviction — intended for engines whose
        fit just happened in this process, and for tests.
        """
        with self._lock:
            self._check_open()
            self._engines[model_id] = engine
            self._engines.move_to_end(model_id)
            self._lkg[model_id] = engine
            self._degraded.discard(model_id)
            self._evict_over_budget()
        return self

    # --------------------------------------------------------------- lookup
    def shard_of(self, model_id: str) -> int:
        """The shard ``model_id`` is hashed onto (stable across runs)."""
        return _stable_shard(model_id, self.num_shards)

    def path_of(self, model_id: str) -> Optional[Path]:
        """The bundle path ``model_id`` is registered at, or ``None``
        for purely in-memory models. The fitting service uses this to
        point a warm-start refit (:class:`~repro.fitting.FitJobSpec`
        ``bundle_path``) at a served model's data and theta."""
        with self._lock:
            return self._paths.get(model_id)

    def has(self, model_id: str) -> bool:
        """True when ``model_id`` can currently be served (warm or loadable)."""
        with self._lock:
            return (
                not self._closed
                and (
                    model_id in self._engines
                    or model_id in self._bundles
                    or model_id in self._paths
                )
            )

    def engine(self, model_id: str) -> PredictionEngine:
        """The warm engine for ``model_id``, loading/rehydrating as needed.

        A cold load (disk read + engine construction) runs under a
        per-model lock with the registry-wide lock *released*, so one
        model's load never stalls warm lookups of other models;
        concurrent requests for the same cold model still load it once.

        Raises
        ------
        ModelNotFoundError
            If ``model_id`` was never registered, or was installed only
            via :meth:`add_engine` and has since been evicted.
        """
        with self._lock:
            self._check_open()
            engine = self._engines.get(model_id)
            if engine is not None:
                self._engines.move_to_end(model_id)
                self.n_hits += 1
                return engine
            if model_id not in self._bundles and model_id not in self._paths:
                raise ModelNotFoundError(
                    f"model {model_id!r} is not registered (or was evicted "
                    f"with no bundle to rehydrate from)"
                )
            load_lock = self._load_locks.setdefault(model_id, threading.Lock())
        with load_lock:
            with self._lock:  # another thread may have finished the load
                self._check_open()
                engine = self._engines.get(model_id)
                if engine is not None:
                    self._engines.move_to_end(model_id)
                    self.n_hits += 1
                    return engine
                bundle = self._bundles.get(model_id)
                path = self._paths.get(model_id)
                runtime = self._shard_runtime(model_id)
            try:
                # A cold load is the largest single latency cliff a
                # predict can hit — worth its own span on the trace.
                with _telemetry.span("registry.load", model=model_id):
                    if bundle is None:
                        if path is None:
                            raise ModelNotFoundError(
                                f"model {model_id!r} is not registered (or was evicted "
                                f"with no bundle to rehydrate from)"
                            )
                        fault_point("registry.rehydrate")
                        bundle = load_model(path)
                    engine = bundle.build_engine(
                        runtime=runtime,
                        cache_distances=self.cache_distances,
                        parallel_generation=self.parallel_generation,
                        compression_batch=self.compression_batch,
                    )
            except BundleCorruptError:
                # The persisted bundle is gone (quarantined), but a
                # previous engine generation may still be in memory —
                # serve it, flagged degraded, instead of failing hard.
                fallback = self._install_fallback_locked(model_id)
                if fallback is None:
                    raise
                return fallback
            with self._lock:
                self._check_open()
                self._engines[model_id] = engine
                self._engines.move_to_end(model_id)
                self._lkg[model_id] = engine
                self._degraded.discard(model_id)
                self.n_loads += 1
                self._evict_over_budget()
                return engine

    def _install_fallback_locked(self, model_id: str) -> Optional[PredictionEngine]:
        """Re-install the last-known-good engine as the warm engine,
        marking the model degraded. ``None`` when no LKG exists."""
        with self._lock:
            engine = self._lkg.get(model_id)
            if engine is None:
                return None
            self._engines[model_id] = engine
            self._engines.move_to_end(model_id)
            self._degraded.add(model_id)
            self.n_fallbacks += 1
            self._evict_over_budget()
            return engine

    def fallback_engine(self, model_id: str) -> Optional[PredictionEngine]:
        """The last-known-good engine for ``model_id`` (or ``None``).

        Unlike :meth:`engine` this never touches disk: it is the
        degraded-serving path used when the primary is broken or a
        circuit breaker is open.
        """
        with self._lock:
            return self._lkg.get(model_id)

    def is_degraded(self, model_id: str) -> bool:
        """True while ``model_id`` serves from a fallback generation."""
        with self._lock:
            return model_id in self._degraded

    @property
    def degraded_models(self) -> List[str]:
        """Model ids currently serving from a fallback generation."""
        with self._lock:
            return sorted(self._degraded)

    def _shard_runtime(self, model_id: str) -> Optional[Runtime]:
        if self.workers_per_shard is None:
            return None
        shard = self.shard_of(model_id)
        rt = self._runtimes.get(shard)
        if rt is None or rt.closed:
            rt = Runtime(num_workers=self.workers_per_shard)
            self._runtimes[shard] = rt
        return rt

    def _evict_over_budget(self) -> None:
        while len(self._engines) > self.max_models:
            evicted_id, _ = self._engines.popitem(last=False)
            self.n_evictions += 1

    # -------------------------------------------------------------- reload
    def reload(
        self,
        model_id: str,
        *,
        path: Optional[Union[str, Path]] = None,
        bundle: Optional[ModelBundle] = None,
    ) -> PredictionEngine:
        """Atomically swap in a re-fitted bundle under a stable model id.

        The replacement engine is built *before* the swap, off the
        registry lock, so warm lookups of every model — including the
        one being reloaded — keep succeeding on the old engine while
        the new one loads. The swap itself is a dict update under the
        lock: in-flight predicts holding the old engine finish on it,
        every later :meth:`engine` call sees the new one.

        Parameters
        ----------
        model_id:
            The stable id clients keep using across the swap.
        path:
            New bundle directory to load from (also becomes the model's
            registered path for future rehydrations). Default: re-read
            the currently registered path — the re-fit overwrote the
            bundle in place.
        bundle:
            An in-memory replacement bundle (mutually exclusive with
            ``path``).

        Raises
        ------
        ModelNotFoundError
            ``model_id`` has no registered path or bundle to load from.
        BundleError
            The replacement bundle is missing or malformed (the old
            engine stays installed and keeps serving).
        """
        if path is not None and bundle is not None:
            raise ConfigurationError("pass either path or bundle to reload(), not both")
        with self._lock:
            self._check_open()
            if bundle is not None:
                src_bundle, src_path = bundle, None
            elif path is not None:
                src_bundle, src_path = None, Path(path)
            else:
                src_bundle = self._bundles.get(model_id)
                src_path = self._paths.get(model_id)
            if src_bundle is None and src_path is None:
                raise ModelNotFoundError(
                    f"model {model_id!r} has no bundle or path to reload from"
                )
            load_lock = self._load_locks.setdefault(model_id, threading.Lock())
        with load_lock:
            with self._lock:
                self._check_open()
                runtime = self._shard_runtime(model_id)
            if src_bundle is None:
                src_bundle = load_model(src_path)
            engine = src_bundle.build_engine(
                runtime=runtime,
                cache_distances=self.cache_distances,
                parallel_generation=self.parallel_generation,
                compression_batch=self.compression_batch,
            )
            with self._lock:
                self._check_open()
                # Commit only now: a load/build failure above leaves the
                # previous registration — and the warm engine — intact,
                # so the model keeps serving and rehydrating from the
                # last good bundle.
                if bundle is not None:
                    self._bundles[model_id] = bundle
                    self._paths.pop(model_id, None)
                elif path is not None:
                    self._paths[model_id] = Path(path)
                    self._bundles.pop(model_id, None)
                self._engines[model_id] = engine
                self._engines.move_to_end(model_id)
                self._lkg[model_id] = engine
                self._degraded.discard(model_id)
                self.n_reloads += 1
                self._evict_over_budget()
                return engine

    # ------------------------------------------------------------ lifecycle
    def evict(self, model_id: str) -> bool:
        """Drop ``model_id``'s warm engine (if any); returns True if dropped."""
        with self._lock:
            if self._engines.pop(model_id, None) is not None:
                self.n_evictions += 1
                return True
            return False

    def close(self) -> None:
        """Drop every engine and shut down shard runtimes (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._engines.clear()
            self._lkg.clear()
            self._degraded.clear()
            runtimes = list(self._runtimes.values())
            self._runtimes.clear()
        for rt in runtimes:
            rt.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ModelNotFoundError("registry is closed")

    # ------------------------------------------------------------- plumbing
    @property
    def known_models(self) -> List[str]:
        """Every registered model id (warm or not)."""
        with self._lock:
            return sorted(set(self._paths) | set(self._bundles) | set(self._engines))

    @property
    def loaded_models(self) -> List[str]:
        """Model ids with a warm engine, least- to most-recently used."""
        with self._lock:
            return list(self._engines)

    def stats(self) -> dict:
        """Load/hit/eviction counters and the warm set (for tests/benchmarks)."""
        with self._lock:
            return {
                "n_loads": self.n_loads,
                "n_hits": self.n_hits,
                "n_evictions": self.n_evictions,
                "n_reloads": self.n_reloads,
                "n_fallbacks": self.n_fallbacks,
                "degraded": sorted(self._degraded),
                "loaded": list(self._engines),
                "known": self.known_models,
                "shards": {
                    mid: self.shard_of(mid)
                    for mid in sorted(set(self._paths) | set(self._bundles))
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ModelRegistry(known={len(self.known_models)}, "
                f"warm={len(self._engines)}/{self.max_models}, "
                f"shards={self.num_shards})"
            )
