#!/usr/bin/env python
"""HTTP serving benchmark: multi-process workers, batched vs unbatched,
and hot-reload latency.

Measures the full remote path — JSON over HTTP, router thread, pickle
over the worker pipe, asyncio micro-batcher, engine call in a worker
process — under a closed loop of concurrent client threads (each with
its own keep-alive :class:`~repro.serving.ServingClient`), in two
configurations of the same persisted model:

* ``unbatched`` — ``batch_window=0``, ``max_batch=1``: one engine call
  per request;
* ``batched``   — a small coalescing window: concurrent requests
  grouped into stacked ``predict_many`` calls (bit-identical, fewer
  engine calls).

Also probes **hot-reload**: the admin endpoint swaps the model's
bundle while a background client hammers it, reporting the reload
latency and that zero requests failed across the swap.

Results go to ``BENCH_http_serving.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_http_serving.py
    PYTHONPATH=src python benchmarks/bench_http_serving.py --n 400 --requests 48

or through the benchmark suite (small problem):

    PYTHONPATH=src python -m pytest benchmarks/bench_http_serving.py -q
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.serving import ModelBundle, ServingClient, ServingServer


def build_bundle(n: int, tile_size: int, variant: str, acc: float,
                 root: Path, theta=(1.0, 0.1, 0.5), name="bench") -> Path:
    """Persist one synthetic fitted model (true theta stands in for a fit)."""
    locs, _, _ = sort_locations(generate_irregular_grid(n, seed=0))
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant,
        tile_size=tile_size, acc=acc,
    )
    bundle.factor = bundle.build_engine().factor()  # workers adopt, never factorize
    return bundle.save(root / f"{name}.bundle")


def _target_sets(n_requests: int, m: int, seed: int = 7) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [np.ascontiguousarray(rng.random((m, 2))) for _ in range(n_requests)]


def drive_http(url: str, targets: List[np.ndarray], concurrency: int) -> dict:
    """Closed loop: ``concurrency`` threads, each its own client, drain
    the shared request list; per-request latency measured client-side."""
    queue = list(enumerate(targets))
    lock = threading.Lock()
    latencies: List[float] = []

    def worker() -> None:
        with ServingClient(url) as client:
            while True:
                with lock:
                    if not queue:
                        return
                    _, t = queue.pop()
                t0 = time.perf_counter()
                client.predict("bench", t)
                dt = time.perf_counter() - t0
                with lock:
                    latencies.append(dt)

    t0 = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(concurrency) as pool:
        list(pool.map(lambda _: worker(), range(concurrency)))
    wall = time.perf_counter() - t0
    latencies.sort()
    return {
        "wall_seconds": wall,
        "requests_per_second": len(targets) / wall,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p95_ms": latencies[int(len(latencies) * 0.95) - 1] * 1e3,
    }


def run_config(path: Path, targets, *, batched: bool, window: float,
               max_batch: int, concurrency: int, num_workers: int) -> dict:
    service_options = {
        "batch_window": window if batched else 0.0,
        "max_batch": max_batch if batched else 1,
    }
    with ServingServer(
        {"bench": path}, num_workers=num_workers, service_options=service_options
    ) as server:
        with ServingClient(server.url) as warm:
            warm.predict("bench", targets[0])  # cold load + adopt, off the clock
        result = drive_http(server.url, targets, concurrency)
        with ServingClient(server.url) as admin:
            counters = admin.metrics()["aggregate"]["counters"]
    result["engine_calls"] = counters.get("engine_calls", 0)
    result["coalesced_requests"] = counters.get("coalesced_requests", 0)
    result["completed"] = counters.get("completed", 0)
    return result


def run_reload_probe(path_a: Path, path_b: Path, m: int,
                     num_workers: int, n_swaps: int = 4) -> dict:
    """Hot-swap latency under background traffic, with a zero-failure count."""
    targets = _target_sets(1, m, seed=23)[0]
    ref_a = PredictionEngine.from_bundle(path_a).predict(targets)
    ref_b = PredictionEngine.from_bundle(path_b).predict(targets)
    stop = False
    failures = [0]
    served = [0]

    with ServingServer({"bench": path_a}, num_workers=num_workers) as server:
        def traffic() -> None:
            with ServingClient(server.url) as client:
                while not stop:
                    try:
                        out = client.predict("bench", targets)
                        assert np.array_equal(out, ref_a) or np.array_equal(out, ref_b)
                        served[0] += 1
                    except Exception:  # noqa: BLE001 - counted, not raised
                        failures[0] += 1

        thread = threading.Thread(target=traffic, daemon=True)
        with ServingClient(server.url) as admin:
            admin.predict("bench", targets)  # warm
            thread.start()
            reload_times = []
            for swap in range(n_swaps):
                target_path = path_b if swap % 2 == 0 else path_a
                t0 = time.perf_counter()
                admin.reload("bench", target_path)
                reload_times.append(time.perf_counter() - t0)
        stop = True
        thread.join(timeout=60)
    return {
        "n_swaps": n_swaps,
        "reload_ms_mean": float(np.mean(reload_times) * 1e3),
        "reload_ms_max": float(np.max(reload_times) * 1e3),
        "requests_during_swaps": served[0],
        "failed_requests": failures[0],
    }


def run_bench(
    n: int = 900,
    m: int = 32,
    tile_size: int = 150,
    acc: float = 1e-9,
    variant: str = "full-block",
    n_requests: int = 96,
    concurrency: int = 16,
    window: float = 0.002,
    max_batch: int = 8,
    num_workers: int = 2,
) -> dict:
    """Benchmark batched vs unbatched HTTP serving plus the reload probe."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        path = build_bundle(n, tile_size, variant, acc, root)
        path_b = build_bundle(
            n, tile_size, variant, acc, root, theta=(1.4, 0.15, 0.7), name="bench-v2"
        )
        targets = _target_sets(n_requests, m)
        unbatched = run_config(
            path, targets, batched=False, window=window,
            max_batch=max_batch, concurrency=concurrency, num_workers=num_workers,
        )
        batched = run_config(
            path, targets, batched=True, window=window,
            max_batch=max_batch, concurrency=concurrency, num_workers=num_workers,
        )
        reload_probe = run_reload_probe(path, path_b, m, num_workers)
    summary = {
        "n": n,
        "m_targets_per_request": m,
        "variant": variant,
        "tile_size": tile_size,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "num_workers": num_workers,
        "batch_window_seconds": window,
        "max_batch": max_batch,
        "throughput_speedup_batched_vs_unbatched": (
            batched["requests_per_second"] / max(1e-12, unbatched["requests_per_second"])
        ),
        "engine_call_reduction": (
            unbatched["engine_calls"] / max(1, batched["engine_calls"])
        ),
    }
    return {
        "summary": summary,
        "unbatched": unbatched,
        "batched": batched,
        "hot_reload": reload_probe,
    }


def write_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the report JSON (default: ``results/BENCH_http_serving.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_http_serving.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_http_serving(outdir):
    """Benchmark-suite entry: small problem, correctness-flavored asserts."""
    report = run_bench(
        n=400, m=24, tile_size=100, n_requests=48, concurrency=12,
        max_batch=8, num_workers=2,
    )
    assert report["unbatched"]["completed"] >= 48
    assert report["batched"]["completed"] >= 48
    # Coalescing must never *add* engine calls; on a loaded runner the
    # clients can arrive too far apart to ever share a 2ms window, so a
    # strict reduction would flake — only require it when rounds did
    # coalesce.
    assert report["batched"]["engine_calls"] <= report["unbatched"]["engine_calls"]
    if report["batched"]["coalesced_requests"] > 0:
        assert report["batched"]["engine_calls"] < report["unbatched"]["engine_calls"]
    assert report["hot_reload"]["failed_requests"] == 0
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=900, help="training-set size")
    parser.add_argument("--m", type=int, default=32, help="targets per request")
    parser.add_argument("--tile-size", type=int, default=150, help="tile size nb")
    parser.add_argument("--acc", type=float, default=1e-9, help="TLR accuracy")
    parser.add_argument(
        "--variant", default="full-block", choices=("full-block", "full-tile", "tlr")
    )
    parser.add_argument("--requests", type=int, default=96, help="total requests")
    parser.add_argument("--concurrency", type=int, default=16, help="client threads")
    parser.add_argument("--window", type=float, default=0.002, help="batch window (s)")
    parser.add_argument("--max-batch", type=int, default=8, help="max requests per batch")
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(
        n=args.n,
        m=args.m,
        tile_size=args.tile_size,
        acc=args.acc,
        variant=args.variant,
        n_requests=args.requests,
        concurrency=args.concurrency,
        window=args.window,
        max_batch=args.max_batch,
        num_workers=args.workers,
    )
    path = write_report(report, args.out)
    s = report["summary"]
    print(f"wrote {path}")
    print(
        f"n={s['n']} m={s['m_targets_per_request']} variant={s['variant']} "
        f"requests={s['n_requests']} concurrency={s['concurrency']} "
        f"workers={s['num_workers']}"
    )
    for name in ("unbatched", "batched"):
        r = report[name]
        print(
            f"  {name:>9}: {r['requests_per_second']:8.1f} req/s  "
            f"p50 {r['p50_ms']:6.2f} ms  p95 {r['p95_ms']:6.2f} ms  "
            f"engine calls {r['engine_calls']}"
        )
    hr = report["hot_reload"]
    print(
        f"hot-reload: mean {hr['reload_ms_mean']:.0f} ms, max {hr['reload_ms_max']:.0f} ms "
        f"over {hr['n_swaps']} swaps; {hr['requests_during_swaps']} requests served, "
        f"{hr['failed_requests']} failed"
    )
    print(
        f"throughput speedup (batched vs unbatched): "
        f"{s['throughput_speedup_batched_vs_unbatched']:.2f}x"
    )


if __name__ == "__main__":
    main()
