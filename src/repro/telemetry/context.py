"""Trace context: one id that follows a request across processes.

A :class:`TraceContext` is the minimal W3C-traceparent-style triple
``(trace_id, span_id, parent_id)``. It is carried in a
:class:`contextvars.ContextVar`, so nested :func:`~repro.telemetry.span`
calls on the same thread (or the same asyncio task) automatically
parent correctly, and it crosses process boundaries in two places:

* the ``X-Repro-Trace`` HTTP header (``<trace_id>:<span_id>``),
  alongside the existing ``X-Repro-Deadline`` plumbing, and
* the router→worker pipe payload (a ``(trace_id, span_id)`` pair under
  the ``"trace"`` key).

Both codecs are *lossy on purpose*: only the ids travel; spans
themselves stay in the process that recorded them and are re-joined by
the router when ``/v1/trace/<trace_id>`` assembles the tree.

Context propagation caveats (the two that bit every other layer of
this repo): ``loop.run_in_executor`` does **not** copy contextvars
into the executor thread, and :class:`~repro.runtime.Runtime` worker
threads never see the submitting thread's context. Callers that hop
threads must capture :func:`current` and re-:func:`activate` it on the
other side — ``PredictionService`` does exactly that for batch
execution.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "activate",
    "child_of",
    "current",
    "from_header",
    "from_wire",
    "new_span_id",
    "new_trace",
    "to_header",
    "to_wire",
]

TRACE_HEADER = "X-Repro-Trace"

_HEX = frozenset("0123456789abcdef")


def new_span_id() -> str:
    """A fresh 12-hex-char span id (collision odds ~1e-7 at 10k spans)."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class TraceContext:
    """The identity of "where am I" inside one distributed trace.

    ``span_id`` names the *currently open* span (or, for a context
    parsed off the wire, the remote parent every local span should
    attach under). ``parent_id`` is ``None`` for a trace root.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None


_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current() -> Optional[TraceContext]:
    """The active trace context on this thread/task, or ``None``."""
    return _CURRENT.get()


def new_trace() -> TraceContext:
    """Start a brand-new trace (a root context with no parent)."""
    return TraceContext(trace_id=uuid.uuid4().hex[:16], span_id=new_span_id())


def child_of(ctx: TraceContext) -> TraceContext:
    """A child context: same trace, fresh span id, parented to *ctx*."""
    return TraceContext(
        trace_id=ctx.trace_id, span_id=new_span_id(), parent_id=ctx.span_id
    )


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install *ctx* as the current context for the ``with`` body."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def set_current(ctx: Optional[TraceContext]):
    """Non-contextmanager form of :func:`activate`; returns the reset token."""
    return _CURRENT.set(ctx)


def reset_current(token) -> None:
    _CURRENT.reset(token)


# --------------------------------------------------------------------------
# HTTP header codec


def to_header(ctx: TraceContext) -> str:
    """Serialize for the ``X-Repro-Trace`` header: ``trace_id:span_id``."""
    return f"{ctx.trace_id}:{ctx.span_id}"


def _is_hex_id(value: str, lo: int = 4, hi: int = 32) -> bool:
    return lo <= len(value) <= hi and all(c in _HEX for c in value)


def from_header(value: Optional[str]) -> Optional[TraceContext]:
    """Parse an ``X-Repro-Trace`` header; malformed values are ignored.

    A header is remote input — a garbage value must not take the
    request down, it just starts an unlinked trace locally.
    """
    if not value:
        return None
    parts = value.strip().lower().split(":")
    if len(parts) != 2:
        return None
    trace_id, span_id = parts
    if not (_is_hex_id(trace_id) and _is_hex_id(span_id)):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


# --------------------------------------------------------------------------
# Pipe payload codec (router → worker)


def to_wire(ctx: TraceContext) -> Tuple[str, str]:
    return (ctx.trace_id, ctx.span_id)


def from_wire(value: object) -> Optional[TraceContext]:
    if not isinstance(value, Sequence) or len(value) != 2:
        return None
    trace_id, span_id = value
    if not (isinstance(trace_id, str) and isinstance(span_id, str)):
        return None
    if not (_is_hex_id(trace_id) and _is_hex_id(span_id)):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)
