"""Benchmark-suite configuration.

Every benchmark writes its rendered result table(s) under ``results/``
(override with ``REPRO_RESULTS_DIR``); the pytest-benchmark timing table
covers the computational kernels themselves. ``REPRO_BENCH_SCALE=full``
raises problem sizes toward the paper's (hours of compute).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import results_dir


def pytest_sessionstart(session):
    results_dir()


def pytest_terminal_summary(terminalreporter):
    terminalreporter.write_line(
        f"repro: experiment tables written under {results_dir().resolve()}"
    )


@pytest.fixture(scope="session")
def outdir():
    """The session's results directory."""
    return results_dir()
