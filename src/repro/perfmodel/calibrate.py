"""Calibrate per-phase costs from a recorded telemetry span sink.

The analytic models in this subpackage predict phase times from
hardware descriptions; this module closes the loop from the *measured*
side. Arm telemetry with a JSONL sink::

    from repro.telemetry import configure
    configure(enabled=True, sink_dir="spans/", propagate=True)

run a fit or a serving soak, and every process (router, workers, fit
legs) writes its spans to ``spans/spans-<pid>.jsonl``.
:func:`load_spans` reads the directory back and :func:`phase_costs`
reduces it to per-phase statistics — measured counterparts to
:func:`~repro.perfmodel.analytic.estimate_mle_iteration`'s predicted
``generation`` / ``factorization`` / ``solve`` breakdown, directly
comparable via :func:`compare_to_estimate`.

Also runnable as a CLI::

    python -m repro.perfmodel.calibrate spans/
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..exceptions import CalibrationError, TelemetryError

__all__ = ["load_spans", "phase_costs", "compare_to_estimate", "format_report"]


def load_spans(
    sink_dir: Union[str, Path], *, allow_empty: bool = False
) -> List[dict]:
    """Read every span from a telemetry sink directory.

    Reads all ``spans-*.jsonl`` files (one per process). Malformed
    lines — a process killed mid-write leaves at most one torn tail
    line per file — are skipped, not fatal: a chaos run's sink must
    still calibrate.

    A missing directory raises :class:`~repro.exceptions.TelemetryError`.
    A directory that exists but yields **zero** spans (no ``spans-*.jsonl``
    files, or files with no parseable span records) raises
    :class:`~repro.exceptions.CalibrationError` — calibrating against
    nothing is always a misconfiguration (telemetry was never armed with
    ``configure(enabled=True, sink_dir=...)``, or the measured run never
    happened) and used to be silently reported as an empty cost table.
    Pass ``allow_empty=True`` to get the old ``[]`` behavior.
    """
    root = Path(sink_dir)
    if not root.is_dir():
        raise TelemetryError(f"span sink directory {str(root)!r} does not exist")
    spans: List[dict] = []
    n_files = 0
    for path in sorted(root.glob("spans-*.jsonl")):
        n_files += 1
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from a killed process
                if isinstance(rec, dict) and "name" in rec and "duration" in rec:
                    spans.append(rec)
    if not spans and not allow_empty:
        detail = (
            f"its {n_files} spans-*.jsonl file(s) contain no span records"
            if n_files
            else "it contains no spans-*.jsonl files"
        )
        raise CalibrationError(
            f"span sink directory {str(root)!r} exists but {detail}; arm "
            "telemetry with configure(enabled=True, sink_dir=...) and run "
            "the workload first, or pass allow_empty=True to accept an "
            "empty sink"
        )
    return spans


def phase_costs(spans: Iterable[dict]) -> Dict[str, dict]:
    """Reduce spans to per-phase cost statistics, keyed by span name.

    Each entry carries ``count``, ``total_s``, ``mean_s``, ``p50_s``,
    ``max_s``. The interesting keys are the ``stage:*`` phases
    (generation / factorization / solve / cross — the paper's
    per-iteration breakdown), ``loglik.eval`` (one optimizer objective
    call), and the serving phases (``service.queue_wait``,
    ``wire.encode`` / ``wire.decode``, ``engine.predict``).
    """
    by_name: Dict[str, List[float]] = {}
    for rec in spans:
        by_name.setdefault(str(rec["name"]), []).append(float(rec["duration"]))
    out: Dict[str, dict] = {}
    for name, durations in sorted(by_name.items()):
        durations.sort()
        n = len(durations)
        out[name] = {
            "count": n,
            "total_s": sum(durations),
            "mean_s": sum(durations) / n,
            "p50_s": durations[n // 2],
            "max_s": durations[-1],
        }
    return out


def compare_to_estimate(
    costs: Dict[str, dict], estimate: "object"
) -> Dict[str, dict]:
    """Join measured ``stage:*`` costs against a
    :class:`~repro.perfmodel.analytic.PerfEstimate`'s predicted phase
    times. Returns ``{phase: {"measured_s", "predicted_s", "ratio"}}``
    for the phases present on both sides — the calibration residual the
    rank/efficiency models can be tuned against.
    """
    predicted = getattr(estimate, "breakdown", None)
    if not isinstance(predicted, dict):
        raise TelemetryError(
            "compare_to_estimate needs a PerfEstimate with a stage breakdown"
        )
    joined: Dict[str, dict] = {}
    for phase, pred_s in predicted.items():
        measured = costs.get(f"stage:{phase}")
        if measured is None or pred_s <= 0:
            continue
        joined[phase] = {
            "measured_s": measured["mean_s"],
            "predicted_s": float(pred_s),
            "ratio": measured["mean_s"] / float(pred_s),
        }
    return joined


def format_report(costs: Dict[str, dict]) -> str:
    """Fixed-width text table of :func:`phase_costs` output."""
    lines = [
        f"{'phase':<28} {'count':>7} {'total_s':>10} {'mean_s':>10} "
        f"{'p50_s':>10} {'max_s':>10}"
    ]
    for name, stat in costs.items():
        lines.append(
            f"{name:<28} {stat['count']:>7d} {stat['total_s']:>10.4f} "
            f"{stat['mean_s']:>10.6f} {stat['p50_s']:>10.6f} {stat['max_s']:>10.6f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Aggregate a telemetry span sink into per-phase costs."
    )
    parser.add_argument("sink_dir", help="directory holding spans-*.jsonl files")
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of a text table"
    )
    args = parser.parse_args(argv)
    costs = phase_costs(load_spans(args.sink_dir))
    if args.json:
        print(json.dumps(costs, indent=2))
    else:
        print(format_report(costs))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
