"""The fit orchestrator: durable, process-parallel, resumable MLE fits.

ExaGeoStatR's lesson (Abdulah et al., 2019) is that the fitting loop
itself deserves packaging: fits are long, machines die, and the
multistart search the strong-correlation regimes need is embarrassingly
parallel. :class:`FitOrchestrator` turns a
:class:`~repro.fitting.jobs.JobStore` of :class:`FitJobSpec`s into
finished :class:`~repro.serving.store.ModelBundle`s:

* **Process-parallel multistart.** A job with ``n_starts = s`` fans out
  as ``s`` independent worker processes (bounded by ``max_workers``
  across all jobs), each regenerating the job's deterministic
  :func:`~repro.optim.neldermead.multistart_points` list and claiming
  one index. The merge keeps the strictly-best ``fun`` with earliest-
  start tie-breaking — exactly :func:`multistart_nelder_mead`'s rule —
  so the parallel answer is bit-identical to the sequential one.
* **Checkpoint / auto-restart.** Every worker streams
  :class:`~repro.optim.neldermead.SimplexState` snapshots through a
  :class:`~repro.fitting.checkpoint.Checkpointer`; a worker killed
  mid-fit is respawned (up to ``max_restarts`` times) and resumes from
  its last checkpoint, converging to the same theta as an uninterrupted
  run. Deliberate failures (an objective that raises) are *not*
  retried — they are deterministic and would fail again.
* **Finalize to a bundle.** When every start has reported, a finalize
  process rebuilds the estimator, assembles a
  :class:`~repro.mle.estimator.FitResult` (with the winning start's
  trace as its optimizer history and the job's seed/settings recorded
  for reproducibility), and saves a serving bundle under the job
  directory. The parent then fires ``on_complete`` — the hook
  :class:`~repro.serving.server.ServingServer` uses to hot-reload the
  refitted model with zero downtime.

The scheduler is a single thread; it blocks on the worker process
sentinels plus a wake pipe (no polling loops) and is the only writer of
each job's ``state.json``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import get_config
from ..exceptions import CheckpointError, FittingError
from ..optim.neldermead import nelder_mead
from ..optim.result import OptimizeResult
from ..resilience.faults import fault_point
from ..resilience.policy import RetryPolicy
from ..telemetry import spans as _telemetry
from ..utils.logging import get_logger
from ..utils.timer import Stopwatch
from .checkpoint import Checkpointer
from .jobs import FitJobSpec, JobStore, merge_start_results

__all__ = ["FitOrchestrator"]

logger = get_logger(__name__)

#: Option names accepted by :class:`FitOrchestrator` (validated up front
#: so a ServingServer can reject a typo'd ``fit_options`` dict before it
#: spawns anything).
ORCHESTRATOR_OPTIONS = (
    "max_workers",
    "checkpoint_every",
    "max_restarts",
    "start_method",
)


# ---------------------------------------------------------------------------
# Worker-process entry points
# ---------------------------------------------------------------------------


def _json_trace_line(iteration: int, theta: np.ndarray, fun: float) -> str:
    import json

    return json.dumps(
        {
            "iteration": int(iteration),
            "loglik": -float(fun),
            "theta": [float(v) for v in theta],
        }
    )


def _run_start(root: str, job_id: str, start_idx: int, checkpoint_every: int) -> None:
    """One multistart leg, executed in its own process.

    Resumes from the leg's checkpoint when one exists; otherwise starts
    fresh from the leg's deterministic start point. The per-iteration
    trace is rewritten from the checkpoint's history on resume, so the
    trace file never holds duplicate iterations.
    """
    store = JobStore(root)
    try:
        # Chaos hook: a ``fit.leg`` kill rule exercises the abnormal-death
        # → respawn-from-checkpoint path; the plan's cross-process hit
        # counters mean the respawned leg sees the next hit and proceeds.
        fault_point("fit.leg", path=f"{job_id}/{start_idx}")
        # The leg runs in its own process: its spans (this one, plus
        # every nested loglik.eval / stage:* span) land in the process's
        # JSONL sink when REPRO_TELEMETRY_SINK is exported — the raw
        # material for perfmodel/calibrate.py.
        with _telemetry.span("fit.leg", job=job_id, start=start_idx):
            spec = store.spec(job_id)
            resolved = spec.resolve()
            estimator = resolved.estimator
            ckpt = Checkpointer(
                store.checkpoint_path(job_id, start_idx), every=checkpoint_every
            )
            try:
                state = ckpt.load()
            except CheckpointError:
                state = None  # torn/corrupt checkpoint: restart this leg fresh
            trace_path = store.trace_path(job_id, start_idx)
            with trace_path.open("w") as trace:
                if state is not None:
                    for entry in state.history:
                        trace.write(_json_trace_line(*entry) + "\n")
                    trace.flush()

                def on_iteration(it: int, theta: np.ndarray, fun: float) -> None:
                    trace.write(_json_trace_line(it, theta, fun) + "\n")
                    trace.flush()

                sw = Stopwatch()
                with sw:
                    result = nelder_mead(
                        estimator.evaluator.negative,
                        None if state is not None else resolved.starts[start_idx],
                        resolved.lower,
                        resolved.upper,
                        ftol=spec.ftol,
                        xtol=spec.xtol,
                        maxiter=spec.maxiter,
                        callback=on_iteration,
                        state=state,
                        state_callback=ckpt,
                    )
            store.write_start_result(
                job_id,
                start_idx,
                {
                    "x": [float(v) for v in result.x],
                    "fun": float(result.fun),
                    "nfev": int(result.nfev),
                    "nit": int(result.nit),
                    "converged": bool(result.converged),
                    "message": result.message,
                    "elapsed": float(sw.elapsed),
                },
            )
    except Exception as exc:  # deterministic failure: report, don't retry
        store.write_start_error(job_id, start_idx, exc)


def _finalize_job(root: str, job_id: str) -> None:
    """Merge a job's start results and persist the serving bundle.

    Runs in its own process because bundling may factorize ``Sigma_22``
    at the winning theta (``include_factor``) — heavy work that must not
    stall the scheduler thread.
    """
    store = JobStore(root)
    try:
        from ..mle.estimator import FitResult

        spec = store.spec(job_id)
        resolved = spec.resolve()
        estimator = resolved.estimator
        results = [store.read_start_result(job_id, i) for i in range(spec.n_starts)]
        merged = merge_start_results(results)
        store.write_result(job_id, merged)
        history = store.history(job_id, merged["best_start"])
        optimizer = OptimizeResult(
            x=np.asarray(merged["theta"], dtype=np.float64),
            fun=merged["fun"],
            nfev=merged["nfev"],
            nit=merged["nit"],
            converged=merged["converged"],
            message=merged["message"],
            history=history,
        )
        n_evals = max(1, merged["nfev"])
        fit = FitResult(
            theta=optimizer.x.copy(),
            loglik=merged["loglik"],
            optimizer=optimizer,
            n_evals=merged["nfev"],
            time_total=merged["elapsed"],
            time_per_iteration=merged["elapsed"] / n_evals,
            variant=estimator.variant,
            acc=estimator.acc,
            options={
                "x0": [float(v) for v in resolved.x0],
                "bounds": {
                    "lower": [float(v) for v in resolved.lower],
                    "upper": [float(v) for v in resolved.upper],
                },
                "maxiter": spec.maxiter,
                "ftol": spec.ftol,
                "xtol": spec.xtol,
                "n_starts": spec.n_starts,
                "seed": resolved.seed,
                "use_morton": spec.use_morton,
                "warm_start": spec.warm_start,
                "best_start": merged["best_start"],
            },
        )
        estimator.save_fit(
            fit,
            store.bundle_dir(job_id),
            include_factor=spec.include_factor,
            include_distance_cache=spec.include_distance_cache,
        )
    except Exception as exc:
        store.write_start_error(job_id, -1, exc)  # -1: the finalize slot


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------


class FitOrchestrator:
    """Runs the jobs of a :class:`JobStore` on a pool of processes.

    Parameters
    ----------
    store:
        The job ledger (a :class:`JobStore` or a directory path).
    max_workers:
        Concurrency cap across every job's start and finalize tasks
        (default: configured ``fit_workers``).
    checkpoint_every:
        Iterations between worker checkpoints (default: configured
        ``fit_checkpoint_every``).
    max_restarts:
        Respawns granted to each of a job's start legs whose worker
        dies abnormally before the job is declared failed (default:
        configured ``fit_max_restarts``). Restarts resume from
        checkpoints; the job-level ``restarts`` counter in its state
        records the total across legs.
    start_method:
        :mod:`multiprocessing` start method (default ``fork`` where
        available, else ``spawn``).
    on_complete:
        Called with the finished job's record (no trace) after its
        bundle landed and its state turned ``done`` — the serving
        integration hook. Exceptions are caught and recorded on the
        job as ``complete_error``; they never kill the scheduler.

    Examples
    --------
    >>> orch = FitOrchestrator("fit-jobs", max_workers=4)   # doctest: +SKIP
    >>> job_id = orch.start().submit(FitJobSpec(locations=locs, z=z,
    ...                                         n_starts=4, seed=7))
    >>> record = orch.wait(job_id, timeout=600)             # doctest: +SKIP
    >>> record["status"], record["result"]["theta"]         # doctest: +SKIP
    """

    def __init__(
        self,
        store: Union[JobStore, str, Path],
        *,
        max_workers: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        max_restarts: Optional[int] = None,
        start_method: Optional[str] = None,
        on_complete: Optional[Callable[[dict], None]] = None,
    ) -> None:
        cfg = get_config()
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.max_workers = cfg.fit_workers if max_workers is None else int(max_workers)
        if self.max_workers < 1:
            raise FittingError(f"max_workers must be >= 1, got {max_workers}")
        self.checkpoint_every = (
            cfg.fit_checkpoint_every if checkpoint_every is None else int(checkpoint_every)
        )
        if self.checkpoint_every < 1:
            raise FittingError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.max_restarts = (
            cfg.fit_max_restarts if max_restarts is None else int(max_restarts)
        )
        if self.max_restarts < 0:
            raise FittingError(f"max_restarts must be >= 0, got {max_restarts}")
        # The respawn budget expressed as the unified retry policy: the
        # first spawn plus ``max_restarts`` retries, consulted by the
        # reap paths as ``allows(used + 1)``. Backoff stays zero — the
        # scheduler thread must never sleep while holding the lock.
        self.restart_policy = RetryPolicy(
            max_attempts=self.max_restarts + 1, base_delay=0.0, jitter=0.0
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.on_complete = on_complete
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._procs: Dict[Tuple[str, int], multiprocessing.process.BaseProcess] = {}
        self._finalizers: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._pending: Deque[Tuple[str, int]] = deque()
        self._finalize_queue: Deque[str] = deque()
        self._start_restarts: Dict[Tuple[str, int], int] = {}
        self._finalize_restarts: Dict[str, int] = {}
        self._wake_r: Optional[int] = None
        self._wake_w: Optional[int] = None

    @staticmethod
    def validate_options(options: Optional[dict]) -> dict:
        """Check an options dict (e.g. a server's ``fit_options``) up
        front, keys and values, without touching the filesystem;
        returns it. Problems raise :class:`FittingError` — the caller
        (a :class:`ServingServer` constructor) is the right place to
        fail, not the first submitted job."""
        options = dict(options or {})
        unknown = sorted(set(options) - set(ORCHESTRATOR_OPTIONS))
        if unknown:
            raise FittingError(
                f"unknown fit orchestrator options {unknown}; "
                f"valid: {sorted(ORCHESTRATOR_OPTIONS)}"
            )
        for key, minimum in (("max_workers", 1), ("checkpoint_every", 1), ("max_restarts", 0)):
            value = options.get(key)
            if value is not None and int(value) < minimum:
                raise FittingError(f"{key} must be >= {minimum}, got {value}")
        method = options.get("start_method")
        if method is not None and method not in multiprocessing.get_all_start_methods():
            raise FittingError(
                f"start_method {method!r} unavailable; "
                f"choose from {multiprocessing.get_all_start_methods()}"
            )
        return options

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "FitOrchestrator":
        """Recover the store and launch the scheduler thread (idempotent)."""
        with self._cond:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._wake_r, self._wake_w = os.pipe()
            os.set_blocking(self._wake_r, False)
            self.store.recover()
            for state in self.store.list_jobs():
                if state["status"] in ("queued", "checkpointed"):
                    self._enqueue_locked(state["job_id"], int(state["n_starts"]))
            self._thread = threading.Thread(
                target=self._loop, name="repro-fit-orchestrator", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop scheduling and terminate running fit processes.

        Checkpoints already on disk survive, and the final
        :meth:`JobStore.recover` flips interrupted jobs back to
        ``checkpointed``/``queued`` — a later orchestrator (same store)
        resumes them where they stopped.
        """
        with self._cond:
            thread, self._thread = self._thread, None
            self._stop.set()
            self._wake()
        if thread is not None:
            thread.join(timeout)
        with self._cond:
            procs = list(self._procs.values()) + list(self._finalizers.values())
            self._procs.clear()
            self._finalizers.clear()
            self._pending.clear()
            self._finalize_queue.clear()
            self._start_restarts.clear()
            self._finalize_restarts.clear()
            for fd in (self._wake_r, self._wake_w):
                if fd is not None:
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover - already closed
                        pass
            self._wake_r = self._wake_w = None
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(5.0)
        self.store.recover()

    def __enter__(self) -> "FitOrchestrator":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """True while the scheduler thread is actually alive (a dead
        thread must degrade ``/healthz``, not report healthy)."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    # --------------------------------------------------------------- submit
    def submit(self, spec: FitJobSpec) -> str:
        """Persist ``spec`` as a queued job; returns its id immediately."""
        job_id = self.store.create(spec)
        with self._cond:
            if self._thread is not None:
                self._enqueue_locked(job_id, spec.n_starts)
                self._wake()
        return job_id

    def status(self, job_id: str) -> dict:
        """The job's current state (single read of ``state.json``)."""
        return self.store.state(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job is ``done``/``failed``; returns its record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                state = self.store.state(job_id)
                if state["status"] in ("done", "failed"):
                    return self.store.record(job_id)
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise FittingError(
                        f"job {job_id} still {state['status']!r} after {timeout}s"
                    )
                self._cond.wait(0.5 if remaining is None else min(0.5, remaining))

    def worker_pids(self, job_id: str) -> List[int]:
        """PIDs of the job's live start workers (tests use this to kill
        a fit mid-run and watch it resume)."""
        with self._cond:
            return [
                proc.pid
                for (jid, _), proc in self._procs.items()
                if jid == job_id and proc.pid is not None and proc.is_alive()
            ]

    # ------------------------------------------------------------ scheduler
    def _enqueue_locked(self, job_id: str, n_starts: int) -> None:
        scheduled = {key for key in self._pending if key[0] == job_id}
        todo = []
        for i in range(n_starts):
            key = (job_id, i)
            if key in scheduled or key in self._procs:
                continue
            if self.store.read_start_result(job_id, i) is None:
                todo.append(key)
        if todo:
            self._pending.extend(todo)
        elif job_id not in self._finalizers and job_id not in self._finalize_queue:
            # Every start already finished (e.g. killed during finalize):
            # go straight to bundling.
            self._finalize_queue.append(job_id)

    def _wake(self) -> None:
        if self._wake_w is None:
            return
        try:
            os.write(self._wake_w, b"x")
        except OSError:  # pragma: no cover - pipe gone during teardown
            pass

    def _loop(self) -> None:
        wake_r = self._wake_r
        while not self._stop.is_set():
            sentinels: List[object] = []
            try:
                with self._cond:
                    self._reap_starts_locked()
                    completed = self._reap_finalizers_locked()
                    self._launch_locked()
                    sentinels = [p.sentinel for p in self._procs.values()]
                    sentinels += [p.sentinel for p in self._finalizers.values()]
                    self._cond.notify_all()
                # The completion hook (e.g. the serving server's
                # hot-reload round-trip, bounded only by its request
                # timeout) runs on its own thread: neither the condition
                # lock nor this scheduler thread waits on it, so a slow
                # reload stalls no reaping, launching, submit() or wait().
                for job_id in completed:
                    threading.Thread(
                        target=self._fire_on_complete,
                        args=(job_id,),
                        name=f"repro-fit-complete-{job_id}",
                        daemon=True,
                    ).start()
            except Exception:  # noqa: BLE001 - the scheduler must survive
                logger.exception("fit scheduler iteration failed; continuing")
            multiprocessing.connection.wait(sentinels + [wake_r], timeout=1.0)
            try:
                while os.read(wake_r, 4096):
                    pass
            except BlockingIOError:
                pass
            except OSError:  # pragma: no cover - pipe gone during teardown
                return

    def _reap_starts_locked(self) -> None:
        for key in [k for k, p in self._procs.items() if p.exitcode is not None]:
            job_id, idx = key
            proc = self._procs.pop(key, None)
            if proc is None:
                # A sibling start's abort already removed this key.
                continue
            if self.store.read_start_result(job_id, idx) is not None:
                self._maybe_finalize_locked(job_id)
                continue
            error = self.store.read_start_error(job_id, idx)
            if error is not None:
                # Deterministic failure: retrying would fail identically.
                self._abort_job_locked(
                    job_id, f"start {idx}: {error['type']}: {error['message']}"
                )
                continue
            # Abnormal death (SIGKILL, OOM): the budget is per start, so
            # one machine-wide event that kills every leg of a multistart
            # job once does not exhaust it.
            used = self._start_restarts.get(key, 0)
            if self.restart_policy.allows(used + 1):
                resumable = self.store.has_checkpoint(job_id, idx)
                logger.warning(
                    "fit job %s start %d died (exitcode %s); respawning %s",
                    job_id, idx, proc.exitcode,
                    "from checkpoint" if resumable else "from scratch",
                )
                self._start_restarts[key] = used + 1
                state = self.store.state(job_id)
                self.store.update(
                    job_id,
                    restarts=int(state.get("restarts", 0)) + 1,
                    status="checkpointed",
                )
                self._pending.appendleft(key)
            else:
                self._abort_job_locked(
                    job_id,
                    f"start {idx} worker died (exitcode {proc.exitcode}) after "
                    f"{used} restart(s)",
                )

    def _maybe_finalize_locked(self, job_id: str) -> None:
        state = self.store.state(job_id)
        if state["status"] in ("done", "failed"):
            return
        n_starts = int(state.get("n_starts", 1))
        if any(key[0] == job_id for key in self._procs):
            return
        if any(key[0] == job_id for key in self._pending):
            return
        if all(
            self.store.read_start_result(job_id, i) is not None
            for i in range(n_starts)
        ):
            if job_id not in self._finalizers and job_id not in self._finalize_queue:
                self._finalize_queue.append(job_id)

    def _reap_finalizers_locked(self) -> List[str]:
        """Reap finished finalize processes; returns the job ids whose
        ``on_complete`` hook the caller must fire *off* the lock."""
        completed: List[str] = []
        for job_id in [j for j, p in self._finalizers.items() if p.exitcode is not None]:
            proc = self._finalizers.pop(job_id)
            bundle_dir = self.store.bundle_dir(job_id)
            # meta.json is the bundle's commit marker (written last by
            # ModelBundle.save): its presence means arrays landed too.
            if (bundle_dir / "meta.json").is_file():
                result = self.store.read_result(job_id)
                if result is None:  # pragma: no cover - legacy job dirs
                    result = merge_start_results([
                        self.store.read_start_result(job_id, i)
                        for i in range(int(self.store.state(job_id).get("n_starts", 1)))
                    ])
                self.store.update(
                    job_id,
                    status="done",
                    finished_at=time.time(),
                    result=result,
                    bundle_path=str(bundle_dir),
                )
                completed.append(job_id)
            else:
                error = self.store.read_start_error(job_id, -1)
                if error is not None:
                    # Deterministic failure: retrying would fail identically.
                    self.store.update(
                        job_id,
                        status="failed",
                        finished_at=time.time(),
                        error=f"finalize: {error['type']}: {error['message']}",
                    )
                    continue
                # Abnormal death (OOM during the bundle's factorization is
                # the classic): finalize gets the same restart budget the
                # start legs do — every paid iteration is on disk.
                used = self._finalize_restarts.get(job_id, 0)
                if self.restart_policy.allows(used + 1):
                    logger.warning(
                        "fit job %s finalize died (exitcode %s); respawning",
                        job_id, proc.exitcode,
                    )
                    self._finalize_restarts[job_id] = used + 1
                    state = self.store.state(job_id)
                    self.store.update(
                        job_id, restarts=int(state.get("restarts", 0)) + 1
                    )
                    self._finalize_queue.append(job_id)
                else:
                    self.store.update(
                        job_id,
                        status="failed",
                        finished_at=time.time(),
                        error=(
                            f"finalize process died (exitcode {proc.exitcode}) "
                            f"after {used} restart(s)"
                        ),
                    )
        return completed

    def _fire_on_complete(self, job_id: str) -> None:
        if self.on_complete is None:
            return
        try:
            self.on_complete(self.store.record(job_id, include_trace=False))
        except Exception as exc:  # noqa: BLE001 - recorded, never fatal
            logger.warning("on_complete hook for %s failed: %s", job_id, exc)
            try:
                self.store.update(job_id, complete_error=str(exc))
            except FittingError:  # pragma: no cover - store vanished
                pass

    def _abort_job_locked(self, job_id: str, message: str) -> None:
        for key in [k for k in self._pending if k[0] == job_id]:
            self._pending.remove(key)
        for key in [k for k in self._procs if k[0] == job_id]:
            proc = self._procs.pop(key)
            if proc.is_alive():
                proc.terminate()
        self.store.update(
            job_id, status="failed", finished_at=time.time(), error=message
        )

    def _launch_locked(self) -> None:
        while (
            len(self._procs) + len(self._finalizers) < self.max_workers
            and (self._finalize_queue or self._pending)
        ):
            if self._finalize_queue:
                job_id = self._finalize_queue.popleft()
                proc = self._ctx.Process(
                    target=_finalize_job,
                    args=(str(self.store.root), job_id),
                    name=f"repro-fit-finalize-{job_id}",
                    daemon=True,
                )
                proc.start()
                self._finalizers[job_id] = proc
                continue
            job_id, idx = self._pending.popleft()
            state = self.store.state(job_id)
            if state["status"] in ("done", "failed"):
                continue
            updates = {"status": "running"}
            if not state.get("started_at"):
                updates["started_at"] = time.time()
            self.store.update(job_id, **updates)
            proc = self._ctx.Process(
                target=_run_start,
                args=(str(self.store.root), job_id, idx, self.checkpoint_every),
                name=f"repro-fit-{job_id}-start-{idx}",
                daemon=True,
            )
            proc.start()
            self._procs[(job_id, idx)] = proc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._cond:
            return (
                f"FitOrchestrator(running={self.running}, "
                f"workers={len(self._procs)}+{len(self._finalizers)}/"
                f"{self.max_workers}, pending={len(self._pending)})"
            )
