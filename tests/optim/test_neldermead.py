"""Tests for the from-scratch bound-constrained Nelder-Mead optimizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import OptimizationError
from repro.optim.bounds import (
    clip_to_bounds,
    default_matern_bounds,
    empirical_start,
    validate_bounds,
)
from repro.optim.neldermead import multistart_nelder_mead, nelder_mead


def sphere(x):
    return float(np.sum((x - 0.3) ** 2))


def rosenbrock(x):
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


class TestNelderMead:
    def test_quadratic_convergence(self):
        res = nelder_mead(sphere, [0.9, 0.9, 0.9], [0.0] * 3, [1.0] * 3, maxiter=400)
        assert res.converged
        np.testing.assert_allclose(res.x, 0.3, atol=1e-3)
        assert res.fun < 1e-6

    def test_rosenbrock(self):
        res = nelder_mead(
            rosenbrock, [-0.5, 0.5], [-2.0, -2.0], [2.0, 2.0], maxiter=2000, ftol=1e-12, xtol=1e-12
        )
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=5e-3)

    def test_optimum_outside_box_clamps_to_boundary(self):
        # Minimum at 0.3 but box is [0.5, 1]; solution must sit on 0.5.
        res = nelder_mead(sphere, [0.8, 0.8], [0.5, 0.5], [1.0, 1.0], maxiter=300)
        np.testing.assert_allclose(res.x, 0.5, atol=1e-4)

    def test_all_iterates_respect_bounds(self):
        seen = []

        def spy(x):
            seen.append(x.copy())
            return sphere(x)

        nelder_mead(spy, [0.9, 0.1], [0.05, 0.05], [0.95, 0.95], maxiter=150)
        arr = np.array(seen)
        assert arr.min() >= 0.05 - 1e-12
        assert arr.max() <= 0.95 + 1e-12

    def test_maxiter_cap(self):
        res = nelder_mead(sphere, [0.9, 0.9], [0.0, 0.0], [1.0, 1.0], maxiter=3)
        assert res.nit == 3
        assert not res.converged
        assert "maximum" in res.message

    def test_history_monotone_nonincreasing(self):
        res = nelder_mead(rosenbrock, [0.0, 0.0], [-2, -2], [2, 2], maxiter=200)
        hist = np.array(res.history_fun)
        assert np.all(np.diff(hist) <= 1e-12)

    def test_history_carries_iteration_theta_fun(self):
        res = nelder_mead(sphere, [0.9, 0.9], [0, 0], [1, 1], maxiter=30)
        assert len(res.history) == res.nit
        for k, entry in enumerate(res.history, start=1):
            assert entry.iteration == k
            assert entry.theta.shape == (2,)
            assert entry.fun == sphere(entry.theta)
        # The last entry is the trajectory's arrival at the returned optimum.
        assert res.history[-1].fun >= res.fun

    def test_history_matches_callback_stream(self):
        calls = []
        res = nelder_mead(
            rosenbrock,
            [0.0, 0.0],
            [-2, -2],
            [2, 2],
            maxiter=50,
            callback=lambda it, x, f: calls.append((it, x.copy(), f)),
        )
        assert len(calls) == len(res.history)
        for (cit, cx, cf), entry in zip(calls, res.history):
            assert cit == entry.iteration
            assert cf == entry.fun
            np.testing.assert_array_equal(cx, entry.theta)

    def test_nan_objective_treated_as_worst(self):
        def nan_hole(x):
            if x[0] > 0.6:
                return float("nan")
            return sphere(x)

        res = nelder_mead(nan_hole, [0.5, 0.5], [0.0, 0.0], [1.0, 1.0], maxiter=200)
        assert np.isfinite(res.fun)
        assert res.x[0] <= 0.6 + 1e-6

    def test_penalty_inf_objective(self):
        def cliff(x):
            if x[0] < 0.2:
                return float("inf")
            return sphere(x)

        res = nelder_mead(cliff, [0.8, 0.5], [0.0, 0.0], [1.0, 1.0], maxiter=300)
        np.testing.assert_allclose(res.x, [0.3, 0.3], atol=1e-2)

    def test_callback_invoked_each_iteration(self):
        calls = []
        nelder_mead(
            sphere,
            [0.9, 0.9],
            [0, 0],
            [1, 1],
            maxiter=25,
            callback=lambda it, x, f: calls.append((it, f)),
        )
        assert len(calls) >= 1
        assert calls[0][0] == 1

    def test_nfev_counted(self):
        res = nelder_mead(sphere, [0.9], [0.0], [1.0], maxiter=50)
        assert res.nfev >= res.nit

    def test_invalid_inputs(self):
        with pytest.raises(OptimizationError):
            nelder_mead(sphere, [0.5], [0.0], [1.0], maxiter=0)
        with pytest.raises(Exception):
            nelder_mead(sphere, [0.5, 0.5], [0.0, 1.0], [1.0, 0.5])

    @settings(max_examples=15)
    @given(st.floats(0.05, 0.95), st.floats(0.05, 0.95))
    def test_property_never_worse_than_start(self, x0, y0):
        start_val = sphere(np.array([x0, y0]))
        res = nelder_mead(sphere, [x0, y0], [0, 0], [1, 1], maxiter=60)
        assert res.fun <= start_val + 1e-12


class TestResumableState:
    """The state/state_callback pair must make any checkpoint a perfect
    resume point — same final vertex, counters, and history, bit for bit."""

    def _run_full(self, maxiter=250):
        states = []
        res = nelder_mead(
            rosenbrock,
            [-0.5, 0.5],
            [-2.0, -2.0],
            [2.0, 2.0],
            maxiter=maxiter,
            ftol=1e-10,
            xtol=1e-10,
            state_callback=states.append,
        )
        return res, states

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0))
    def test_property_resume_from_any_checkpoint_is_bit_identical(self, frac):
        full, states = self._run_full()
        assert states, "expected at least one emitted state"
        k = min(len(states) - 1, int(frac * len(states)))
        resumed = nelder_mead(
            rosenbrock,
            None,
            [-2.0, -2.0],
            [2.0, 2.0],
            maxiter=250,
            ftol=1e-10,
            xtol=1e-10,
            state=states[k],
        )
        np.testing.assert_array_equal(resumed.x, full.x)
        assert resumed.fun == full.fun
        assert resumed.nfev == full.nfev
        assert resumed.nit == full.nit
        assert resumed.converged == full.converged
        assert len(resumed.history) == len(full.history)
        for a, b in zip(resumed.history, full.history):
            assert a.iteration == b.iteration and a.fun == b.fun
            np.testing.assert_array_equal(a.theta, b.theta)

    def test_state_snapshots_own_their_arrays(self):
        _, states = self._run_full(maxiter=40)
        frozen = states[0].simplex.copy()
        # Later iterations must not have mutated the earlier snapshot.
        np.testing.assert_array_equal(states[0].simplex, frozen)
        assert states[0].iteration == 1
        assert [s.iteration for s in states] == list(range(1, len(states) + 1))

    def test_resume_past_maxiter_returns_checkpoint_best(self):
        _, states = self._run_full(maxiter=30)
        last = states[-1]
        res = nelder_mead(
            rosenbrock, None, [-2.0, -2.0], [2.0, 2.0], maxiter=last.iteration,
            state=last,
        )
        assert res.nit == last.iteration
        assert res.fun == float(np.min(last.fvals))
        assert res.nfev == last.nfev

    def test_resume_requires_x0_or_state(self):
        with pytest.raises(OptimizationError):
            nelder_mead(sphere, None, [0.0], [1.0])

    def test_bad_state_shape_rejected(self):
        from repro.optim.neldermead import SimplexState

        state = SimplexState(
            simplex=np.zeros((3, 2)), fvals=np.zeros(3), iteration=1, nfev=3,
            history=[],
        )
        with pytest.raises(OptimizationError):
            nelder_mead(sphere, None, [0.0], [1.0], state=state)


class TestMultistart:
    def test_finds_global_of_two_basin_function(self):
        # Local minimum near 0.1 (value 0.5), global near 0.8 (value 0).
        def two_basins(x):
            return float(
                min(0.5 + 20 * (x[0] - 0.1) ** 2, 40 * (x[0] - 0.8) ** 2)
            )

        res = multistart_nelder_mead(
            two_basins, [0.0], [1.0], n_starts=8, seed=3, maxiter=100
        )
        assert res.fun < 0.1
        np.testing.assert_allclose(res.x, [0.8], atol=0.05)

    def test_x0_is_first_start(self):
        res = multistart_nelder_mead(
            sphere, [0.0, 0.0], [1.0, 1.0], x0=[0.3, 0.3], n_starts=1, maxiter=5
        )
        assert res.fun <= 1e-10  # started at the optimum

    def test_aggregated_counts(self):
        res = multistart_nelder_mead(sphere, [0.0], [1.0], n_starts=3, maxiter=20, seed=0)
        assert res.nfev > 20  # more than one run's worth

    def test_multistart_points_deterministic_and_match_sequential(self):
        from repro.optim.neldermead import multistart_points

        lo, hi = [1e-3, 1e-3], [2.0, 5.0]
        pts_a = multistart_points(lo, hi, n_starts=5, x0=[0.5, 0.5], seed=7)
        pts_b = multistart_points(lo, hi, n_starts=5, x0=[0.5, 0.5], seed=7)
        assert len(pts_a) == 5
        np.testing.assert_array_equal(pts_a[0], [0.5, 0.5])
        for a, b in zip(pts_a, pts_b):
            np.testing.assert_array_equal(a, b)

        # Running each start independently and merging with the strict-<
        # rule reproduces the sequential multistart result exactly.
        seq = multistart_nelder_mead(
            sphere, lo, hi, n_starts=5, x0=[0.5, 0.5], seed=7, maxiter=60
        )
        best = None
        for start in pts_a:
            res = nelder_mead(sphere, start, lo, hi, maxiter=60)
            if best is None or res.fun < best.fun:
                best = res
        np.testing.assert_array_equal(best.x, seq.x)
        assert best.fun == seq.fun


class TestBoundsHelpers:
    def test_clip(self):
        lo, hi = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        np.testing.assert_array_equal(
            clip_to_bounds(np.array([-1.0, 2.0]), lo, hi), [0.0, 1.0]
        )

    def test_validate_bounds_errors(self):
        with pytest.raises(Exception):
            validate_bounds([0.0, 1.0], [1.0])
        with pytest.raises(Exception):
            validate_bounds([1.0], [1.0])

    def test_default_matern_bounds_scale_with_data(self, rng):
        z = rng.normal(0, 3.0, 500)
        lo, hi = default_matern_bounds(z)
        assert lo[0] < 9.0 < hi[0]  # sample variance inside the box
        assert lo.shape == (3,) and hi.shape == (3,)

    def test_empirical_start_inside_box(self, rng):
        z = rng.normal(0, 2.0, 100)
        lo, hi = default_matern_bounds(z, max_range=10.0)
        x0 = empirical_start(z, lo, hi)
        assert np.all(x0 >= lo) and np.all(x0 <= hi)
        assert x0[0] == pytest.approx(np.var(z), rel=1e-6)
