"""Figure 1 bench — TLR compression of a Matérn covariance matrix.

Times the construction of a TLR matrix (generation + per-tile
compression) and writes the rank/memory table that reproduces the
quantitative content of the paper's Figure 1.
"""

from __future__ import annotations

from repro.data import generate_irregular_grid, sort_locations
from repro.experiments.common import bench_scale
from repro.experiments.fig1 import run_fig1
from repro.kernels import MaternCovariance
from repro.linalg import TLRMatrix


def test_fig1_rank_table(benchmark, outdir):
    """Rank structure vs accuracy, plus timed TLR construction."""
    n, nb = (900, 150) if bench_scale() == "quick" else (2500, 250)
    locs = generate_irregular_grid(n, seed=0)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)

    def build():
        return TLRMatrix.from_generator(
            n, nb, lambda rs, cs: model.tile(locs, rs, cs), acc=1e-9
        )

    tlr = benchmark(build)
    assert tlr.compression_ratio() > 0.5

    table = run_fig1(n=n, nb=nb)
    table.save("fig1_tlr_representation")
