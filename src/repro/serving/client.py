"""HTTP client for :class:`~repro.serving.server.ServingServer`.

A thin, dependency-free wrapper over :mod:`http.client` that speaks the
server's two transports and re-raises the server's typed errors
(:class:`~repro.exceptions.ModelNotFoundError`,
:class:`~repro.exceptions.ServiceOverloadedError`, ...) so remote and
in-process callers handle failures identically.

Transports
----------
``transport="json"`` (default) is the debug surface: bodies are JSON,
encoded strictly (``allow_nan=False``) so a non-finite float raises a
typed :class:`~repro.exceptions.ValidationError` instead of emitting
bare ``NaN`` tokens no parser accepts, and capped at ``max_body`` bytes
with a message pointing at the binary transport. JSON float encoding
round-trips every finite ``float64`` exactly, so JSON predictions are
bit-identical to calling the worker's engine in process.

``transport="binary"`` speaks :mod:`repro.serving.wire`: targets cross
as raw little-endian float64 frames (several times smaller on the
wire, no repr/parse cost, deflate on top for structured payloads),
the request body is *streamed* from the source arrays (never
concatenated), and the chunked response is decoded incrementally into
one preallocated array — also bit-exact, including NaN/inf payloads
JSON cannot carry at all.

:meth:`ServingClient.predict_pipelined` additionally pipelines many
predict requests over one connection — all requests are sent before
the first response is read, hiding per-request latency — using either
transport.

Each client holds one persistent keep-alive connection guarded by a
lock, so a client instance is thread-safe but serializes its own
requests — concurrent load generators should use one client per
logical client (see ``benchmarks/bench_http_serving.py``).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..config import get_config
from ..exceptions import (
    CircuitOpenError,
    ConfigurationError,
    FittingError,
    LoadShedError,
    PayloadTooLargeError,
    ServerError,
    ServiceOverloadedError,
    ValidationError,
    WireFormatError,
)
from ..resilience.policy import RetryPolicy
from ..telemetry import context as _trace_context
from ..telemetry import spans as _telemetry
from ..utils.validation import as_float_array, check_locations
from . import wire
from .server import exception_from_wire

__all__ = ["ServingClient"]

#: Rejections the server produced *without executing* the request —
#: load shedding at admission, an open circuit breaker, a full model
#: queue. Retrying them is always safe, even for POSTs whose body was
#: sent; whether they ARE retried is the retry policy's call.
_NOT_EXECUTED = (LoadShedError, CircuitOpenError, ServiceOverloadedError)


class _BufferedResponse:
    """A fully-buffered stand-in for :class:`http.client.HTTPResponse`,
    used when an early server rejection was read off a connection that
    died mid-request (see :meth:`ServingClient._early_rejection`)."""

    __slots__ = ("status", "_body", "_headers")

    def __init__(self, status: int, body: bytes, headers: Dict[str, str]) -> None:
        self.status = status
        self._body = body
        self._headers = headers

    def read(self, n: int = -1) -> bytes:
        body, self._body = self._body, b""
        return body

    def getheader(self, name: str, default=None):
        return self._headers.get(name.lower(), default)


class ServingClient:
    """Client for one serving endpoint.

    Parameters
    ----------
    url:
        Base URL (``http://host:port``), e.g. ``server.url``. A bare
        ``host:port`` is accepted too.
    timeout:
        Socket timeout in seconds for each request.
    retry_policy:
        A :class:`~repro.resilience.RetryPolicy` applied to rejections
        the server guarantees it did **not** execute (load shedding,
        open circuit breakers, full model queues): the client backs off
        — honoring the server's ``Retry-After`` hint when one came back
        — and resubmits, up to the policy's attempt budget. ``None``
        (default) surfaces those rejections to the caller unchanged.
        Transport-level retries are unaffected: an idle keep-alive
        connection that turns out dead is always retried exactly once,
        and nothing else (a timeout, or a failure on a fresh
        connection) ever is — the request may have executed.
    transport:
        Default predict transport: ``"json"`` (debug surface) or
        ``"binary"`` (framed float64 frames, streamed both ways — see
        the module docstring). Overridable per call.
    max_body:
        Byte cap the client enforces on its *own* JSON bodies before
        sending (default: configured ``serving_max_body``, matching
        the server's 413 threshold). Binary bodies are not capped
        client-side — the binary transport is the remedy the cap's
        error message prescribes.

    Examples
    --------
    >>> with ServingServer({"m": path}) as server:        # doctest: +SKIP
    ...     client = ServingClient(server.url, transport="binary")
    ...     mean = client.predict("m", targets)
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 120.0,
        retry_policy: Optional[RetryPolicy] = None,
        transport: str = "json",
        max_body: Optional[int] = None,
    ) -> None:
        if url.startswith("https://"):
            raise ServerError("ServingClient speaks plain http only")
        if not url.startswith("http://"):
            url = f"http://{url}"
        try:
            # urlsplit handles trailing slashes, paths, and [::1]-style
            # IPv6 hosts that naive ':' splitting gets wrong.
            parts = urllib.parse.urlsplit(url)
            self.host = parts.hostname or "127.0.0.1"
            self.port = 80 if parts.port is None else int(parts.port)
        except ValueError as exc:
            raise ServerError(f"invalid serving URL {url!r}: {exc}") from exc
        if transport not in ("json", "binary"):
            raise ConfigurationError(
                f"transport must be 'json' or 'binary', got {transport!r}"
            )
        self.transport = transport
        self.max_body = (
            get_config().serving_max_body if max_body is None else int(max_body)
        )
        self.timeout = float(timeout)
        self.retry_policy = retry_policy
        self.n_retries = 0  # response-level (shed/breaker) resubmissions
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------- transport
    def _with_policy(self, fn: Callable[[], object]):
        """Run one request, resubmitting not-executed rejections (load
        shed, open breaker, full queue) under the retry policy."""
        attempt = 0
        while True:
            try:
                return fn()
            except _NOT_EXECUTED as exc:
                policy = self.retry_policy
                if policy is None or not policy.should_retry(exc, attempt):
                    raise
                # The server's Retry-After hint wins over the policy's
                # backoff curve — it knows when the breaker re-opens.
                hint = getattr(exc, "retry_after", None)
                pause = policy.delay(attempt) if hint is None else max(0.0, float(hint))
                if pause > 0.0:
                    time.sleep(pause)
                self.n_retries += 1
                attempt += 1

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        return self._with_policy(
            lambda: self._request_once(method, path, body, headers)
        )

    def _encode_json(self, body: dict) -> bytes:
        """Strict JSON encoding of a request body.

        ``allow_nan=False`` because bare ``NaN``/``Infinity`` tokens are
        not JSON — the server's strict parser (and any other one) would
        reject them after the bytes crossed the wire; failing here is
        earlier and typed. The size cap mirrors the server's 413
        threshold so an oversized body costs zero network traffic.
        """
        try:
            data = json.dumps(body, allow_nan=False).encode("utf-8")
        except ValueError:
            raise ValidationError(
                "request contains non-finite floats that strict JSON cannot "
                "represent; use transport='binary' to send them bit-exact"
            ) from None
        if len(data) > self.max_body:
            raise PayloadTooLargeError(
                f"JSON request body of {len(data)} bytes exceeds the "
                f"{self.max_body}-byte cap; use transport='binary' — its "
                "framed float64 payload is several times smaller and streamed"
            )
        return data

    @staticmethod
    def _early_rejection(conn):
        """Read a response the server sent *before* consuming our body.

        A server refusing a request from its headers alone (a 413 off
        the declared Content-Length) responds and closes its read side
        while the client is still streaming the body — the client then
        hits EPIPE mid-send with the real answer already buffered on
        the socket. Returns that response fully buffered (the
        connection itself is unusable), or ``None`` if there is none.
        """
        try:
            response = conn.getresponse()
            return _BufferedResponse(
                response.status,
                response.read(),
                {name.lower(): value for name, value in response.getheaders()},
            )
        except Exception:
            return None

    def _send_once(self, path: str, data, headers: Dict[str, str], method: str = "POST"):
        """One request/response over the pooled connection (lock held).

        Retries exactly once, and only when an idle keep-alive
        connection turned out to be dead — the server closed it before
        this request could have been processed. A timeout or a failure
        on a fresh connection is NOT retried: the request may have
        executed (predicts would run twice, reloads would double-swap).
        ``data`` may be a zero-argument factory returning the body
        (bytes or a chunk iterator) so a streamed body is rebuilt fresh
        for the retry instead of resending a half-consumed generator.
        """
        for attempt in (0, 1):
            reused = self._conn is not None
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                body = data() if callable(data) else data
                self._conn.request(method, path, body=body, headers=headers)
                return self._conn.getresponse()
            except (http.client.HTTPException, OSError) as exc:
                early = None
                if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
                    early = self._early_rejection(self._conn)
                self.close_locked()
                if early is not None:
                    return early
                stale_keepalive = reused and isinstance(
                    exc,
                    (
                        http.client.RemoteDisconnected,
                        BrokenPipeError,
                        ConnectionResetError,
                    ),
                )
                if attempt or not stale_keepalive:
                    raise ServerError(
                        f"request to {self.host}:{self.port}{path} failed: {exc}"
                    ) from exc

    def _finish_json(self, status: int, raw: bytes, retry_after_header=None) -> dict:
        """Parse a JSON response body; raise the typed error on >= 400."""
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServerError(f"malformed response from server: {exc}") from exc
        if status >= 400:
            error = payload.get("error", {}) if isinstance(payload, dict) else {}
            exc = exception_from_wire(
                error.get("type", "ServerError"),
                error.get("message", f"HTTP {status}"),
            )
            retry_after = error.get("retry_after")
            if retry_after is None and retry_after_header is not None:
                retry_after = float(retry_after_header)
            if retry_after is not None and isinstance(exc, _NOT_EXECUTED):
                exc.retry_after = float(retry_after)
            raise exc
        return payload

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        data = None if body is None else self._encode_json(body)
        headers = {"Content-Type": "application/json"} if data is not None else {}
        headers.update(extra_headers or {})
        with self._lock:
            response = self._send_once(path, data, headers, method=method)
            raw = response.read()
        return self._finish_json(
            response.status, raw, response.getheader("Retry-After")
        )

    def _request_binary_once(
        self,
        path: str,
        meta: dict,
        arrays: Dict[str, np.ndarray],
        extra_headers: Optional[Dict[str, str]] = None,
        *,
        accept_binary: bool = True,
    ) -> Tuple[dict, Optional[Dict[str, np.ndarray]]]:
        """One binary-transport request: the framed message is streamed
        as the request body (explicit Content-Length, chunk by chunk —
        never concatenated), and a binary response is decoded
        incrementally into preallocated arrays.

        Returns ``(meta, arrays)`` for a binary response or
        ``(payload, None)`` for a JSON one (success on a JSON-only
        route, or any error — errors are always JSON). A response cut
        off mid-stream raises :class:`ServerError` and is never
        retried: the request executed.
        """
        plan = wire.plan_message(meta, arrays)
        headers = {
            "Content-Type": wire.CONTENT_TYPE,
            "Content-Length": str(plan.length),
        }
        if accept_binary:
            headers["Accept"] = wire.CONTENT_TYPE
        headers.update(extra_headers or {})
        with self._lock:
            # http.client sends an iterable body verbatim when
            # Content-Length is explicit; the factory rebuilds the
            # generator if the stale-keepalive retry needs a second send.
            response = self._send_once(path, plan.chunks, headers)
            # Past this point the request EXECUTED — no retries below.
            status = response.status
            ctype = (response.getheader("Content-Type") or "")
            ctype = ctype.split(";")[0].strip().lower()
            if status < 400 and ctype == wire.CONTENT_TYPE:
                try:
                    message = wire.read_message(response.read)
                    response.read()  # drain the chunked terminator so the
                    return message   # keep-alive connection stays reusable
                except (WireFormatError, http.client.HTTPException, OSError) as exc:
                    self.close_locked()
                    raise ServerError(
                        f"binary response from {self.host}:{self.port}{path} "
                        f"was cut short: {exc}"
                    ) from exc
            try:
                raw = response.read()
            except (http.client.HTTPException, OSError) as exc:
                self.close_locked()
                raise ServerError(
                    f"reading response from {self.host}:{self.port}{path} "
                    f"failed: {exc}"
                ) from exc
            retry_after = response.getheader("Retry-After")
        return self._finish_json(status, raw, retry_after), None

    def close_locked(self) -> None:
        """Drop the pooled connection (caller holds the lock)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._conn = None

    def close(self) -> None:
        """Close the pooled connection (safe to keep using the client)."""
        with self._lock:
            self.close_locked()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------- API
    @staticmethod
    def _validate_predict_args(
        targets: object, z: Optional[object]
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Validate predict arrays *before* any bytes are encoded.

        Ragged target lists, object dtypes, and non-numeric entries
        raise a typed :class:`~repro.exceptions.ValidationError` naming
        the offending argument instead of an opaque numpy conversion
        error from deep inside the encoder.
        """
        targets = check_locations(targets, "targets")
        if z is not None:
            z = as_float_array(z, "z")
        return targets, z

    def predict(
        self,
        model_id: str,
        targets: np.ndarray,
        *,
        z: Optional[np.ndarray] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        detail: bool = False,
        transport: Optional[str] = None,
    ) -> np.ndarray:
        """Conditional mean at ``targets`` — the remote twin of
        :meth:`~repro.serving.service.PredictionService.predict`.

        ``deadline`` (seconds) travels as the ``X-Repro-Deadline``
        header; the server turns it into an absolute deadline at the
        edge and every layer below inherits the shrinking remainder.
        With ``detail``, returns ``(prediction, flags)`` where flags
        carry the server's ``degraded`` bit — true when the answer came
        from a last-known-good engine generation. ``transport``
        overrides the client default per call (both transports return
        bit-identical predictions; binary is several times smaller on
        the wire and streamed).
        """
        targets, z = self._validate_predict_args(targets, z)
        transport = self.transport if transport is None else str(transport)
        if transport not in ("json", "binary"):
            raise ConfigurationError(
                f"transport must be 'json' or 'binary', got {transport!r}"
            )
        headers = {}
        if deadline is not None:
            headers["X-Repro-Deadline"] = f"{float(deadline):.6f}"
        if not _telemetry.enabled():
            return self._predict_transport(
                model_id, targets, z, priority, detail, transport, headers or None
            )
        # The trace is born here, at the caller: ``client.predict`` is
        # the root span, its ids travel in X-Repro-Trace, and
        # ``/v1/trace/<trace_id>`` joins the server-side spans back
        # under it. The whole request — retries included — is timed.
        with _telemetry.span(
            "client.predict", model=str(model_id), transport=transport
        ) as root:
            headers[_trace_context.TRACE_HEADER] = _trace_context.to_header(root.ctx)
            return self._predict_transport(
                model_id, targets, z, priority, detail, transport, headers
            )

    def _predict_transport(
        self,
        model_id: str,
        targets: np.ndarray,
        z: Optional[np.ndarray],
        priority: int,
        detail: bool,
        transport: str,
        headers: Optional[Dict[str, str]],
    ):
        """One predict over the chosen transport (validated arguments)."""
        if transport == "binary":
            meta: dict = {"model_id": str(model_id)}
            if priority:
                meta["priority"] = int(priority)
            arrays: Dict[str, np.ndarray] = {"targets": targets}
            if z is not None:
                arrays["z"] = z
            payload, rarrays = self._with_policy(
                lambda: self._request_binary_once(
                    "/v1/predict", meta, arrays, headers
                )
            )
            if rarrays is not None:
                prediction = rarrays["prediction"]
            else:  # a JSON 200 from a server that ignored Accept
                prediction = np.asarray(payload["prediction"], dtype=np.float64)
        else:
            body = {"model_id": model_id, "targets": targets.tolist()}
            if z is not None:
                body["z"] = z.tolist()
            if priority:
                body["priority"] = int(priority)
            payload = self._request("POST", "/v1/predict", body, headers)
            prediction = np.asarray(payload["prediction"], dtype=np.float64)
        if detail:
            return prediction, {"degraded": bool(payload.get("degraded", False))}
        return prediction

    def predict_pipelined(
        self,
        requests: Iterable[dict],
        *,
        deadline: Optional[float] = None,
        transport: Optional[str] = None,
    ) -> List[Optional[np.ndarray]]:
        """Pipeline many predict requests over one fresh connection.

        Every request is written to the socket before the first
        response is read (HTTP/1.1 pipelining), so per-request
        round-trip latency is paid once for the whole batch instead of
        once per request. Each ``requests`` element is a dict with
        ``model_id`` and ``targets`` plus optional ``z`` / ``priority``.

        Responses come back in request order. Results are returned in
        the same order, with ``None`` at positions whose request failed
        with a typed error; after *all* responses are drained (the
        stream must stay framed), the first such error is raised. Use
        the return value only when no exception escaped.

        Pipelining is inherently idempotent-only territory: nothing is
        ever retried, and a connection that dies mid-batch raises
        :class:`ServerError` — any request already written may have
        executed.
        """
        transport = self.transport if transport is None else str(transport)
        if transport not in ("json", "binary"):
            raise ConfigurationError(
                f"transport must be 'json' or 'binary', got {transport!r}"
            )
        prepared = []
        for req in requests:
            try:
                model_id = str(req["model_id"])
                raw_targets = req["targets"]
            except KeyError as exc:
                raise ValidationError(
                    f"pipelined request is missing required key {exc}"
                ) from None
            targets, z = self._validate_predict_args(raw_targets, req.get("z"))
            prepared.append((model_id, targets, z, int(req.get("priority", 0))))
        if not prepared:
            return []
        host_header = f"{self.host}:{self.port}"
        deadline_line = (
            f"X-Repro-Deadline: {float(deadline):.6f}\r\n" if deadline is not None else ""
        )
        trace_line = ""
        if _telemetry.enabled():
            # One trace for the whole batch: every pipelined request
            # carries the same ids, so /v1/trace/<id> shows all N
            # router.predict spans side by side under one root.
            ctx = _trace_context.current() or _trace_context.new_trace()
            trace_line = (
                f"{_trace_context.TRACE_HEADER}: {_trace_context.to_header(ctx)}\r\n"
            )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServerError(
                f"connecting to {host_header} for pipelining failed: {exc}"
            ) from exc
        try:
            # ---- write phase: every request, back to back ------------
            for model_id, targets, z, priority in prepared:
                if transport == "binary":
                    meta = {"model_id": model_id}
                    if priority:
                        meta["priority"] = priority
                    arrays = {"targets": targets}
                    if z is not None:
                        arrays["z"] = z
                    plan = wire.plan_message(meta, arrays)
                    head = (
                        f"POST /v1/predict HTTP/1.1\r\n"
                        f"Host: {host_header}\r\n"
                        f"Content-Type: {wire.CONTENT_TYPE}\r\n"
                        f"Accept: {wire.CONTENT_TYPE}\r\n"
                        f"{deadline_line}"
                        f"{trace_line}"
                        f"Content-Length: {plan.length}\r\n"
                        f"\r\n"
                    ).encode("latin-1")
                    sock.sendall(head)
                    for chunk in plan.chunks():
                        sock.sendall(chunk)
                else:
                    body = {"model_id": model_id, "targets": targets.tolist()}
                    if z is not None:
                        body["z"] = z.tolist()
                    if priority:
                        body["priority"] = priority
                    data = self._encode_json(body)
                    head = (
                        f"POST /v1/predict HTTP/1.1\r\n"
                        f"Host: {host_header}\r\n"
                        f"Content-Type: application/json\r\n"
                        f"{deadline_line}"
                        f"{trace_line}"
                        f"Content-Length: {len(data)}\r\n"
                        f"\r\n"
                    ).encode("latin-1")
                    sock.sendall(head + data)
            # ---- read phase: all responses off ONE shared reader -----
            # (separate http.client responses would each buffer ahead
            # and steal the next response's bytes)
            fp = sock.makefile("rb")
            results: List[Optional[np.ndarray]] = []
            first_error: Optional[BaseException] = None
            for _ in prepared:
                status, headers = wire.parse_http_head(fp)
                if "chunked" in headers.get("transfer-encoding", "").lower():
                    reader = wire.ChunkedReader(fp)
                else:
                    reader = wire.BoundedReader(
                        fp, int(headers.get("content-length", 0) or 0)
                    )
                ctype = headers.get("content-type", "").split(";")[0].strip().lower()
                if status < 400 and ctype == wire.CONTENT_TYPE:
                    _, rarrays = wire.read_message(reader.read)
                    reader.drain()
                    results.append(rarrays["prediction"])
                    continue
                chunks = []
                while True:
                    piece = reader.read(wire.CHUNK_SIZE)
                    if not piece:
                        break
                    chunks.append(piece)
                try:
                    payload = self._finish_json(status, b"".join(chunks))
                except Exception as exc:  # typed per-request error
                    if first_error is None:
                        first_error = exc
                    results.append(None)
                    continue
                results.append(np.asarray(payload["prediction"], dtype=np.float64))
            if first_error is not None:
                raise first_error
            return results
        except WireFormatError as exc:
            raise ServerError(
                f"pipelined stream from {host_header} broke mid-batch: {exc} "
                "(any request already written may have executed)"
            ) from exc
        except OSError as exc:
            raise ServerError(
                f"pipelined connection to {host_header} failed: {exc} "
                "(any request already written may have executed)"
            ) from exc
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def register(self, model_id: str, path: Union[str, "object"]) -> dict:
        """Register a bundle path on the owning worker."""
        return self._request(
            "POST", f"/v1/models/{self._quote(model_id)}", {"path": str(path)}
        )

    def upload(self, model_id: str, bundle) -> dict:
        """Register a :class:`~repro.serving.store.ModelBundle` by
        uploading it over the binary transport — no shared filesystem
        required. The server persists it into its upload directory and
        registers the saved copy on the owning worker atomically."""
        meta, arrays = bundle.to_payload()
        payload, _ = self._with_policy(
            lambda: self._request_binary_once(
                f"/v1/models/{self._quote(model_id)}",
                meta,
                arrays,
                accept_binary=False,
            )
        )
        return payload

    def reload(self, model_id: str, path: Optional[Union[str, "object"]] = None) -> dict:
        """Hot-swap ``model_id``'s bundle (default: re-read its registered path)."""
        body = {} if path is None else {"path": str(path)}
        return self._request("POST", f"/v1/models/{self._quote(model_id)}/reload", body)

    def set_policy(
        self,
        model_id: str,
        *,
        batch_window: Optional[float] = None,
        max_batch: Optional[int] = None,
    ) -> dict:
        """Install per-model batching knobs on the owning worker."""
        body: dict = {}
        if batch_window is not None:
            body["batch_window"] = float(batch_window)
        if max_batch is not None:
            body["max_batch"] = int(max_batch)
        return self._request(
            "POST", f"/v1/models/{self._quote(model_id)}/policy", body
        )

    @staticmethod
    def _quote(model_id: str) -> str:
        """Percent-encode a model id for a URL path segment, so ids with
        ``/`` or spaces address the same model they predict against."""
        return urllib.parse.quote(str(model_id), safe="")

    # ------------------------------------------------------------ fitting
    def fit(
        self,
        *,
        model_id: Optional[str] = None,
        from_model: Optional[str] = None,
        bundle_path: Optional[Union[str, "object"]] = None,
        locations: Optional[np.ndarray] = None,
        z: Optional[np.ndarray] = None,
        **options: object,
    ) -> dict:
        """Submit a fit job (``POST /v1/fit``); returns ``{"job_id", ...}``.

        ``from_model`` refits an already-served model (its bundle
        supplies data, substrate, and — by default — a warm-start
        theta); inline ``locations``/``z`` override the bundle's data.
        Remaining keyword ``options`` are
        :class:`~repro.fitting.FitJobSpec` fields (``n_starts``,
        ``seed``, ``maxiter``, ``warm_start``, ``bounds``, ...). On
        completion the server saves the fit as a bundle and hot-reloads
        ``model_id`` — poll with :meth:`job` / :meth:`wait_job`.
        """
        body: dict = dict(options)
        if model_id is not None:
            body["model_id"] = str(model_id)
        if from_model is not None:
            body["from_model"] = str(from_model)
        if bundle_path is not None:
            body["bundle_path"] = str(bundle_path)
        if locations is not None:
            body["locations"] = check_locations(locations, "locations").tolist()
        if z is not None:
            body["z"] = as_float_array(z, "z").tolist()
        return self._request("POST", "/v1/fit", body)

    def job(self, job_id: str, *, trace: bool = True) -> dict:
        """One fit job's record: status, result, and (with ``trace``,
        the default) the per-start per-iteration trajectory. Status
        pollers should pass ``trace=False`` — the trace grows with
        every iteration."""
        suffix = "" if trace else "?trace=0"
        return self._request("GET", f"/v1/jobs/{self._quote(job_id)}{suffix}")

    def jobs(self) -> List[dict]:
        """State summaries of every fit job on the server."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def wait_job(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 0.1,
        require_served: bool = True,
    ) -> dict:
        """Poll until the job finishes; returns its final record.

        With ``require_served`` (default) a job that targets a serving
        ``model_id`` is also waited on until the server published its
        bundle (hot-reload committed), so a following ``predict`` is
        guaranteed to see the new theta.

        Raises
        ------
        FittingError
            The job ``failed``, its publish step failed, or ``timeout``
            elapsed first.
        """
        deadline = time.monotonic() + timeout
        while True:
            # Poll without the trace (it grows per iteration); the full
            # record is fetched once, after the job settles.
            record = self.job(job_id, trace=False)
            status = record.get("status")
            if status == "failed":
                raise FittingError(
                    f"fit job {job_id} failed: {record.get('error')}"
                )
            if status == "done":
                if record.get("serve_error"):
                    raise FittingError(
                        f"fit job {job_id} finished but publishing failed: "
                        f"{record['serve_error']}"
                    )
                if (
                    not require_served
                    or not record.get("model_id")
                    or record.get("served")
                ):
                    return self.job(job_id)  # now with the full trace
            if time.monotonic() >= deadline:
                raise FittingError(
                    f"fit job {job_id} still {status!r} after {timeout}s"
                )
            time.sleep(poll)

    def models(self) -> Dict[str, List[str]]:
        """Model ids known to each worker."""
        return self._request("GET", "/v1/models")["models"]

    def metrics(self, *, format: str = "json"):
        """Per-worker metrics and fleet aggregates.

        ``format="prometheus"`` returns the fleet's merged telemetry
        registry as Prometheus text exposition (a ``str``) instead of
        the JSON dict.
        """
        if format == "prometheus":
            return self._request_text("GET", "/v1/metrics?format=prometheus")
        return self._request("GET", "/v1/metrics")

    def plan(
        self,
        n: int,
        *,
        m: Optional[int] = None,
        substrate: Optional[str] = None,
        accuracy: Optional[float] = None,
    ) -> dict:
        """Ask the server's calibrated planner for the cheapest config.

        ``GET /v1/plan`` — answered router-side from the server's
        :class:`~repro.perfmodel.autotune.CalibrationProfile`, no
        worker round-trip. ``n`` is the problem size; ``m`` the number
        of prediction points (server default 100); ``substrate`` pins
        ``full-block``/``full-tile``/``tlr``; ``accuracy`` pins the TLR
        tolerance. Returns the plan dict (``config``, ``predicted``,
        ``memory``, ``search``, ``profile``). Malformed parameters or
        an infeasible search raise :class:`~repro.exceptions.PlanError`.
        """
        params: Dict[str, str] = {"n": str(int(n))}
        if m is not None:
            params["m"] = str(int(m))
        if substrate is not None:
            params["substrate"] = substrate
        if accuracy is not None:
            params["accuracy"] = repr(float(accuracy))
        return self._request("GET", "/v1/plan?" + urllib.parse.urlencode(params))

    def trace(self, trace_id: str) -> dict:
        """The assembled span tree of one request trace.

        ``trace_id`` is the id :meth:`predict` sent in its
        ``X-Repro-Trace`` header — with telemetry armed, obtain it from
        :func:`repro.telemetry.span` around the call (the span's
        ``ctx.trace_id``) or a :func:`repro.telemetry.new_trace` you
        activated yourself. Raises
        :class:`~repro.exceptions.TraceNotFoundError` for unknown ids.
        """
        return self._request("GET", f"/v1/trace/{self._quote(trace_id)}")

    def _request_text(self, method: str, path: str) -> str:
        """A request whose success body is plain text, not JSON."""
        with self._lock:
            response = self._send_once(path, None, {}, method=method)
            raw = response.read()
        if response.status >= 400:
            self._finish_json(response.status, raw, response.getheader("Retry-After"))
        return raw.decode("utf-8")

    def health(self) -> dict:
        """Router + worker liveness."""
        return self._request("GET", "/healthz")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient(http://{self.host}:{self.port})"
