"""Low-rank tile compression (paper §V, Fig. 1).

Off-diagonal tiles of the covariance matrix are approximated as
``A_ij ~= U_ij @ V_ij`` where ``U`` is ``nb x k`` and ``V`` is ``k x nb``,
with the rank ``k`` chosen per tile so the truncation error respects a
user-defined accuracy threshold — low thresholds give small ranks
(memory-bound regime), high thresholds give large ranks (compute-bound),
exactly the trade-off the paper studies.

Three compressors, mirroring the options named in the paper:

* :func:`svd_compress` — deterministic truncated SVD (reference);
* :func:`rsvd_compress` — adaptive randomized SVD (Halko et al. style
  range finder with doubling rank until the threshold is met);
* :func:`aca_compress` — cross approximation with full pivoting on the
  explicit residual (robust; tiles are materialized anyway during
  generation), with Frobenius-norm stopping.

:func:`recompress` implements the QR+SVD "rounding" used by the TLR GEMM
to keep ranks bounded after low-rank additions.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla

from ..config import get_config
from ..exceptions import CompressionError, ShapeError
from ..utils.rng import SeedLike, as_generator

__all__ = [
    "LowRank",
    "svd_compress",
    "rsvd_compress",
    "aca_compress",
    "compress",
    "recompress",
    "lr_add",
    "truncation_rank",
]


class LowRank:
    """A mutable low-rank block ``A ~= u @ v``.

    Attributes
    ----------
    u:
        ``(m, k)`` left factor (singular values absorbed here).
    v:
        ``(k, n)`` right factor.

    Mutability is deliberate: TLR codelets *replace* the factors (TRSM
    rewrites ``v``; GEMM+recompression rewrites both with a new rank)
    while the containing :class:`~repro.linalg.tlr_matrix.TLRMatrix` and
    runtime handles keep referring to the same object.
    """

    __slots__ = ("u", "v")

    def __init__(self, u: np.ndarray, v: np.ndarray) -> None:
        if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[0]:
            raise ShapeError(f"incompatible low-rank factors {u.shape} x {v.shape}")
        self.u = u
        self.v = v

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the represented dense block."""
        return (self.u.shape[0], self.v.shape[1])

    @property
    def rank(self) -> int:
        """Current rank ``k``."""
        return self.u.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes of the two factors."""
        return int(self.u.nbytes + self.v.nbytes)

    def to_dense(self) -> np.ndarray:
        """Materialize the dense block ``u @ v``."""
        if self.rank == 0:
            return np.zeros(self.shape, dtype=np.float64)
        return self.u @ self.v

    def copy(self) -> "LowRank":
        """Deep copy."""
        return LowRank(self.u.copy(), self.v.copy())

    def set_factors(self, u: np.ndarray, v: np.ndarray) -> None:
        """Replace both factors (rank may change)."""
        if u.shape[0] != self.u.shape[0] or v.shape[1] != self.v.shape[1]:
            raise ShapeError(
                f"replacement factors change block shape: {u.shape} x {v.shape} "
                f"vs {self.shape}"
            )
        if u.shape[1] != v.shape[0]:
            raise ShapeError(f"incompatible factors {u.shape} x {v.shape}")
        self.u = u
        self.v = v

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LowRank(shape={self.shape}, rank={self.rank})"


def truncation_rank(s: np.ndarray, acc: float, rule: str) -> int:
    """Rank needed so discarded singular values fall below the threshold.

    Parameters
    ----------
    s:
        Singular values, descending.
    acc:
        Accuracy threshold ``eps``.
    rule:
        ``"relative"``: keep ``s_i > eps * s_0``; ``"absolute"``: keep
        ``s_i > eps``.
    """
    if s.size == 0:
        return 0
    if rule == "relative":
        thresh = acc * float(s[0])
    elif rule == "absolute":
        thresh = acc
    else:
        raise ShapeError(f"unknown truncation rule {rule!r}")
    return int(np.count_nonzero(s > thresh))


def svd_compress(a: np.ndarray, acc: float, *, rule: Optional[str] = None) -> LowRank:
    """Deterministic truncated-SVD compression to accuracy ``acc``.

    Guarantees ``||a - u@v||_2 <= acc * ||a||_2`` (relative rule) or
    ``<= acc`` (absolute rule).
    """
    rule = rule or get_config().truncation
    u, s, vt = sla.svd(a, full_matrices=False, check_finite=False)
    k = truncation_rank(s, acc, rule)
    return LowRank(np.ascontiguousarray(u[:, :k] * s[:k]), np.ascontiguousarray(vt[:k]))


def rsvd_compress(
    a: np.ndarray,
    acc: float,
    *,
    rule: Optional[str] = None,
    oversample: int = 8,
    power_iters: int = 1,
    initial_rank: int = 8,
    seed: SeedLike = None,
) -> LowRank:
    """Adaptive randomized-SVD compression (Halko-Martinsson-Tropp).

    Starts from ``initial_rank`` and doubles the sketch size until the
    truncation threshold is resolved inside the captured range (i.e. the
    smallest captured singular value falls below the threshold), falling
    back to the exact SVD when the block is effectively full-rank.
    """
    rule = rule or get_config().truncation
    rng = as_generator(seed)
    m, n = a.shape
    max_rank = min(m, n)
    k_try = min(max_rank, max(1, initial_rank))
    while True:
        ell = min(max_rank, k_try + oversample)
        omega = rng.standard_normal((n, ell))
        y = a @ omega
        for _ in range(power_iters):
            y = a @ (a.T @ y)
        q, _ = sla.qr(y, mode="economic", check_finite=False)
        b = q.T @ a
        ub, s, vt = sla.svd(b, full_matrices=False, check_finite=False)
        k = truncation_rank(s, acc, rule)
        # Resolved if the threshold cuts strictly inside the captured
        # spectrum, or we already captured everything.
        if k < s.size or ell >= max_rank:
            u = q @ ub[:, :k]
            return LowRank(np.ascontiguousarray(u * s[:k]), np.ascontiguousarray(vt[:k]))
        k_try = min(max_rank, 2 * k_try)


def aca_compress(
    a: np.ndarray,
    acc: float,
    *,
    rule: Optional[str] = None,
    max_rank: Optional[int] = None,
) -> LowRank:
    """Cross-approximation compression with full pivoting.

    Greedily peels rank-1 crosses off an explicit residual until its
    Frobenius norm drops below ``acc * ||a||_F`` (relative) or ``acc``
    (absolute). Since ``||.||_F >= ||.||_2``, the spectral-norm accuracy
    contract of :func:`svd_compress` is met (often with a slightly larger
    rank, which :func:`recompress` can shave off later).

    Raises
    ------
    CompressionError
        If ``max_rank`` crosses do not reach the target accuracy.
    """
    rule = rule or get_config().truncation
    m, n = a.shape
    limit = min(m, n) if max_rank is None else min(max_rank, min(m, n))
    norm_a = float(np.linalg.norm(a))
    target = acc * norm_a if rule == "relative" else acc
    if rule not in ("relative", "absolute"):
        raise ShapeError(f"unknown truncation rule {rule!r}")
    if norm_a == 0.0 or norm_a <= target:
        return LowRank(np.zeros((m, 0)), np.zeros((0, n)))
    residual = np.array(a, dtype=np.float64, copy=True)
    # Squared residual norm, maintained incrementally across rank-1 steps
    # via the standard update identity
    #   ||R - c r||^2 = ||R||^2 - 2 <R, c r>_F + ||c||^2 ||r||^2,
    # with <R, c r>_F = c' (R r') — one BLAS gemv instead of the full
    # O(m n) Frobenius pass the seed recomputed on every step (and again
    # after the loop). The maintained value carries O(k n eps ||a||^2)
    # rounding drift, so it cannot certify thresholds below its drift
    # floor; when it reaches the floor or the target we confirm with one
    # exact pass over the residual — at most one per iteration, and only
    # in the convergence endgame.
    norm2 = norm_a * norm_a
    target2 = target * target
    drift_unit = 16.0 * max(m, n) * float(np.finfo(np.float64).eps) * norm2
    exact = True  # norm2 currently equals the exact squared norm
    us, vs = [], []

    def _finish() -> LowRank:
        u = np.ascontiguousarray(np.column_stack(us))
        v = np.ascontiguousarray(np.vstack(vs))
        return LowRank(u, v)

    for step in range(limit):
        flat = np.argmax(np.abs(residual))
        i, j = divmod(int(flat), n)
        pivot = residual[i, j]
        if pivot == 0.0:
            break
        col = residual[:, j].copy()
        row = residual[i, :] / pivot
        us.append(col)
        vs.append(row)
        cross = float(col @ (residual @ row))
        norm2 = max(0.0, norm2 - 2.0 * cross + float(col @ col) * float(row @ row))
        residual -= np.outer(col, row)
        exact = False
        if norm2 <= max(target2, (step + 1) * drift_unit):
            norm2 = float(np.einsum("ij,ij->", residual, residual))
            exact = True
        if exact and norm2 <= target2:
            return _finish()
    if not exact:
        norm2 = float(np.einsum("ij,ij->", residual, residual))
    if us and norm2 <= target2:
        return _finish()
    raise CompressionError(
        f"ACA did not reach accuracy {acc:g} within rank {limit} "
        f"(residual {math.sqrt(norm2):.3e}, target {target:.3e})"
    )


_METHODS = {"svd": svd_compress, "rsvd": rsvd_compress, "aca": aca_compress}


def compress(
    a: np.ndarray,
    acc: float,
    *,
    method: Optional[str] = None,
    rule: Optional[str] = None,
    **kwargs: object,
) -> LowRank:
    """Compress a dense block with the configured (or given) method."""
    cfg = get_config()
    method = method or cfg.compression_method
    try:
        fn = _METHODS[method]
    except KeyError:
        raise ShapeError(f"unknown compression method {method!r}") from None
    return fn(a, acc, rule=rule, **kwargs)  # type: ignore[operator]


def lr_add(a: LowRank, b: LowRank, *, beta: float = 1.0) -> LowRank:
    """Exact (non-truncated) sum ``a + beta*b`` by factor concatenation.

    The resulting rank is ``a.rank + b.rank``; callers follow up with
    :func:`recompress` to restore the accuracy-bounded rank.
    """
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch {a.shape} vs {b.shape}")
    if b.rank == 0:
        return a.copy()
    if a.rank == 0:
        return LowRank(beta * b.u, b.v.copy())
    u = np.hstack([a.u, beta * b.u])
    v = np.vstack([a.v, b.v])
    return LowRank(u, v)


def recompress(block: LowRank, acc: float, *, rule: Optional[str] = None) -> LowRank:
    """QR+SVD rounding of a low-rank block to accuracy ``acc``.

    Computes thin QRs of both factors, the SVD of the small
    ``R_u @ R_v^T`` core, and truncates — the standard ``O((m+n)k^2 + k^3)``
    rounding that keeps TLR GEMM updates from inflating ranks.
    """
    rule = rule or get_config().truncation
    k = block.rank
    if k == 0:
        return block.copy()
    qu, ru = sla.qr(block.u, mode="economic", check_finite=False)
    qv, rv = sla.qr(block.v.T, mode="economic", check_finite=False)
    core = ru @ rv.T
    uc, s, vct = sla.svd(core, full_matrices=False, check_finite=False)
    knew = truncation_rank(s, acc, rule)
    u = qu @ (uc[:, :knew] * s[:knew])
    v = (qv @ vct[:knew].T).T
    return LowRank(np.ascontiguousarray(u), np.ascontiguousarray(v))
