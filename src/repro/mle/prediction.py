"""Kriging prediction of unknown measurements (paper §III, eqs. (2)-(4)).

With known observations ``Z2`` at ``n`` locations and ``m`` target
locations, the conditional mean under the fitted Gaussian model is

    Z1_hat = Sigma_12 Sigma_22^{-1} Z2                      (eq. 4)

computed — exactly as the paper describes — through the Cholesky factor
of ``Sigma_22`` followed by forward/backward substitutions. The dominant
cost is the factorization (``m`` is small, e.g. 100), which is why the
paper's Figure 5 prediction curves mirror the Figure 4 MLE curves.

The TLR variant factorizes ``Sigma_22`` in TLR form; ``Sigma_12`` stays
dense (it is ``m x n`` with small ``m``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import get_config
from ..exceptions import ConfigurationError
from ..kernels.covariance import CovarianceModel
from ..kernels.distance import pairwise_distance
from ..linalg.blocklapack import block_cholesky, block_cholesky_solve
from ..linalg.tile_cholesky import tile_cholesky
from ..linalg.tile_matrix import TileMatrix
from ..linalg.tile_solve import tile_cholesky_solve
from ..linalg.tlr_cholesky import tlr_cholesky
from ..linalg.tlr_matrix import TLRMatrix
from ..linalg.tlr_solve import tlr_cholesky_solve
from ..runtime import Runtime
from ..utils.validation import as_float_array, check_locations, check_vector

__all__ = ["predict", "conditional_variance"]


def _solve_sigma22(
    locations: np.ndarray,
    z: np.ndarray,
    model: CovarianceModel,
    variant: str,
    acc: Optional[float],
    tile_size: Optional[int],
    runtime: Optional[Runtime],
    compression_method: Optional[str],
) -> np.ndarray:
    """Compute ``Sigma_22^{-1} z`` with the requested substrate."""
    cfg = get_config()
    n = locations.shape[0]
    nb = cfg.tile_size if tile_size is None else int(tile_size)
    if variant == "full-block":
        sigma = model.matrix(locations)
        factor = block_cholesky(sigma, overwrite=True)
        return np.asarray(block_cholesky_solve(factor, z))
    if variant == "full-tile":
        tiles = TileMatrix.from_generator(
            n, nb, lambda rs, cs: model.tile(locations, rs, cs), symmetric_lower=True
        )
        tile_cholesky(tiles, runtime=runtime)
        return tile_cholesky_solve(tiles, z)
    if variant == "tlr":
        tlr = TLRMatrix.from_generator(
            n,
            nb,
            lambda rs, cs: model.tile(locations, rs, cs),
            acc=cfg.tlr_accuracy if acc is None else acc,
            method=compression_method,
        )
        tlr_cholesky(tlr, runtime=runtime)
        return tlr_cholesky_solve(tlr, z)
    raise ConfigurationError(f"unknown prediction variant {variant!r}")


def predict(
    locations: np.ndarray,
    z: np.ndarray,
    new_locations: np.ndarray,
    model: CovarianceModel,
    *,
    variant: str = "full-block",
    acc: Optional[float] = None,
    tile_size: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    compression_method: Optional[str] = None,
) -> np.ndarray:
    """Conditional-mean prediction ``Z1 = Sigma_12 Sigma_22^{-1} Z2``.

    Parameters
    ----------
    locations:
        ``(n, d)`` observed locations.
    z:
        ``(n,)`` observed values (zero-mean).
    new_locations:
        ``(m, d)`` prediction targets.
    model:
        Fitted covariance model (defines both ``Sigma_22`` and
        ``Sigma_12``).
    variant, acc, tile_size, runtime, compression_method:
        Substrate controls, as in
        :class:`~repro.mle.loglik.LikelihoodEvaluator`.

    Returns
    -------
    ``(m,)`` predicted values.
    """
    x = check_locations(locations, "locations")
    z = check_vector(as_float_array(z, "z"), x.shape[0], "z")
    xnew = check_locations(new_locations, "new_locations")
    alpha = _solve_sigma22(x, z, model, variant, acc, tile_size, runtime, compression_method)
    d12 = pairwise_distance(xnew, x, metric=model.metric)
    sigma12 = model(d12)
    return sigma12 @ alpha


def conditional_variance(
    locations: np.ndarray,
    new_locations: np.ndarray,
    model: CovarianceModel,
) -> np.ndarray:
    """Diagonal of the conditional covariance (eq. (3)), dense substrate.

    ``diag(Sigma_11 - Sigma_12 Sigma_22^{-1} Sigma_21)`` — the pointwise
    kriging variance. Exposed for the examples' uncertainty maps; the
    paper's evaluation uses only the conditional mean.
    """
    x = check_locations(locations, "locations")
    xnew = check_locations(new_locations, "new_locations")
    sigma22 = model.matrix(x)
    factor = block_cholesky(sigma22, overwrite=True)
    d12 = pairwise_distance(xnew, x, metric=model.metric)
    sigma12 = model(d12)
    import scipy.linalg as sla

    half = sla.solve_triangular(factor, sigma12.T, lower=True, check_finite=False)
    var_marginal = float(model(np.zeros(1))[0]) + model.nugget
    reduction = np.einsum("ij,ij->j", half, half)
    return np.maximum(var_marginal - reduction, 0.0)
