#!/usr/bin/env python
"""Transport benchmark: JSON text vs the framed binary wire format.

Measures, for predict-request payloads of ~1e3 / 1e5 / 1e6 targets and
two workloads:

* ``grid`` — targets on a regular map grid, the bulk kriging-output
  workload (the paper predicts fields to plot): structured coordinates
  deflate inside the binary framing, and the wire shrinks 10x+ vs
  JSON;
* ``irregular`` — random scattered targets: incompressible mantissas
  ship raw, showing the repr-floor ratio (~2.7x: 8 binary bytes vs
  ~21 JSON text bytes per float64).

Reported per size and workload:

* **wire bytes** on each transport, with the JSON/binary ratio;
* **encode + decode seconds** — the codec round-trip each side pays
  per request, and the JSON/binary speedup;

plus:

* **streamed-decode peak memory** — ``tracemalloc`` peak while
  :func:`repro.serving.wire.read_message` decodes the million-target
  incompressible message incrementally into its one preallocated
  array: the "never materialized twice" contract, asserted as
  peak < 2x the payload;
* a small **end-to-end leg** — one live server, the same predict over
  both transports (bit-identical), with client-side latency.

Results go to ``BENCH_transport.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_transport.py
    PYTHONPATH=src python benchmarks/bench_transport.py --sizes 1000 100000

or through the benchmark suite (same sizes, correctness asserts):

    PYTHONPATH=src python -m pytest benchmarks/bench_transport.py -q
"""

from __future__ import annotations

import argparse
import io
import json
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.kernels import MaternCovariance
from repro.serving import ModelBundle, ServingClient, ServingServer, wire

DEFAULT_SIZES = (1_000, 100_000, 1_000_000)


def _irregular_targets(m: int, seed: int = 0) -> np.ndarray:
    return np.ascontiguousarray(np.random.default_rng(seed).random((m, 2)))


def _grid_targets(m: int) -> np.ndarray:
    """A k x k regular map grid with k*k ~ m (the kriging-a-map workload)."""
    k = max(2, int(round(m ** 0.5)))
    xs = np.linspace(0.0, 1.0, k)
    gx, gy = np.meshgrid(xs, xs, indexing="ij")
    return np.column_stack([gx.ravel(), gy.ravel()])


def _targets_for(workload: str, m: int, seed: int = 0) -> np.ndarray:
    return _grid_targets(m) if workload == "grid" else _irregular_targets(m, seed)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_codec(workload: str, m: int, repeats: int = 3) -> dict:
    """Encode + decode one predict request on each transport."""
    targets = _targets_for(workload, m)
    meta = {"model_id": "bench"}
    repeats = max(1, repeats if m < 500_000 else 1)

    json_blob = json.dumps(
        {"model_id": "bench", "targets": targets.tolist()}, allow_nan=False
    ).encode("utf-8")
    json_encode = _best_of(
        lambda: json.dumps(
            {"model_id": "bench", "targets": targets.tolist()}, allow_nan=False
        ).encode("utf-8"),
        repeats,
    )
    json_decode = _best_of(
        lambda: np.asarray(json.loads(json_blob)["targets"], dtype=np.float64),
        repeats,
    )

    arrays = {"targets": targets}
    binary_blob = wire.encode_message(meta, arrays)
    binary_encode = _best_of(lambda: wire.encode_message(meta, arrays), repeats)
    binary_decode = _best_of(
        lambda: wire.read_message(io.BytesIO(binary_blob).read), repeats
    )
    assert wire.encoded_length(meta, arrays) == len(binary_blob)
    decoded = wire.read_message(io.BytesIO(binary_blob).read)[1]["targets"]
    np.testing.assert_array_equal(decoded, targets)  # bit-exact, always

    json_total = json_encode + json_decode
    binary_total = binary_encode + binary_decode
    return {
        "workload": workload,
        "m_targets": int(len(targets)),
        "payload_bytes": int(targets.nbytes),
        "json": {
            "wire_bytes": len(json_blob),
            "encode_seconds": json_encode,
            "decode_seconds": json_decode,
        },
        "binary": {
            "wire_bytes": len(binary_blob),
            "encode_seconds": binary_encode,
            "decode_seconds": binary_decode,
        },
        "wire_size_ratio_json_over_binary": len(json_blob) / len(binary_blob),
        "codec_speedup_json_over_binary": json_total / max(1e-12, binary_total),
    }


def bench_streamed_decode_memory(m: int) -> dict:
    """Peak extra memory while the streamed decoder ingests ``m``
    incompressible (raw-on-the-wire) targets.

    The source blob exists before tracing starts, so the traced peak is
    what decoding itself allocates: the one preallocated output array
    plus bounded chunk scratch — by contract < 2x the payload.
    """
    targets = _irregular_targets(m, seed=1)
    blob = wire.encode_message({"model_id": "bench"}, {"targets": targets})
    stream = io.BytesIO(blob)
    tracemalloc.start()
    try:
        _, arrays = wire.read_message(stream.read)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    np.testing.assert_array_equal(arrays["targets"], targets)
    return {
        "m_targets": m,
        "payload_bytes": int(targets.nbytes),
        "decode_peak_bytes": int(peak),
        "peak_over_payload": peak / targets.nbytes,
    }


def bench_e2e(sizes: Sequence[int], n: int = 144, tile_size: int = 36) -> List[dict]:
    """One live server; the same predict over both transports."""
    locs = generate_irregular_grid(n, seed=0)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(model=model, locations=locs, z=z,
                         variant="full-block", tile_size=tile_size)
    bundle.factor = bundle.build_engine().factor()
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        path = bundle.save(Path(tmp) / "bench.bundle")
        with ServingServer({"bench": path}, num_workers=1) as server:
            with ServingClient(server.url) as cj, \
                 ServingClient(server.url, transport="binary") as cb:
                cj.predict("bench", _irregular_targets(8))  # cold load, off the clock
                for workload in ("grid", "irregular"):
                    for m in sizes:
                        targets = _targets_for(workload, m, seed=2)
                        t0 = time.perf_counter()
                        via_json = cj.predict("bench", targets)
                        json_s = time.perf_counter() - t0
                        t0 = time.perf_counter()
                        via_binary = cb.predict("bench", targets)
                        binary_s = time.perf_counter() - t0
                        np.testing.assert_array_equal(via_binary, via_json)
                        results.append({
                            "workload": workload,
                            "m_targets": int(len(targets)),
                            "json_seconds": json_s,
                            "binary_seconds": binary_s,
                            "e2e_speedup_json_over_binary": (
                                json_s / max(1e-12, binary_s)
                            ),
                            "bit_identical": True,
                        })
    return results


def run_bench(
    sizes: Sequence[int] = DEFAULT_SIZES,
    e2e_sizes: Sequence[int] = (1_000, 20_000),
    memory_size: int = 1_000_000,
) -> dict:
    codec = [bench_codec(w, m) for w in ("grid", "irregular") for m in sizes]
    memory = bench_streamed_decode_memory(memory_size)
    e2e = bench_e2e(e2e_sizes)

    def _min_over(workload, key):
        rows = [r[key] for r in codec
                if r["workload"] == workload and r["m_targets"] >= 100_000]
        return min(rows) if rows else None

    summary = {
        "sizes": list(sizes),
        # The headline: the kriging-a-map workload at scale.
        "grid_min_wire_ratio_at_1e5_plus": _min_over(
            "grid", "wire_size_ratio_json_over_binary"
        ),
        "grid_min_codec_speedup_at_1e5_plus": _min_over(
            "grid", "codec_speedup_json_over_binary"
        ),
        # The floor: incompressible floats still beat text by ~2.7x.
        "irregular_min_wire_ratio_at_1e5_plus": _min_over(
            "irregular", "wire_size_ratio_json_over_binary"
        ),
        "irregular_min_codec_speedup_at_1e5_plus": _min_over(
            "irregular", "codec_speedup_json_over_binary"
        ),
        "streamed_decode_peak_over_payload": memory["peak_over_payload"],
    }
    return {"summary": summary, "codec": codec, "streamed_decode_memory": memory,
            "e2e": e2e}


def write_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the report JSON (default: ``results/BENCH_transport.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_transport.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_transport(outdir):
    """Benchmark-suite entry: the PR's transport acceptance numbers."""
    report = run_bench()
    s = report["summary"]
    # >= 5x smaller on the wire at 1e5+ targets for the map-grid
    # workload; the incompressible floor still beats JSON by > 2x.
    assert s["grid_min_wire_ratio_at_1e5_plus"] >= 5.0
    assert s["irregular_min_wire_ratio_at_1e5_plus"] > 2.0
    # A measurable encode+decode speedup at scale on both workloads.
    assert s["grid_min_codec_speedup_at_1e5_plus"] > 1.0
    assert s["irregular_min_codec_speedup_at_1e5_plus"] > 1.0
    # Streamed decode never materializes the payload twice.
    assert s["streamed_decode_peak_over_payload"] < 2.0
    for row in report["e2e"]:
        assert row["bit_identical"]
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
                        help="codec benchmark sizes (targets per request)")
    parser.add_argument("--e2e-sizes", type=int, nargs="+", default=[1_000, 20_000],
                        help="end-to-end benchmark sizes")
    parser.add_argument("--memory-size", type=int, default=1_000_000,
                        help="streamed-decode memory probe size")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(args.sizes, args.e2e_sizes, args.memory_size)
    path = write_report(report, args.out)
    print(f"wrote {path}")
    for row in report["codec"]:
        j, b = row["json"], row["binary"]
        print(
            f"  {row['workload']:>9} m={row['m_targets']:>9,}: "
            f"wire {j['wire_bytes']:>11,} -> {b['wire_bytes']:>11,} B "
            f"({row['wire_size_ratio_json_over_binary']:5.1f}x), codec "
            f"{1e3 * (j['encode_seconds'] + j['decode_seconds']):8.1f} -> "
            f"{1e3 * (b['encode_seconds'] + b['decode_seconds']):7.1f} ms "
            f"({row['codec_speedup_json_over_binary']:.1f}x)"
        )
    mem = report["streamed_decode_memory"]
    print(
        f"streamed decode of {mem['m_targets']:,} targets: peak "
        f"{mem['decode_peak_bytes'] / 1e6:.1f} MB over a "
        f"{mem['payload_bytes'] / 1e6:.1f} MB payload "
        f"({mem['peak_over_payload']:.2f}x)"
    )
    for row in report["e2e"]:
        print(
            f"  e2e {row['workload']:>9} m={row['m_targets']:>7,}: "
            f"JSON {1e3 * row['json_seconds']:7.1f} ms, "
            f"binary {1e3 * row['binary_seconds']:7.1f} ms "
            f"({row['e2e_speedup_json_over_binary']:.1f}x), bit-identical"
        )


if __name__ == "__main__":
    main()
