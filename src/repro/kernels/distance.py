"""Distance metrics between spatial locations (paper §IV).

Two metrics are used by the paper:

* **Euclidean distance** for synthetic locations on the unit square;
* **Great-Circle Distance (GCD)** via the haversine formula (paper
  eq. (6)) for real datasets indexed by longitude/latitude on a sphere.

Both are implemented as fully vectorized pairwise-matrix builders; the
Euclidean path uses the expanded-square identity (one GEMM plus two
row/column norms) rather than an ``O(n^2 d)`` Python loop, following the
"vectorize, and lean on BLAS" idiom of the HPC guides. A chunked variant
keeps peak memory bounded when only tiles of the matrix are needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import check_locations

__all__ = [
    "euclidean_distance_matrix",
    "haversine",
    "great_circle_distance_matrix",
    "pairwise_distance",
    "pairwise_distance_block",
    "METRICS",
]

#: Mean Earth radius in kilometres (used when ``unit="km"``).
EARTH_RADIUS_KM = 6371.0088


def euclidean_distance_matrix(x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``x`` and ``y``.

    Parameters
    ----------
    x:
        ``(n, d)`` array of locations.
    y:
        ``(m, d)`` array; defaults to ``x`` (symmetric case).

    Returns
    -------
    ``(n, m)`` distance matrix.

    Notes
    -----
    Uses ``||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` so the inner work is a
    single BLAS GEMM. Tiny negative values from cancellation are clipped
    before the square root, and the self-distance diagonal is forced to
    exactly zero in the symmetric case.
    """
    x = check_locations(x, "x")
    symmetric = y is None
    y_arr = x if symmetric else check_locations(y, "y")
    if x.shape[1] != y_arr.shape[1]:
        raise ShapeError(
            f"x and y must share dimensionality, got {x.shape[1]} and {y_arr.shape[1]}"
        )
    xx = np.einsum("ij,ij->i", x, x)
    yy = xx if symmetric else np.einsum("ij,ij->i", y_arr, y_arr)
    sq = xx[:, None] + yy[None, :] - 2.0 * (x @ y_arr.T)
    np.maximum(sq, 0.0, out=sq)
    d = np.sqrt(sq, out=sq)
    if symmetric:
        np.fill_diagonal(d, 0.0)
    return d


def haversine(
    lon1: np.ndarray,
    lat1: np.ndarray,
    lon2: np.ndarray,
    lat2: np.ndarray,
    *,
    unit: str = "deg",
) -> np.ndarray:
    """Great-circle distance via the haversine formula (paper eq. (6)).

    Parameters
    ----------
    lon1, lat1, lon2, lat2:
        Coordinates in **degrees**; broadcast against each other.
    unit:
        ``"deg"`` returns the central angle in degrees (the unit system in
        which the paper's Table I/II range parameters live, given the
        stated "one degree is approximately 87.5 km" calibration);
        ``"rad"`` returns radians; ``"km"`` multiplies by the mean Earth
        radius.

    Returns
    -------
    Array of distances, broadcast shape of the inputs.
    """
    lam1, phi1, lam2, phi2 = (np.radians(np.asarray(a, dtype=np.float64)) for a in (lon1, lat1, lon2, lat2))
    dphi = phi2 - phi1
    dlam = lam2 - lam1
    h = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    # Guard against rounding pushing h a hair outside [0, 1].
    h = np.clip(h, 0.0, 1.0)
    central = 2.0 * np.arcsin(np.sqrt(h))
    if unit == "rad":
        return central
    if unit == "deg":
        return np.degrees(central)
    if unit == "km":
        return EARTH_RADIUS_KM * central
    raise ShapeError(f"unknown unit {unit!r}; expected 'deg', 'rad' or 'km'")


def great_circle_distance_matrix(
    x: np.ndarray, y: Optional[np.ndarray] = None, *, unit: str = "deg"
) -> np.ndarray:
    """Pairwise great-circle distances between ``(lon, lat)`` rows.

    Parameters
    ----------
    x:
        ``(n, 2)`` array of ``(longitude, latitude)`` in degrees.
    y:
        ``(m, 2)`` array; defaults to ``x``.
    unit:
        Passed through to :func:`haversine`.
    """
    x = check_locations(x, "x")
    symmetric = y is None
    y_arr = x if symmetric else check_locations(y, "y")
    if x.shape[1] != 2 or y_arr.shape[1] != 2:
        raise ShapeError("great-circle metric requires (lon, lat) pairs")
    d = haversine(
        x[:, 0][:, None], x[:, 1][:, None], y_arr[None, :, 0], y_arr[None, :, 1], unit=unit
    )
    if symmetric:
        np.fill_diagonal(d, 0.0)
    return d


#: Registry of metric name -> pairwise matrix builder.
METRICS = {
    "euclidean": euclidean_distance_matrix,
    "gcd": great_circle_distance_matrix,
    "great_circle": great_circle_distance_matrix,
}


def pairwise_distance(
    x: np.ndarray,
    y: Optional[np.ndarray] = None,
    *,
    metric: str = "euclidean",
) -> np.ndarray:
    """Dispatch to a registered pairwise distance builder.

    Parameters
    ----------
    metric:
        One of ``"euclidean"``, ``"gcd"``/``"great_circle"``.
    """
    try:
        fn = METRICS[metric]
    except KeyError:
        raise ShapeError(f"unknown metric {metric!r}; expected one of {sorted(METRICS)}") from None
    return fn(x, y)


def pairwise_distance_block(
    x: np.ndarray,
    rows: slice,
    cols: slice,
    y: Optional[np.ndarray] = None,
    *,
    metric: str = "euclidean",
) -> np.ndarray:
    """Distance block between ``x[rows]`` and ``y[cols]`` (``y`` defaults to ``x``).

    The single code path used both for on-demand tile generation
    (:meth:`repro.kernels.covariance.CovarianceModel.tile`) and for the
    per-fit distance cache
    (:class:`repro.linalg.generation.TileDistanceCache`), so cached and
    direct generation produce bit-identical blocks.

    Both operands are passed explicitly (never the ``y=None`` symmetric
    fast path), matching the historical per-tile behaviour even for
    diagonal blocks.
    """
    y_arr = x if y is None else y
    return pairwise_distance(x[rows], y_arr[cols], metric=metric)
