"""End-to-end coverage of ``GET /v1/plan`` over real HTTP.

One module-scoped server is booted with a *saved* calibration profile
(the deployment shape: calibrate once offline, serve plans from the
persisted constants). Tests drive the route through
:meth:`ServingClient.plan` and raw ``urllib`` to pin the wire contract:
status codes, typed error envelopes, and plan payload structure.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import PlanError
from repro.perfmodel.autotune import autotune
from repro.perfmodel.planner import Planner
from repro.serving import ServingClient, ServingServer


class FakeClock:
    def __init__(self, step: float = 1e-3) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


_HOST = {"hostname": "planhost", "machine": "x86_64", "cpu_count": 8, "mem_gb": 16.0}


@pytest.fixture(scope="module")
def profile():
    return autotune(
        sizes=(32, 48), repeats=1, seed=0, clock=FakeClock(), created=0.0, host=_HOST
    )


@pytest.fixture(scope="module")
def profile_path(profile, tmp_path_factory):
    return profile.save(tmp_path_factory.mktemp("calib") / "profile.json")


@pytest.fixture(scope="module")
def server(profile_path):
    with ServingServer(
        models={}, num_workers=1, calibration_profile=profile_path
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServingClient(server.url)


def _get_raw(server, path):
    try:
        with urllib.request.urlopen(server.url + path) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_plan_round_trip_matches_local_planner(client, profile):
    remote = client.plan(900, substrate="full-tile")
    local = Planner(profile).plan(900, substrate="full-tile").to_dict()
    assert remote["config"] == local["config"]
    assert remote["predicted"]["fit_iteration"]["total_s"] == pytest.approx(
        local["predicted"]["fit_iteration"]["total_s"]
    )
    assert remote["profile"]["host"]["hostname"] == "planhost"


def test_plan_payload_structure(client):
    out = client.plan(600)
    assert set(out["config"]) == {
        "variant",
        "tile_size",
        "accuracy",
        "compression_batch",
        "serving_workers",
        "batch_window",
    }
    phases = out["predicted"]["fit_iteration"]["phases"]
    assert out["predicted"]["fit_iteration"]["total_s"] == pytest.approx(
        sum(phases.values())
    )
    assert out["memory"]["mem_bytes"] >= out["memory"]["matrix_bytes"] > 0
    assert out["search"]["candidates"]


def test_plan_substrate_and_accuracy_query_params(client):
    out = client.plan(600, substrate="tlr", accuracy=1e-5)
    assert out["config"]["variant"] == "tlr"
    assert out["config"]["accuracy"] == pytest.approx(1e-5)


def test_plan_m_defaults_and_overrides(server):
    status, dflt = _get_raw(server, "/v1/plan?n=600")
    assert status == 200 and dflt["m"] == 100
    status, big = _get_raw(server, "/v1/plan?n=600&m=500")
    assert status == 200 and big["m"] == 500
    assert (
        big["predicted"]["predict"]["total_s"]
        > dflt["predicted"]["predict"]["total_s"]
    )


def test_missing_n_is_typed_400(server):
    status, body = _get_raw(server, "/v1/plan")
    assert status == 400
    assert body["error"]["type"] == "PlanError"
    assert "n" in body["error"]["message"]


def test_malformed_params_are_typed_400(server):
    for query in ("n=abc", "n=600&m=xyz", "n=600&accuracy=huge", "n=600&substrate=q"):
        status, body = _get_raw(server, f"/v1/plan?{query}")
        assert status == 400, query
        assert body["error"]["type"] == "PlanError"


def test_client_raises_typed_plan_error(client):
    with pytest.raises(PlanError):
        client.plan(1)


def test_subpath_is_404_not_plan(server):
    status, body = _get_raw(server, "/v1/plan/extra?n=600")
    assert status == 404


def test_plan_works_mid_traffic_router_side(server, client):
    """Planning must not require a worker round-trip: it answers even
    while the only worker is busy with nothing registered."""
    out = client.plan(700)
    assert out["n"] == 700
    health = client._request("GET", "/healthz")
    assert health["workers"] == 1
