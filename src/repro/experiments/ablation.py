"""Ablation studies for the design choices DESIGN.md calls out.

* **Tile size** (§VIII-C): the paper tunes nb=560 for dense and nb=1900
  for TLR — TLR kernels have low arithmetic intensity and need larger
  tiles. :func:`tile_size_sweep` measures factorization time vs nb on
  the host, and models it at paper scale.
* **Compression method** (§V): SVD vs RSVD vs ACA — accuracy contract,
  resulting ranks, and compression time.
* **Morton ordering**: TLR compressibility with and without
  space-filling-curve ordering of the locations.
* **Scheduler policy**: runtime ready-queue policies on the tile
  Cholesky DAG.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.fields import sample_gaussian_field
from ..data.morton import sort_locations
from ..data.synthetic import generate_irregular_grid
from ..kernels.covariance import MaternCovariance
from ..linalg.compression import compress
from ..linalg.tile_matrix import TileMatrix
from ..linalg.tile_cholesky import tile_cholesky
from ..linalg.tlr_cholesky import tlr_cholesky
from ..linalg.tlr_matrix import TLRMatrix
from ..perfmodel.analytic import estimate_mle_iteration
from ..perfmodel.cluster import shaheen2
from ..runtime import Runtime
from ..utils.timer import Stopwatch
from .common import ResultTable, bench_scale

__all__ = [
    "tile_size_sweep",
    "compression_method_study",
    "ordering_study",
    "scheduler_study",
]


def tile_size_sweep(
    *,
    n: Optional[int] = None,
    tile_sizes: Sequence[int] = (50, 100, 200, 400),
    acc: float = 1e-7,
    theta: Sequence[float] = (1.0, 0.1, 0.5),
) -> ResultTable:
    """Measured TLR factorization time vs nb, plus paper-scale model.

    Reproduces the §VIII-C observation that TLR wants much larger tiles
    than the dense variant.
    """
    n = (1600 if bench_scale() == "quick" else 4900) if n is None else n
    model = MaternCovariance(*theta)
    locs = generate_irregular_grid(n, seed=3)
    locs, _, _ = sort_locations(locs)
    table = ResultTable(
        title=f"Ablation — tile size sweep, TLR acc={acc:.0e}, n={n} (measured) "
        "and n=1M on Shaheen-2 256 nodes (modeled)",
        headers=["nb", "measured chol [s]", "mean rank", "modeled 1M chol [s]"],
    )
    cluster = shaheen2(256)
    for nb in tile_sizes:
        if nb >= n:
            continue
        tlr = TLRMatrix.from_generator(n, nb, lambda rs, cs: model.tile(locs, rs, cs), acc=acc)
        mean_rank = tlr.mean_rank()
        sw = Stopwatch()
        with sw:
            tlr_cholesky(tlr)
        scale_nb = max(200, nb * 5)  # model probes a proportional paper-scale nb
        est = estimate_mle_iteration(
            1_000_000, variant="tlr", nb=scale_nb, acc=acc, cluster=cluster
        )
        table.add_row(nb, sw.elapsed, round(mean_rank, 1), est.breakdown["factorization"])
    table.add_note("paper: nb=560 (dense) vs nb=1900 (TLR) on Shaheen-2")
    return table


def compression_method_study(
    *,
    nb: int = 200,
    acc: float = 1e-7,
    theta: Sequence[float] = (1.0, 0.1, 0.5),
    seed: int = 5,
) -> ResultTable:
    """SVD vs RSVD vs ACA on representative near/far covariance tiles."""
    n = 4 * nb
    locs = generate_irregular_grid(n, seed=seed)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(*theta)
    table = ResultTable(
        title=f"Ablation — compression methods on {nb}x{nb} Matérn tiles, acc={acc:.0e}",
        headers=["tile", "method", "rank", "rel. error", "time [ms]"],
    )
    tiles = {
        "near (d=1)": model.tile(locs, slice(0, nb), slice(nb, 2 * nb)),
        "far (d=3)": model.tile(locs, slice(0, nb), slice(3 * nb, 4 * nb)),
    }
    for tname, dense in tiles.items():
        norm = np.linalg.norm(dense)
        for method in ("svd", "rsvd", "aca"):
            sw = Stopwatch()
            with sw:
                lr = compress(dense, acc, method=method)
            err = float(np.linalg.norm(dense - lr.to_dense()) / norm)
            table.add_row(tname, method, lr.rank, err, sw.elapsed * 1e3)
    table.add_note("all methods must satisfy the accuracy contract; ranks/time differ")
    return table


def ordering_study(
    *,
    n: Optional[int] = None,
    nb: int = 128,
    acc: float = 1e-7,
    theta: Sequence[float] = (1.0, 0.1, 0.5),
) -> ResultTable:
    """TLR compressibility with vs without Morton ordering of locations."""
    n = (1024 if bench_scale() == "quick" else 4096) if n is None else n
    model = MaternCovariance(*theta)
    locs = generate_irregular_grid(n, seed=7)
    variants = {
        "morton": sort_locations(locs)[0],
        "natural (row-major grid)": locs,
        "random permutation": locs[np.random.default_rng(0).permutation(n)],
    }
    table = ResultTable(
        title=f"Ablation — location ordering vs TLR compressibility (n={n}, nb={nb}, acc={acc:.0e})",
        headers=["ordering", "max rank", "mean rank", "TLR MB", "compression ratio"],
    )
    for name, pts in variants.items():
        tlr = TLRMatrix.from_generator(n, nb, lambda rs, cs: model.tile(pts, rs, cs), acc=acc)
        table.add_row(
            name,
            tlr.max_rank(),
            round(tlr.mean_rank(), 1),
            round(tlr.nbytes / 1e6, 3),
            round(tlr.compression_ratio(), 2),
        )
    table.add_note("ExaGeoStat Morton-orders locations so tile separation tracks distance")
    return table


def scheduler_study(
    *,
    n: Optional[int] = None,
    nb: int = 128,
    policies: Sequence[str] = ("fifo", "lifo", "priority"),
    num_workers: Optional[int] = None,
    theta: Sequence[float] = (1.0, 0.1, 0.5),
) -> ResultTable:
    """Dense tile Cholesky wall-clock under different ready-queue policies."""
    n = (1600 if bench_scale() == "quick" else 4096) if n is None else n
    model = MaternCovariance(*theta)
    locs = generate_irregular_grid(n, seed=9)
    locs, _, _ = sort_locations(locs)
    sigma = model.matrix(locs)
    table = ResultTable(
        title=f"Ablation — runtime scheduler policy, dense tile Cholesky (n={n}, nb={nb})",
        headers=["policy", "wall [s]", "utilization", "tasks"],
    )
    for policy in policies:
        tiles = TileMatrix.from_dense(sigma, nb, symmetric_lower=True)
        with Runtime(num_workers=num_workers, scheduler=policy, trace=True) as rt:
            sw = Stopwatch()
            with sw:
                tile_cholesky(tiles, runtime=rt)
            trace = rt.trace
            assert trace is not None
            util = trace.utilization(rt.num_workers)
            n_tasks = len(trace.events)
        table.add_row(policy, sw.elapsed, round(util, 3), n_tasks)
    table.add_note("priority = panel-first (Chameleon's look-ahead heuristic)")
    return table
