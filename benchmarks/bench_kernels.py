"""Micro-benchmarks of the computational kernels.

Covers the per-call building blocks whose costs the performance model
aggregates: covariance generation (Matérn with Bessel evaluation),
pairwise distances, dense vs TLR Cholesky, and triangular solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sort_locations
from repro.experiments.common import bench_scale
from repro.kernels import MaternCovariance
from repro.kernels.distance import euclidean_distance_matrix, great_circle_distance_matrix
from repro.kernels.matern import matern_correlation
from repro.linalg import (
    TLRMatrix,
    TileMatrix,
    block_cholesky,
    tile_cholesky,
    tlr_cholesky,
    tlr_cholesky_solve,
)


@pytest.fixture(scope="module")
def problem():
    n = 1600 if bench_scale() == "quick" else 4096
    locs = generate_irregular_grid(n, seed=0)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    sigma = model.matrix(locs)
    return n, locs, model, sigma


def test_bench_matern_general_nu(benchmark):
    """Matérn with Bessel-K evaluation on 1M distances."""
    r = np.linspace(0.0, 2.0, 1_000_000)
    out = benchmark(matern_correlation, r, 0.1, 0.7)
    assert out.shape == r.shape


def test_bench_matern_exponential_fastpath(benchmark):
    """Matérn ν=1/2 closed form on 1M distances."""
    r = np.linspace(0.0, 2.0, 1_000_000)
    out = benchmark(matern_correlation, r, 0.1, 0.5)
    assert out.shape == r.shape


def test_bench_euclidean_distance(benchmark, problem):
    n, locs, _, _ = problem
    d = benchmark(euclidean_distance_matrix, locs)
    assert d.shape == (n, n)


def test_bench_great_circle_distance(benchmark):
    rng = np.random.default_rng(0)
    pts = np.column_stack([rng.uniform(-95, -80, 1000), rng.uniform(30, 41, 1000)])
    d = benchmark(great_circle_distance_matrix, pts)
    assert d.shape == (1000, 1000)


def test_bench_block_cholesky(benchmark, problem):
    _, _, _, sigma = problem
    L = benchmark(block_cholesky, sigma.copy())
    assert L.shape == sigma.shape


def test_bench_tile_cholesky_serial(benchmark, problem):
    _, _, _, sigma = problem

    def run():
        tm = TileMatrix.from_dense(sigma, 200, symmetric_lower=True)
        return tile_cholesky(tm)

    tm = benchmark(run)
    assert tm.nt >= 2


def test_bench_tlr_cholesky(benchmark, problem):
    n, locs, model, _ = problem

    def run():
        tlr = TLRMatrix.from_generator(
            n, 200, lambda rs, cs: model.tile(locs, rs, cs), acc=1e-7
        )
        return tlr_cholesky(tlr)

    tlr = benchmark.pedantic(run, rounds=2, iterations=1)
    assert tlr.max_rank() > 0


def test_bench_tlr_solve(benchmark, problem):
    n, locs, model, sigma = problem
    tlr = TLRMatrix.from_generator(
        n, 200, lambda rs, cs: model.tile(locs, rs, cs), acc=1e-9
    )
    tlr_cholesky(tlr)
    b = np.ones(n)
    x = benchmark(tlr_cholesky_solve, tlr, b)
    assert np.abs(sigma @ x - b).max() < 1e-4
