"""Tests for TileGrid index arithmetic and TileMatrix storage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.linalg.tile_matrix import TileGrid, TileMatrix


class TestTileGrid:
    def test_even_division(self):
        g = TileGrid(100, 25)
        assert g.nt == 4
        assert [g.tile_size(i) for i in range(4)] == [25, 25, 25, 25]
        assert g.tile_slice(2) == slice(50, 75)

    def test_ragged_last_tile(self):
        g = TileGrid(103, 25)
        assert g.nt == 5
        assert g.tile_size(4) == 3
        assert g.tile_slice(4) == slice(100, 103)

    def test_single_tile(self):
        g = TileGrid(10, 64)
        assert g.nt == 1
        assert g.tile_size(0) == 10

    def test_index_bounds(self):
        g = TileGrid(10, 5)
        with pytest.raises(ShapeError):
            g.tile_size(2)
        with pytest.raises(ShapeError):
            g.offset(-1)

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            TileGrid(0, 5)
        with pytest.raises(ShapeError):
            TileGrid(5, 0)

    def test_partition_returns_copies(self, rng):
        g = TileGrid(20, 7)
        x = rng.random(20)
        blocks = g.partition(x)
        blocks[0][:] = -99.0
        assert x[0] != -99.0  # caller's array untouched

    def test_partition_unpartition_roundtrip(self, rng):
        g = TileGrid(23, 5)
        x = rng.random((23, 3))
        np.testing.assert_array_equal(g.unpartition(g.partition(x)), x)

    def test_partition_wrong_length(self, rng):
        g = TileGrid(10, 5)
        with pytest.raises(ShapeError):
            g.partition(rng.random(11))
        with pytest.raises(ShapeError):
            g.unpartition([rng.random(5)])

    @given(st.integers(1, 200), st.integers(1, 50))
    def test_property_sizes_sum_to_n(self, n, nb):
        g = TileGrid(n, nb)
        assert sum(g.tile_size(i) for i in range(g.nt)) == n


class TestTileMatrix:
    def test_from_dense_roundtrip(self, rng):
        a = rng.random((37, 37))
        tm = TileMatrix.from_dense(a, 10)
        np.testing.assert_allclose(tm.to_dense(), a, atol=1e-15)
        assert tm.nbytes == a.nbytes

    def test_symmetric_lower_storage(self, rng):
        x = rng.random((30, 30))
        a = x @ x.T
        tm = TileMatrix.from_dense(a, 8, symmetric_lower=True)
        # Upper tiles are not stored but are reachable via the mirror.
        assert not tm.has_tile(0, 1)
        np.testing.assert_allclose(tm.tile(0, 1), a[0:8, 8:16], atol=1e-12)
        np.testing.assert_allclose(tm.to_dense(), a, atol=1e-12)

    def test_set_tile_validation(self, rng):
        tm = TileMatrix(TileGrid(20, 8), symmetric_lower=True)
        with pytest.raises(ShapeError):
            tm.set_tile(0, 1, rng.random((8, 8)))  # upper tile forbidden
        with pytest.raises(ShapeError):
            tm.set_tile(0, 0, rng.random((4, 4)))  # wrong shape

    def test_from_generator_matches_from_dense(self, rng):
        a = rng.random((25, 25))
        tm1 = TileMatrix.from_dense(a, 7)
        tm2 = TileMatrix.from_generator(25, 7, lambda rs, cs: a[rs, cs])
        np.testing.assert_array_equal(tm1.to_dense(), tm2.to_dense())

    def test_from_generator_bad_shape(self):
        with pytest.raises(ShapeError):
            TileMatrix.from_generator(10, 4, lambda rs, cs: np.zeros((1, 1)))

    def test_copy_independent(self, rng):
        a = rng.random((16, 16))
        tm = TileMatrix.from_dense(a, 8)
        dup = tm.copy()
        dup.tile(0, 0)[:] = 0.0
        assert tm.tile(0, 0).max() > 0.0

    def test_iter_stored_lower_count(self, rng):
        a = rng.random((30, 30))
        tm = TileMatrix.from_dense(a + a.T, 10, symmetric_lower=True)
        stored = list(tm.iter_stored())
        assert len(stored) == 6  # nt=3 -> 3 diag + 3 lower

    @given(st.integers(4, 40), st.integers(2, 15))
    def test_property_roundtrip(self, n, nb):
        rng = np.random.default_rng(n * 100 + nb)
        a = rng.random((n, n))
        tm = TileMatrix.from_dense(a, nb)
        np.testing.assert_allclose(tm.to_dense(), a, atol=1e-15)
