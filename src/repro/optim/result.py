"""Result containers for the derivative-free optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple

import numpy as np

__all__ = ["HistoryEntry", "OptimizeResult"]


class HistoryEntry(NamedTuple):
    """One iteration of the optimizer's trajectory.

    Attributes
    ----------
    iteration:
        1-based simplex iteration number.
    theta:
        Best parameter vector at the start of the iteration (a copy).
    fun:
        Objective value at ``theta``.
    """

    iteration: int
    theta: np.ndarray
    fun: float


@dataclass
class OptimizeResult:
    """Outcome of a derivative-free minimization.

    Attributes
    ----------
    x:
        Best parameter vector found.
    fun:
        Objective value at ``x``.
    nfev:
        Number of objective evaluations.
    nit:
        Number of simplex iterations.
    converged:
        True when a tolerance criterion (not the iteration cap) stopped
        the search.
    message:
        Human-readable termination reason.
    history:
        Per-iteration trajectory — :class:`HistoryEntry` records of
        ``(iteration, theta, fun)`` for the best vertex after each
        simplex ordering. This is the optimizer's ``callback`` stream
        materialized on the result, so fit-progress reporting (the
        fitting service's per-iteration log-likelihood trace) needs no
        side channel.
    """

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    converged: bool
    message: str
    history: List[HistoryEntry] = field(default_factory=list)

    @property
    def history_fun(self) -> List[float]:
        """Best objective value after each iteration (convergence curve)."""
        return [entry.fun for entry in self.history]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizeResult(fun={self.fun:.6g}, nfev={self.nfev}, nit={self.nit}, "
            f"converged={self.converged}, x={np.array2string(self.x, precision=5)})"
        )
