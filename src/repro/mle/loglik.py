"""Gaussian log-likelihood evaluators (paper eq. (1)).

One evaluation = generate ``Sigma(theta)`` + Cholesky + half-solve +
log-determinant. The three variants differ only in the linear-algebra
substrate:

* ``full-block`` — dense LAPACK (the paper's MKL baseline);
* ``full-tile``  — dense tile Cholesky, optionally task-parallel;
* ``tlr``        — TLR compression + TLR Cholesky at accuracy ``acc``.

The evaluator records per-stage times (generation / factorization /
solve) and evaluation counts; the benchmark harness reports the paper's
"time of one iteration" from these numbers.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..config import get_config
from ..exceptions import ConfigurationError, NotPositiveDefiniteError
from ..kernels.covariance import CovarianceModel
from ..linalg.blocklapack import (
    block_cholesky,
    block_logdet_from_factor,
)
from ..linalg.tile_cholesky import logdet_from_tile_factor, tile_cholesky
from ..linalg.tile_matrix import TileMatrix
from ..linalg.tile_solve import tile_solve_triangular
from ..linalg.tlr_cholesky import logdet_from_tlr_factor, tlr_cholesky
from ..linalg.tlr_matrix import TLRMatrix
from ..linalg.tlr_solve import tlr_solve_triangular
from ..runtime import Runtime
from ..utils.timer import StageTimes
from ..utils.validation import as_float_array, check_locations, check_vector
import scipy.linalg as sla

__all__ = ["exact_loglikelihood", "LikelihoodEvaluator", "VARIANTS"]

#: Supported computation variants.
VARIANTS = ("full-block", "full-tile", "tlr")

#: Log-likelihood assigned when a trial theta yields a non-SPD covariance
#: (the optimizer treats it as an infinitely bad point and moves on).
PENALTY_LOGLIK = -1e12


def exact_loglikelihood(
    locations: np.ndarray,
    z: np.ndarray,
    model: CovarianceModel,
) -> float:
    """Reference dense evaluation of eq. (1) (used by tests and baselines).

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations.
    z:
        ``(n,)`` observation vector.
    model:
        Covariance model evaluated at its own ``theta``.

    Returns
    -------
    The scalar log-likelihood value.
    """
    x = check_locations(locations, "locations")
    z = check_vector(as_float_array(z, "z"), x.shape[0], "z")
    sigma = model.matrix(x)
    factor = block_cholesky(sigma, overwrite=True)
    half = sla.solve_triangular(factor, z, lower=True, check_finite=False)
    logdet = block_logdet_from_factor(factor)
    n = x.shape[0]
    return float(-0.5 * n * math.log(2.0 * math.pi) - 0.5 * logdet - 0.5 * (half @ half))


class LikelihoodEvaluator:
    """Callable objective ``theta -> loglik`` with a fixed substrate.

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations, already ordered (callers typically
        apply Morton ordering once, outside the optimization loop).
    z:
        ``(n,)`` observations.
    model:
        Template covariance model; each evaluation rebinds ``theta`` via
        ``model.with_theta``.
    variant:
        ``"full-block"``, ``"full-tile"`` or ``"tlr"``.
    acc:
        TLR accuracy threshold (TLR variant only; default configured).
    tile_size:
        Tile size ``nb`` (tile/TLR variants; default configured).
    runtime:
        Optional task runtime shared across evaluations (tile/TLR).
    compression_method:
        Per-tile compressor for the TLR variant.

    Notes
    -----
    A non-positive-definite trial covariance yields the penalty value
    rather than an exception, so the optimizer can continue searching —
    the behaviour of ExaGeoStat's objective wrapper.
    """

    def __init__(
        self,
        locations: np.ndarray,
        z: np.ndarray,
        model: CovarianceModel,
        *,
        variant: str = "full-block",
        acc: Optional[float] = None,
        tile_size: Optional[int] = None,
        runtime: Optional[Runtime] = None,
        compression_method: Optional[str] = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ConfigurationError(f"variant must be one of {VARIANTS}, got {variant!r}")
        cfg = get_config()
        self.locations = check_locations(locations, "locations")
        self.z = check_vector(as_float_array(z, "z"), self.locations.shape[0], "z")
        self.model = model
        self.variant = variant
        self.acc = cfg.tlr_accuracy if acc is None else float(acc)
        self.tile_size = cfg.tile_size if tile_size is None else int(tile_size)
        self.runtime = runtime
        self.compression_method = compression_method or cfg.compression_method
        self.n_evals = 0
        self.n_failures = 0
        self.times = StageTimes()
        self._n = self.locations.shape[0]
        self._const = -0.5 * self._n * math.log(2.0 * math.pi)

    # ------------------------------------------------------------- calls
    def __call__(self, theta: np.ndarray) -> float:
        """Evaluate the log-likelihood at parameter vector ``theta``."""
        model = self.model.with_theta(theta)
        self.n_evals += 1
        try:
            if self.variant == "full-block":
                logdet, quad = self._eval_full_block(model)
            elif self.variant == "full-tile":
                logdet, quad = self._eval_full_tile(model)
            else:
                logdet, quad = self._eval_tlr(model)
        except NotPositiveDefiniteError:
            self.n_failures += 1
            return PENALTY_LOGLIK
        return float(self._const - 0.5 * logdet - 0.5 * quad)

    def negative(self, theta: np.ndarray) -> float:
        """``-loglik(theta)`` for minimizers."""
        return -self(theta)

    # ---------------------------------------------------------- variants
    def _eval_full_block(self, model: CovarianceModel) -> tuple[float, float]:
        with self.times.stage("generation"):
            sigma = model.matrix(self.locations)
        with self.times.stage("factorization"):
            factor = block_cholesky(sigma, overwrite=True)
        with self.times.stage("solve"):
            half = sla.solve_triangular(factor, self.z, lower=True, check_finite=False)
            logdet = block_logdet_from_factor(factor)
        return logdet, float(half @ half)

    def _eval_full_tile(self, model: CovarianceModel) -> tuple[float, float]:
        with self.times.stage("generation"):
            tiles = TileMatrix.from_generator(
                self._n,
                self.tile_size,
                lambda rs, cs: model.tile(self.locations, rs, cs),
                symmetric_lower=True,
            )
        with self.times.stage("factorization"):
            tile_cholesky(tiles, runtime=self.runtime)
        with self.times.stage("solve"):
            half = tile_solve_triangular(tiles, self.z, trans=False)
            logdet = logdet_from_tile_factor(tiles)
        return logdet, float(half @ half)

    def _eval_tlr(self, model: CovarianceModel) -> tuple[float, float]:
        with self.times.stage("generation"):
            tlr = TLRMatrix.from_generator(
                self._n,
                self.tile_size,
                lambda rs, cs: model.tile(self.locations, rs, cs),
                acc=self.acc,
                method=self.compression_method,
            )
        with self.times.stage("factorization"):
            tlr_cholesky(tlr, runtime=self.runtime)
        with self.times.stage("solve"):
            half = tlr_solve_triangular(tlr, self.z, trans=False)
            logdet = logdet_from_tlr_factor(tlr)
        return logdet, float(half @ half)
