"""Tests for Morton (Z-order) ordering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.morton import morton_keys, morton_order, sort_locations


class TestMortonKeys:
    def test_keys_shape_dtype(self, rng):
        pts = rng.random((50, 2))
        keys = morton_keys(pts)
        assert keys.shape == (50,)
        assert keys.dtype == np.int64
        assert np.all(keys >= 0)

    def test_interleaving_exact_small_grid(self):
        # Unit 2x2 grid: Z-order visits (0,0), (1,0), (0,1), (1,1).
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        keys = morton_keys(pts, bits=1)
        assert keys.tolist() == [0, 1, 2, 3]

    def test_1d_and_3d(self, rng):
        k1 = morton_keys(rng.random((20, 1)))
        assert k1.shape == (20,)
        k3 = morton_keys(rng.random((20, 3)), bits=8)
        assert k3.shape == (20,)
        assert np.all(k3 >= 0)

    def test_bits_validation(self, rng):
        with pytest.raises(ValueError):
            morton_keys(rng.random((5, 2)), bits=0)
        with pytest.raises(ValueError):
            morton_keys(rng.random((5, 2)), bits=17)

    def test_degenerate_constant_coordinate(self):
        pts = np.column_stack([np.linspace(0, 1, 10), np.full(10, 0.3)])
        keys = morton_keys(pts)
        # Must not divide by zero; ordering follows the varying coordinate.
        assert np.all(np.diff(keys) >= 0)


class TestMortonOrder:
    def test_is_permutation(self, rng):
        pts = rng.random((64, 2))
        perm = morton_order(pts)
        assert sorted(perm.tolist()) == list(range(64))

    def test_deterministic(self, rng):
        pts = rng.random((64, 2))
        np.testing.assert_array_equal(morton_order(pts), morton_order(pts))

    def test_locality_improves_over_random(self, rng):
        # Mean consecutive-point distance along the curve should beat a
        # random ordering by a wide margin for gridded points.
        from repro.data.synthetic import generate_irregular_grid

        pts = generate_irregular_grid(400, seed=0)
        ordered = pts[morton_order(pts)]
        shuffled = pts[rng.permutation(400)]

        def mean_step(p):
            return float(np.linalg.norm(np.diff(p, axis=0), axis=1).mean())

        assert mean_step(ordered) < 0.5 * mean_step(shuffled)

    @given(
        hnp.arrays(
            np.float64, st.tuples(st.integers(2, 40), st.just(2)), elements=st.floats(0, 1)
        )
    )
    def test_property_valid_permutation(self, pts):
        perm = morton_order(pts)
        assert sorted(perm.tolist()) == list(range(pts.shape[0]))


class TestSortLocations:
    def test_values_follow_points(self, rng):
        pts = rng.random((30, 2))
        vals = rng.random(30)
        spts, svals, perm = sort_locations(pts, vals)
        np.testing.assert_array_equal(spts, pts[perm])
        np.testing.assert_array_equal(svals, vals[perm])

    def test_no_values(self, rng):
        pts = rng.random((30, 2))
        spts, svals, perm = sort_locations(pts)
        assert svals is None
        assert spts.shape == pts.shape
