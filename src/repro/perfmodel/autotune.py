"""Micro-calibration of the analytic performance model on the current host.

The analytic estimators (:mod:`.analytic`) predict phase times from a
:class:`~repro.perfmodel.machine.MachineSpec` — peak rate times a
sustained-efficiency fraction per kernel class. The preset specs describe
the paper's Intel servers; they say nothing about *this* host, and
ExaGeoStatR's experience is that the constants must be re-tuned per
machine. This module closes that gap:

1. :func:`run_probes` executes short seeded micro-benchmarks of exactly
   the kernel classes the model prices — dense GEMM/POTRF, covariance
   tile generation, TLR compression, a tiny tile Cholesky (exposing the
   per-task scheduling overhead that dominates at Python scale), a tiny
   TLR Cholesky, and a memory copy. Each timed sample is also emitted as
   a ``probe:<kernel>`` telemetry span, so a sink-armed run leaves the
   measurements on disk (:func:`samples_from_spans` reads them back —
   the same substrate :mod:`.calibrate` replays fit/serving runs from).
2. :func:`fit_constants` fits per-class sustained rates by least squares
   against the probe timings (``R = sum(w_i^2) / sum(w_i * t_i)``
   minimizes ``sum (t_i - w_i / R)^2`` over the samples of one class)
   and a per-task overhead constant from the tile-Cholesky residual.
3. :class:`CalibrationProfile` packages the fitted constants, the derived
   host :class:`~repro.perfmodel.machine.MachineSpec`, and the raw
   samples as versioned JSON with atomic persistence and a staleness
   stamp. :mod:`.planner` consumes it.

Determinism: every timing source is injectable (``clock=``) and all
randomness is seeded, so a fixed clock + seed produce byte-identical
profile JSON — the property the test suite pins.

CLI::

    python -m repro.perfmodel.autotune --out profile.json
    python -m repro.perfmodel.autotune --plan 20000 --substrate auto
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .. import telemetry as _telemetry
from ..exceptions import CalibrationError
from .analytic import _dense_tile_costs, _tlr_tile_costs
from .flops import (
    KERNEL_EVAL_FLOPS,
    compression_flops,
    gemm_flops,
    potrf_flops,
)
from .machine import MachineSpec
from .rankmodel import DEFAULT_RANK_MODEL

__all__ = [
    "PROFILE_VERSION",
    "ProbeSample",
    "CalibrationProfile",
    "run_probes",
    "samples_from_spans",
    "fit_constants",
    "fit_profile",
    "autotune",
    "main",
]

#: Bump when the profile schema or the fitting procedure changes
#: incompatibly; :meth:`CalibrationProfile.load` rejects other versions.
PROFILE_VERSION = 1

#: Default probe tile sizes. The least-squares fit is dominated by the
#: largest size (weights are squared work), which is also the closest to
#: the tile sizes the planner actually picks.
DEFAULT_SIZES = (64, 128, 256)

#: Profiles older than this are flagged stale (plans still compute, with
#: ``profile.stale = true`` in the payload).
DEFAULT_MAX_AGE_S = 7 * 86400.0

#: TLR accuracy used by the compression / TLR-Cholesky probes.
_PROBE_ACC = 1e-7

#: Tile count of the tiny tile/TLR Cholesky probes.
_PROBE_NT = 4

_EPS_SECONDS = 1e-9


@dataclass(frozen=True)
class ProbeSample:
    """One timed micro-benchmark execution.

    ``work`` is the *modeled* cost of the probe in the analytic model's
    own units — flops for compute kernels, bytes for ``copy`` — so that
    fitting a rate against it makes the model's predictions match these
    measurements by construction. ``meta`` carries kernel-specific
    extras (measured rank, task count, problem size).
    """

    kernel: str
    size: int
    seconds: float
    work: float
    meta: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "size": int(self.size),
            "seconds": float(self.seconds),
            "work": float(self.work),
            "meta": {k: float(v) for k, v in sorted(self.meta.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ProbeSample":
        return cls(
            kernel=str(d["kernel"]),
            size=int(d["size"]),
            seconds=float(d["seconds"]),
            work=float(d["work"]),
            meta={k: float(v) for k, v in dict(d.get("meta") or {}).items()},
        )


# --------------------------------------------------------------------------
# probes
# --------------------------------------------------------------------------


def _time_call(clock: Callable[[], float], fn: Callable[[], object]) -> float:
    t0 = clock()
    fn()
    t1 = clock()
    dt = t1 - t0
    if dt <= 0.0:
        raise CalibrationError(
            "probe clock returned a non-positive interval "
            f"({dt!r}); the injected clock must be monotonically increasing"
        )
    return dt


def _spd_covariance(n: int, seed: int) -> np.ndarray:
    """A well-conditioned covariance matrix over seeded random locations."""
    from ..data.synthetic import generate_irregular_grid
    from ..kernels import MaternCovariance

    locs = generate_irregular_grid(n, seed=seed)
    model = MaternCovariance(1.0, 0.1, 0.5)
    k = model.matrix(locs)
    k[np.diag_indices_from(k)] += 1e-3 * n
    return k


def run_probes(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
    seed: int = 0,
    clock: Callable[[], float] = time.perf_counter,
) -> List[ProbeSample]:
    """Execute the probe suite; return one sample per (kernel, size, rep).

    Every sample is also emitted as a ``probe:<kernel>`` telemetry span
    (no-op unless telemetry is armed), carrying the sample fields as
    span attributes so :func:`samples_from_spans` can reconstruct it
    from a JSONL sink.
    """
    from ..kernels import MaternCovariance
    from ..data.synthetic import generate_irregular_grid
    from ..linalg import TileMatrix, TLRMatrix, tile_cholesky, tlr_cholesky
    from ..linalg.compression import svd_compress

    if repeats < 1:
        raise CalibrationError("autotune needs repeats >= 1")
    sizes = tuple(int(s) for s in sizes)
    if not sizes or any(s < 8 for s in sizes):
        raise CalibrationError(f"probe sizes must all be >= 8, got {sizes!r}")

    rng = np.random.default_rng(seed)
    model = MaternCovariance(1.0, 0.1, 0.5)
    samples: List[ProbeSample] = []

    def emit(kernel: str, size: int, seconds: float, work: float, **meta: float) -> None:
        sample = ProbeSample(kernel, size, seconds, work, dict(meta))
        samples.append(sample)
        _telemetry.record_span(
            f"probe:{kernel}",
            seconds,
            kernel=kernel,
            size=int(size),
            work=float(work),
            **{k: float(v) for k, v in meta.items()},
        )

    for s in sizes:
        a = rng.standard_normal((s, s))
        b = rng.standard_normal((s, s))
        spd = a @ a.T + s * np.eye(s)
        locs = generate_irregular_grid(2 * s, seed=seed + s)
        block = model.matrix(
            np.ascontiguousarray(locs[:s]), np.ascontiguousarray(locs[s:])
        )
        for _ in range(repeats):
            # Dense kernel class: the rates the tile Cholesky runs at.
            emit("gemm", s, _time_call(clock, lambda: a @ b), gemm_flops(s, s, s))
            emit(
                "potrf",
                s,
                _time_call(clock, lambda: np.linalg.cholesky(spd)),
                potrf_flops(s),
            )
            # Covariance generation: one s x s Matérn tile.
            emit(
                "generation",
                s,
                _time_call(clock, lambda: model.matrix(locs[:s])),
                KERNEL_EVAL_FLOPS * s * s,
            )
            # TLR compression of an off-diagonal covariance block. The
            # modeled work uses the *model's* compression_flops formula at
            # the achieved rank, so the fitted rate makes the analytic
            # TLR-generation prediction match this measurement.
            lr_holder: dict = {}
            comp_s = _time_call(
                clock, lambda: lr_holder.setdefault("lr", svd_compress(block, _PROBE_ACC))
            )
            rank = int(lr_holder["lr"].u.shape[1])
            emit(
                "compression",
                s,
                comp_s,
                compression_flops(s, rank),
                rank=rank,
            )
            # Memory bandwidth: out-of-cache copy (read + write streams).
            buf = rng.standard_normal(64 * s * s)
            emit(
                "copy",
                s,
                _time_call(clock, lambda: buf.copy()),
                16.0 * buf.size,
            )

    # Scheduling-overhead probes at the smallest size: a real tile and a
    # real TLR Cholesky, whose measured time is kernel work *plus* the
    # per-task Python overhead the roofline model knows nothing about.
    s0 = min(sizes)
    n0 = _PROBE_NT * s0
    spd = _spd_covariance(n0, seed=seed + 1)
    for rep in range(repeats):
        tm = TileMatrix.from_dense(spd, s0, symmetric_lower=True)
        chol_s = _time_call(clock, lambda: tile_cholesky(tm))
        dense_costs = _dense_tile_costs(_PROBE_NT, s0)
        emit(
            "tile_chol",
            s0,
            chol_s,
            sum(c.flops for c in dense_costs.values()),
            n=n0,
            n_tasks=_dense_task_count(_PROBE_NT),
        )
        tlr = TLRMatrix.from_dense(spd, s0, _PROBE_ACC)
        tlr_s = _time_call(clock, lambda: tlr_cholesky(tlr, _PROBE_ACC))
        tlr_costs, _ = _tlr_tile_costs(_PROBE_NT, s0, _PROBE_ACC, DEFAULT_RANK_MODEL)
        emit(
            "tlr_chol",
            s0,
            tlr_s,
            sum(c.flops for k, c in tlr_costs.items() if k != "potrf"),
            n=n0,
            n_tasks=_dense_task_count(_PROBE_NT),
            potrf_flops=tlr_costs["potrf"].flops,
        )
    return samples


def _dense_task_count(nt: int) -> int:
    """Task population of a tile Cholesky with ``nt`` tile rows."""
    off = nt * (nt - 1) // 2
    gemm = sum((nt - a) * (a - 1) for a in range(2, nt))
    return nt + 2 * off + gemm


def samples_from_spans(spans: Iterable[dict]) -> List[ProbeSample]:
    """Reconstruct probe samples from recorded ``probe:*`` telemetry spans.

    Accepts the span dicts of :func:`repro.perfmodel.calibrate.load_spans`;
    non-probe spans are ignored. Raises
    :class:`~repro.exceptions.CalibrationError` when no probe spans are
    present — refitting from a sink that never ran the probes is a
    misconfiguration, not an empty profile.
    """
    samples: List[ProbeSample] = []
    for rec in spans:
        name = str(rec.get("name", ""))
        if not name.startswith("probe:"):
            continue
        attrs = rec.get("attrs") or {}
        if "work" not in attrs or "size" not in attrs:
            continue
        meta = {
            k: float(v)
            for k, v in attrs.items()
            if k not in ("kernel", "size", "work") and isinstance(v, (int, float))
        }
        samples.append(
            ProbeSample(
                kernel=name.split(":", 1)[1],
                size=int(attrs["size"]),
                seconds=float(rec["duration"]),
                work=float(attrs["work"]),
                meta=meta,
            )
        )
    if not samples:
        raise CalibrationError(
            "no probe:* spans found; run the probes with telemetry armed "
            "(configure(enabled=True, sink_dir=...)) before refitting from "
            "a sink"
        )
    return samples


# --------------------------------------------------------------------------
# least-squares constant fitting
# --------------------------------------------------------------------------


def _ls_rate(samples: Sequence[ProbeSample]) -> float:
    """Least-squares rate: minimizes ``sum (t_i - w_i/R)^2`` over ``1/R``."""
    num = sum(s.work * s.work for s in samples)
    den = sum(s.work * s.seconds for s in samples)
    if den <= 0.0 or num <= 0.0:
        raise CalibrationError(
            f"degenerate probe timings for {sorted({s.kernel for s in samples})}: "
            "cannot fit a positive rate"
        )
    return num / den


def fit_constants(samples: Sequence[ProbeSample]) -> Dict[str, float]:
    """Fit the model's machine constants from probe samples.

    Returns ``dense_gflops`` / ``lr_gflops`` / ``gen_gflops`` (sustained
    rates per kernel class), ``copy_bw_gbs`` (streaming bandwidth) and
    ``task_overhead_s`` (per-task scheduling overhead, fitted from the
    tile-Cholesky residual after subtracting modeled kernel time — at
    Python scale this constant, not flops, often dominates small tiles).
    """
    by_kernel: Dict[str, List[ProbeSample]] = {}
    for s in samples:
        by_kernel.setdefault(s.kernel, []).append(s)
    missing = {"gemm", "potrf", "generation", "compression", "copy"} - set(by_kernel)
    if missing:
        raise CalibrationError(
            f"probe set is missing kernel classes {sorted(missing)}; "
            "rerun the full probe suite"
        )

    r_dense = _ls_rate(by_kernel["gemm"] + by_kernel["potrf"])
    r_gen = _ls_rate(by_kernel["generation"])
    bw = _ls_rate(by_kernel["copy"])

    # Per-task overhead from the tile-Cholesky residual:
    # t_i = work_i / r_dense + c * n_tasks_i  =>  least squares over c.
    overhead = 0.0
    chol = by_kernel.get("tile_chol", [])
    if chol:
        num = sum(
            s.meta.get("n_tasks", 0.0) * (s.seconds - s.work / r_dense) for s in chol
        )
        den = sum(s.meta.get("n_tasks", 0.0) ** 2 for s in chol)
        if den > 0.0:
            overhead = max(0.0, num / den)

    # Low-rank rate from compression plus the TLR-Cholesky residual
    # (subtract the dense POTRF share and the task overhead first).
    lr_samples = list(by_kernel["compression"])
    for s in by_kernel.get("tlr_chol", []):
        residual = (
            s.seconds
            - s.meta.get("potrf_flops", 0.0) / r_dense
            - s.meta.get("n_tasks", 0.0) * overhead
        )
        lr_samples.append(
            ProbeSample(s.kernel, s.size, max(residual, _EPS_SECONDS), s.work, s.meta)
        )
    r_lr = _ls_rate(lr_samples)

    return {
        "dense_gflops": r_dense / 1e9,
        "lr_gflops": r_lr / 1e9,
        "gen_gflops": r_gen / 1e9,
        "copy_bw_gbs": bw / 1e9,
        "task_overhead_s": overhead,
    }


def _host_info() -> Dict[str, object]:
    try:
        mem_gb = (
            os.sysconf("SC_PHYS_PAGES") * os.sysconf("SC_PAGE_SIZE") / 1e9
        )
    except (ValueError, OSError, AttributeError):
        mem_gb = 8.0
    return {
        "hostname": socket.gethostname(),
        "machine": platform.machine(),
        "cpu_count": int(os.cpu_count() or 1),
        "mem_gb": round(float(mem_gb), 3),
    }


#: Reference efficiency assigned to the dense class; the other classes'
#: efficiencies are the measured rate ratios scaled by it, and the
#: nominal clock is back-solved so ``peak * eff_dense == measured rate``.
_REF_EFF_DENSE = 0.8
_REF_EFF_BLOCK = 0.55
_REF_FLOPS_PER_CYCLE = 16


def _machine_from_constants(
    constants: Dict[str, float], host: Dict[str, object]
) -> MachineSpec:
    """Derive a host MachineSpec whose roofline reproduces the fitted rates.

    The spec uses ``cores=1``: the measured rates are what one kernel
    call achieves (BLAS-internal threading included), and the Python
    substrate executes kernels one at a time — per-task overhead, not
    core count, is its scaling limit. The host's real core count stays
    in the profile's ``host`` block for worker/shard planning.
    """

    def clamp_eff(x: float) -> float:
        return min(1.0, max(1e-4, x))

    dense = max(constants["dense_gflops"], 1e-6)
    freq_ghz = dense / (_REF_EFF_DENSE * _REF_FLOPS_PER_CYCLE)
    return MachineSpec(
        name=f"calibrated-{host.get('hostname', 'host')}",
        cores=1,
        freq_ghz=freq_ghz,
        flops_per_cycle=_REF_FLOPS_PER_CYCLE,
        eff_dense=_REF_EFF_DENSE,
        eff_block=_REF_EFF_BLOCK,
        eff_lr=clamp_eff(_REF_EFF_DENSE * constants["lr_gflops"] / dense),
        mem_bw_gbs=max(constants["copy_bw_gbs"], 1e-3),
        mem_gb=float(host.get("mem_gb", 8.0)),
        eff_gen=clamp_eff(_REF_EFF_DENSE * constants["gen_gflops"] / dense),
    )


# --------------------------------------------------------------------------
# the persisted profile
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationProfile:
    """Fitted machine constants plus provenance, persistable as JSON.

    ``created`` is an epoch timestamp; a profile older than
    ``max_age_s`` reports :meth:`is_stale` (plans computed from it carry
    a ``stale`` flag rather than failing — hardware constants drift
    slowly, but CI hosts differ run to run).
    """

    version: int
    created: float
    seed: int
    sizes: tuple
    repeats: int
    host: Dict[str, object]
    constants: Dict[str, float]
    machine: Dict[str, object]
    probes: tuple
    max_age_s: float = DEFAULT_MAX_AGE_S

    def spec(self) -> MachineSpec:
        """The calibrated host :class:`MachineSpec`."""
        return MachineSpec(**self.machine)

    def age_s(self, now: Optional[float] = None) -> float:
        return (time.time() if now is None else now) - self.created

    def is_stale(self, now: Optional[float] = None) -> bool:
        return self.age_s(now) > self.max_age_s

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "created": float(self.created),
            "seed": int(self.seed),
            "sizes": [int(s) for s in self.sizes],
            "repeats": int(self.repeats),
            "host": dict(self.host),
            "constants": {k: float(v) for k, v in sorted(self.constants.items())},
            "machine": dict(self.machine),
            "probes": [p if isinstance(p, dict) else p.to_dict() for p in self.probes],
            "max_age_s": float(self.max_age_s),
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict) -> "CalibrationProfile":
        try:
            version = int(d["version"])
        except (KeyError, TypeError, ValueError):
            raise CalibrationError(
                "calibration profile has no integer 'version' field"
            ) from None
        if version != PROFILE_VERSION:
            raise CalibrationError(
                f"calibration profile version {version} is not supported "
                f"(expected {PROFILE_VERSION}); re-run "
                "python -m repro.perfmodel.autotune"
            )
        try:
            return cls(
                version=version,
                created=float(d["created"]),
                seed=int(d["seed"]),
                sizes=tuple(int(s) for s in d["sizes"]),
                repeats=int(d["repeats"]),
                host=dict(d["host"]),
                constants={k: float(v) for k, v in d["constants"].items()},
                machine=dict(d["machine"]),
                probes=tuple(dict(p) for p in d.get("probes", [])),
                max_age_s=float(d.get("max_age_s", DEFAULT_MAX_AGE_S)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(
                f"calibration profile is malformed: {exc}"
            ) from None

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically persist: write a sibling temp file, fsync, rename."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        data = self.to_json().encode("utf-8") + b"\n"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CalibrationProfile":
        path = Path(path)
        if not path.is_file():
            raise CalibrationError(
                f"calibration profile {str(path)!r} does not exist; create "
                "one with python -m repro.perfmodel.autotune --out "
                f"{path}"
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CalibrationError(
                f"calibration profile {str(path)!r} is unreadable: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise CalibrationError(
                f"calibration profile {str(path)!r} is not a JSON object"
            )
        return cls.from_dict(payload)


def fit_profile(
    samples: Sequence[ProbeSample],
    *,
    seed: int = 0,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
    created: Optional[float] = None,
    max_age_s: float = DEFAULT_MAX_AGE_S,
    host: Optional[Dict[str, object]] = None,
) -> CalibrationProfile:
    """Fit a :class:`CalibrationProfile` from probe samples.

    ``created`` defaults to the current wall clock; pass it explicitly
    (tests do) for reproducible bytes.
    """
    host = dict(host) if host is not None else _host_info()
    constants = fit_constants(samples)
    spec = _machine_from_constants(constants, host)
    machine = {
        "name": spec.name,
        "cores": spec.cores,
        "freq_ghz": spec.freq_ghz,
        "flops_per_cycle": spec.flops_per_cycle,
        "eff_dense": spec.eff_dense,
        "eff_block": spec.eff_block,
        "eff_lr": spec.eff_lr,
        "mem_bw_gbs": spec.mem_bw_gbs,
        "mem_gb": spec.mem_gb,
        "eff_gen": spec.eff_gen,
    }
    return CalibrationProfile(
        version=PROFILE_VERSION,
        created=time.time() if created is None else float(created),
        seed=int(seed),
        sizes=tuple(int(s) for s in sizes),
        repeats=int(repeats),
        host=host,
        constants=constants,
        machine=machine,
        probes=tuple(s.to_dict() for s in samples),
        max_age_s=float(max_age_s),
    )


def autotune(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
    seed: int = 0,
    clock: Callable[[], float] = time.perf_counter,
    created: Optional[float] = None,
    host: Optional[Dict[str, object]] = None,
) -> CalibrationProfile:
    """Probe the current host and fit a :class:`CalibrationProfile`."""
    samples = run_probes(sizes=sizes, repeats=repeats, seed=seed, clock=clock)
    return fit_profile(
        samples,
        seed=seed,
        sizes=sizes,
        repeats=repeats,
        created=created,
        host=host,
    )


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description=(
            "Calibrate the analytic performance model on this host and "
            "optionally plan a workload with the fitted constants."
        )
    )
    parser.add_argument("--out", help="persist the fitted profile to this path")
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated probe tile sizes",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--from-sink",
        metavar="DIR",
        help="refit from probe:* spans recorded in a telemetry sink "
        "instead of running fresh probes",
    )
    parser.add_argument(
        "--plan",
        type=int,
        metavar="N",
        help="also plan a fit+predict workload of N locations",
    )
    parser.add_argument("--m", type=int, default=100, help="prediction targets")
    parser.add_argument(
        "--substrate",
        default="auto",
        help="plan substrate: auto, full-block, full-tile, or tlr",
    )
    parser.add_argument(
        "--accuracy", type=float, default=None, help="TLR accuracy target"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    args = parser.parse_args(argv)

    sizes = tuple(int(s) for s in str(args.sizes).split(",") if s.strip())
    if args.from_sink:
        from .calibrate import load_spans

        samples = samples_from_spans(load_spans(args.from_sink))
        profile = fit_profile(
            samples, seed=args.seed, sizes=sizes, repeats=args.repeats
        )
    else:
        profile = autotune(sizes=sizes, repeats=args.repeats, seed=args.seed)

    if args.out:
        profile.save(args.out)

    payload: Dict[str, object] = {"profile": profile.to_dict()}
    if args.plan is not None:
        from .planner import Planner

        plan = Planner(profile).plan(
            args.plan,
            m=args.m,
            substrate=args.substrate,
            accuracy=args.accuracy,
        )
        payload["plan"] = plan.to_dict()

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    c = profile.constants
    print(f"calibrated {profile.machine['name']} (seed={profile.seed})")
    print(f"  dense rate     {c['dense_gflops']:.3f} GF/s")
    print(f"  low-rank rate  {c['lr_gflops']:.3f} GF/s")
    print(f"  generation     {c['gen_gflops']:.3f} GF/s")
    print(f"  copy bandwidth {c['copy_bw_gbs']:.3f} GB/s")
    print(f"  task overhead  {c['task_overhead_s'] * 1e6:.1f} us/task")
    if args.out:
        print(f"saved profile to {args.out}")
    if args.plan is not None:
        plan_d = payload["plan"]
        assert isinstance(plan_d, dict)
        cfg = plan_d["config"]
        pred = plan_d["predicted"]
        print(
            f"plan for n={args.plan}, m={args.m}: variant={cfg['variant']} "
            f"tile_size={cfg['tile_size']} accuracy={cfg['accuracy']}"
        )
        print(
            f"  predicted fit iteration {pred['fit_iteration']['total_s']:.3f} s, "
            f"predict {pred['predict']['total_s']:.3f} s"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
