"""Tests for polynomial mean-trend removal (paper §VII preprocessing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import generate_irregular_grid
from repro.data.trend import PolynomialTrend, detrend
from repro.exceptions import ShapeError


class TestPolynomialTrend:
    def test_recovers_exact_linear_surface(self, rng):
        pts = rng.random((100, 2)) * 10
        vals = 3.0 + 2.0 * pts[:, 0] - 1.5 * pts[:, 1]
        trend = PolynomialTrend.fit(pts, vals, degree=1)
        np.testing.assert_allclose(trend(pts), vals, atol=1e-9)
        np.testing.assert_allclose(trend.residuals(pts, vals), 0.0, atol=1e-9)

    def test_recovers_quadratic_surface(self, rng):
        pts = rng.random((200, 2))
        x, y = pts[:, 0], pts[:, 1]
        vals = 1.0 + x - y + 0.5 * x * y - 2.0 * x**2 + y**2
        trend = PolynomialTrend.fit(pts, vals, degree=2)
        np.testing.assert_allclose(trend(pts), vals, atol=1e-8)

    def test_degree_zero_is_mean(self, rng):
        pts = rng.random((50, 2))
        vals = rng.random(50)
        trend = PolynomialTrend.fit(pts, vals, degree=0)
        np.testing.assert_allclose(trend(pts), vals.mean(), atol=1e-10)

    def test_evaluation_at_new_points(self, rng):
        pts = rng.random((80, 2))
        vals = 5.0 - pts[:, 0] + 2 * pts[:, 1]
        trend = PolynomialTrend.fit(pts, vals, degree=1)
        new = np.array([[0.5, 0.5], [2.0, -1.0]])
        np.testing.assert_allclose(
            trend(new), 5.0 - new[:, 0] + 2 * new[:, 1], atol=1e-8
        )

    def test_lonlat_scale_conditioning(self, rng):
        # Real-data magnitudes (lon ~ -90, lat ~ 35) must not break the fit.
        lon = rng.uniform(-95, -80, 120)
        lat = rng.uniform(30, 41, 120)
        pts = np.column_stack([lon, lat])
        vals = 0.01 * lon - 0.02 * lat + 1.0
        trend = PolynomialTrend.fit(pts, vals, degree=1)
        np.testing.assert_allclose(trend(pts), vals, atol=1e-8)

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            PolynomialTrend.fit(rng.random((10, 2)), rng.random(10), degree=-1)
        with pytest.raises(ShapeError):
            PolynomialTrend.fit(rng.random((3, 2)), rng.random(3), degree=2)
        with pytest.raises(ShapeError):
            PolynomialTrend.fit(rng.random((10, 3)), rng.random(10), degree=1)


class TestDetrendPipeline:
    def test_residuals_are_zero_mean_field(self, rng):
        from repro.data.fields import sample_gaussian_field
        from repro.kernels import MaternCovariance

        pts = generate_irregular_grid(144, seed=0)
        gp = sample_gaussian_field(pts, MaternCovariance(0.5, 0.1, 0.5), seed=1)
        raw = gp + 4.0 + 3.0 * pts[:, 0]  # GP + linear mean process
        residuals, trend = detrend(pts, raw, degree=1)
        # Residuals should recover the GP up to the trend's leakage.
        assert np.abs(residuals.mean()) < 0.2
        corr = np.corrcoef(residuals, gp)[0, 1]
        assert corr > 0.95

    def test_prediction_workflow(self, rng):
        # detrend -> fit GP on residuals -> predict -> re-add trend.
        from repro.data.fields import sample_gaussian_field
        from repro.kernels import MaternCovariance
        from repro.mle.prediction import predict

        pts = generate_irregular_grid(144, seed=2)
        model = MaternCovariance(0.5, 0.1, 0.5)
        gp = sample_gaussian_field(pts, model, seed=3)
        raw = gp + 10.0 - 2.0 * pts[:, 1]
        residuals, trend = detrend(pts, raw, degree=1)
        train, test = slice(0, 120), slice(120, 144)
        pred_resid = predict(pts[train], residuals[train], pts[test], model)
        pred = pred_resid + trend(pts[test])
        rmse = float(np.sqrt(np.mean((pred - raw[test]) ** 2)))
        baseline = float(np.sqrt(np.mean((raw[test] - raw[train].mean()) ** 2)))
        assert rmse < baseline
