"""Ablation bench — tile-size trade-off (paper §VIII-C).

The paper tunes nb=560 for dense tiles and nb=1900 for TLR; this bench
sweeps nb on the host and via the paper-scale model.
"""

from __future__ import annotations

from repro.experiments.ablation import tile_size_sweep


def test_ablation_tile_size(benchmark, outdir):
    """Measured + modeled tile-size sweep table."""
    table = benchmark.pedantic(tile_size_sweep, rounds=1, iterations=1)
    table.save("ablation_tile_size")
    assert len(table.rows) >= 2
