"""Tests for the paper's synthetic location generator (§VII, Fig. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.synthetic import generate_irregular_grid, generate_uniform_locations
from repro.exceptions import ShapeError
from repro.kernels.distance import euclidean_distance_matrix


class TestIrregularGrid:
    def test_shape_and_bounds(self):
        pts = generate_irregular_grid(400, seed=0)
        assert pts.shape == (400, 2)
        assert np.all(pts > 0.0) and np.all(pts < 1.0)

    def test_perfect_square_one_point_per_cell(self):
        n = 25 * 25
        pts = generate_irregular_grid(n, seed=1)
        cells = np.floor(pts * 25).astype(int)
        np.clip(cells, 0, 24, out=cells)
        ids = cells[:, 0] * 25 + cells[:, 1]
        # Jitter < 0.5 cells: each grid cell contains exactly its own point.
        assert len(np.unique(ids)) == n

    def test_no_two_points_too_close(self):
        pts = generate_irregular_grid(400, seed=2)
        d = euclidean_distance_matrix(pts)
        np.fill_diagonal(d, np.inf)
        # Adjacent cell centers are 1/20 apart; jitter 0.4 leaves >= 0.2 cells.
        assert d.min() >= 0.2 / 20 - 1e-9

    def test_zero_jitter_gives_regular_grid(self):
        pts = generate_irregular_grid(16, seed=3, jitter=0.0)
        expect = (np.arange(1, 5) - 0.5) / 4
        np.testing.assert_allclose(np.unique(pts[:, 0]), expect, atol=1e-12)
        np.testing.assert_allclose(np.unique(pts[:, 1]), expect, atol=1e-12)

    def test_non_square_n(self):
        pts = generate_irregular_grid(500, seed=4)
        assert pts.shape == (500, 2)
        assert len(np.unique(pts, axis=0)) == 500

    def test_reproducible(self):
        a = generate_irregular_grid(100, seed=5)
        b = generate_irregular_grid(100, seed=5)
        np.testing.assert_array_equal(a, b)
        c = generate_irregular_grid(100, seed=6)
        assert not np.array_equal(a, c)

    def test_invalid_args(self):
        with pytest.raises(ShapeError):
            generate_irregular_grid(0)
        with pytest.raises(ShapeError):
            generate_irregular_grid(10, jitter=0.5)
        with pytest.raises(ShapeError):
            generate_irregular_grid(10, jitter=-0.1)

    @given(st.integers(1, 300))
    def test_property_count_and_bounds(self, n):
        pts = generate_irregular_grid(n, seed=11)
        assert pts.shape == (n, 2)
        assert np.all((pts > 0) & (pts < 1))


class TestUniform:
    def test_bbox(self):
        pts = generate_uniform_locations(200, seed=0, bbox=(2.0, 3.0, -1.0, 0.5))
        assert pts.shape == (200, 2)
        assert pts[:, 0].min() >= 2.0 and pts[:, 0].max() <= 3.0
        assert pts[:, 1].min() >= -1.0 and pts[:, 1].max() <= 0.5

    def test_invalid(self):
        with pytest.raises(ShapeError):
            generate_uniform_locations(0)
        with pytest.raises(ShapeError):
            generate_uniform_locations(5, bbox=(1.0, 1.0, 0.0, 1.0))
