"""Timing utilities used by the MLE drivers and the benchmark harness.

The paper reports the time of *one iteration* of the MLE optimization,
broken down implicitly into covariance generation, factorization, solve,
and log-determinant stages. :class:`StageTimes` accumulates named stage
durations so evaluators can report the same decomposition.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator

from ..telemetry import spans as _telemetry

__all__ = ["Stopwatch", "StageTimes", "timed"]


class Stopwatch:
    """A simple cumulative stopwatch based on ``time.perf_counter``.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._t0 = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._t0
        self.calls += 1

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.calls = 0


@dataclass
class StageTimes:
    """Named cumulative stage timings (seconds).

    Used by likelihood evaluators to report generation / factorization /
    solve / logdet breakdowns per iteration.
    """

    stages: Dict[str, float] = field(default_factory=dict)

    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall time into stage ``name``.

        Doubles as a telemetry hook: every stage also records a
        ``stage:<name>`` span when telemetry is armed, so the
        generation / factorization / solve decomposition shows up
        nested inside whatever request or fit span is active — no
        second instrumentation pass over the evaluators.
        """
        t0 = time.perf_counter()
        try:
            with _telemetry.span(f"stage:{name}"):
                yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + time.perf_counter() - t0

    def total(self) -> float:
        """Sum of all recorded stages."""
        return float(sum(self.stages.values()))

    def merged_with(self, other: "StageTimes") -> "StageTimes":
        """Return a new :class:`StageTimes` adding ``other``'s stages."""
        out = StageTimes(dict(self.stages))
        for k, v in other.stages.items():
            out.stages[k] = out.stages.get(k, 0.0) + v
        return out

    def as_row(self) -> Dict[str, float]:
        """Stages plus a ``total`` key, suitable for tabulation."""
        row = dict(self.stages)
        row["total"] = self.total()
        return row


@contextlib.contextmanager
def timed() -> Iterator[Stopwatch]:
    """Time a block and expose the elapsed seconds.

    >>> with timed() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """
    sw = Stopwatch()
    with sw:
        yield sw
