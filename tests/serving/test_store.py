"""Round-trip tests for the serving store: a persisted fit must serve
predictions bit-identical to the process that ran the fit."""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import BundleCorruptError, BundleError
from repro.kernels import ExponentialCovariance, MaternCovariance
from repro.kernels.covariance import (
    GaussianCovariance,
    PoweredExponentialCovariance,
    WhittleCovariance,
)
from repro.mle import MLEstimator, PredictionEngine
from repro.serving import ModelBundle, bundle_from_fit, load_model, save_model

N, NB, ACC = 144, 36, 1e-9
VARIANTS = ("full-block", "full-tile", "tlr")


@pytest.fixture(scope="module")
def problem():
    locs = generate_irregular_grid(N, seed=0)
    truth = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, truth, seed=1)
    targets = generate_irregular_grid(16, seed=3)
    return locs, z, targets


def _fit(problem, variant, **kwargs):
    locs, z, _ = problem
    est = MLEstimator(locs, z, variant=variant, tile_size=NB, acc=ACC, **kwargs)
    return est, est.fit(maxiter=12)


@pytest.mark.parametrize("variant", VARIANTS)
def test_round_trip_predictions_bit_identical(problem, variant, tmp_path):
    locs, z, targets = problem
    est, fit = _fit(problem, variant)
    reference = est.predict(fit, targets)

    path = est.save_fit(fit, tmp_path / "model.bundle")
    engine = PredictionEngine.from_bundle(path)
    got = engine.predict(targets)

    np.testing.assert_array_equal(got, reference)
    # The persisted factor was adopted: no factorization on first predict.
    assert engine.n_factorizations == 0
    # Batched multi-RHS through the loaded engine also matches (to solver
    # rounding: a 2-column TRSM orders its flops differently than TRSV).
    batch = np.column_stack([engine.z, engine.z * 0.5])
    got_batch = engine.predict(targets, z=batch)
    np.testing.assert_allclose(got_batch[:, 0], reference, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("variant", VARIANTS)
def test_round_trip_conditional_variance(problem, variant, tmp_path):
    locs, z, targets = problem
    est, fit = _fit(problem, variant)
    reference = est.conditional_variance(fit, targets)
    path = est.save_fit(fit, tmp_path / "model.bundle")
    got = PredictionEngine.from_bundle(path).conditional_variance(targets)
    np.testing.assert_array_equal(got, reference)


def test_metadata_round_trip(problem, tmp_path):
    est, fit = _fit(problem, "tlr")
    bundle = bundle_from_fit(est, fit)
    path = save_model(bundle, tmp_path / "m.bundle")
    loaded = load_model(path)

    assert type(loaded.model) is type(est.model)
    np.testing.assert_array_equal(loaded.model.theta, fit.theta)
    assert loaded.model.metric == est.model.metric
    assert loaded.model.nugget == est.model.nugget
    assert loaded.variant == "tlr"
    assert loaded.tile_size == NB and loaded.acc == ACC
    np.testing.assert_array_equal(loaded.locations, est.locations)  # Morton order kept
    np.testing.assert_array_equal(loaded.z, est.z)
    assert loaded.info["loglik"] == pytest.approx(fit.loglik)
    # The on-disk form is a plain directory with meta.json + arrays.npz.
    meta = json.loads((path / "meta.json").read_text())
    assert meta["format_version"] == 1
    assert meta["model"]["family"] == "MaternCovariance"


def test_distance_cache_rehydration_skips_distance_work(problem, tmp_path):
    est, fit = _fit(problem, "full-tile")
    path = est.save_fit(
        fit, tmp_path / "m.bundle", include_factor=False, include_distance_cache=True
    )
    engine = PredictionEngine.from_bundle(path)
    assert engine.n_factorizations == 0 and engine._factor is None
    assert engine.distance_cache is not None
    assert engine.distance_cache.n_blocks > 0
    engine.factor()  # generates from rehydrated blocks, no distance misses
    assert engine.distance_cache.misses == 0
    # Values still match the in-process engine.
    locs, z, targets = problem
    np.testing.assert_array_equal(engine.predict(targets), est.predict(fit, targets))


def test_bundle_without_factor_refactorizes_to_same_values(problem, tmp_path):
    locs, z, targets = problem
    est, fit = _fit(problem, "full-block")
    reference = est.predict(fit, targets)
    path = est.save_fit(fit, tmp_path / "m.bundle", include_factor=False)
    engine = PredictionEngine.from_bundle(path)
    got = engine.predict(targets)
    assert engine.n_factorizations == 1
    np.testing.assert_array_equal(got, reference)


def test_variance_only_bundle(problem, tmp_path):
    locs, z, targets = problem
    model = ExponentialCovariance(1.2, 0.15, nugget=1e-4)
    bundle = ModelBundle(model=model, locations=locs, z=None, variant="full-block")
    path = bundle.save(tmp_path / "m.bundle")
    engine = load_model(path).build_engine()
    var = engine.conditional_variance(targets)
    assert var.shape == (targets.shape[0],)
    # Explicit z still works; a bound-z predict does not exist.
    pred = engine.predict(targets, z=np.asarray(z))
    assert pred.shape == (targets.shape[0],)


def test_load_errors(tmp_path):
    with pytest.raises(BundleError):
        load_model(tmp_path / "missing.bundle")
    bad = tmp_path / "bad.bundle"
    bad.mkdir()
    (bad / "meta.json").write_text("{}")
    with pytest.raises(BundleError):
        load_model(bad)  # no arrays.npz
    est_path = tmp_path / "versioned.bundle"
    est_path.mkdir()
    (est_path / "meta.json").write_text(json.dumps({"format_version": 99}))
    (est_path / "arrays.npz").write_bytes(b"")
    with pytest.raises(BundleError):
        load_model(est_path)


# --------------------------------------------------------------------------
# Hypothesis: arbitrary bundles survive save -> load exactly, and malformed
# meta.json raises BundleError — never a bare KeyError.
# --------------------------------------------------------------------------

_FAMILIES = (
    MaternCovariance,
    ExponentialCovariance,
    WhittleCovariance,
    GaussianCovariance,
    PoweredExponentialCovariance,
)


@st.composite
def _bundles(draw):
    cls = draw(st.sampled_from(_FAMILIES))
    base = cls(
        metric=draw(st.sampled_from(["euclidean", "gcd"])),
        nugget=draw(st.floats(0.0, 1e-2, allow_nan=False)),
    )
    theta = draw(
        st.lists(
            st.floats(0.05, 1.9, allow_nan=False),
            min_size=len(base.param_names),
            max_size=len(base.param_names),
        )
    )
    model = base.with_theta(theta)
    n = draw(st.integers(4, 16))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    locations = rng.random((n, 2))
    z_kind = draw(st.sampled_from(["none", "vector", "matrix"]))
    z = {
        "none": None,
        "vector": rng.standard_normal(n),
        "matrix": rng.standard_normal((n, draw(st.integers(1, 3)))),
    }[z_kind]
    blocks = None
    if draw(st.booleans()):
        k = draw(st.integers(1, 3))
        blocks = {
            (i, i + k, 0, k): rng.random((k, k)) for i in range(draw(st.integers(1, 3)))
        }
    return ModelBundle(
        model=model,
        locations=locations,
        z=z,
        variant=draw(st.sampled_from(["full-block", "full-tile", "tlr"])),
        acc=draw(st.floats(1e-12, 1e-2, allow_nan=False)),
        tile_size=draw(st.integers(2, 64)),
        compression_method=draw(st.sampled_from(["svd", "rsvd", "aca"])),
        truncation=draw(st.sampled_from(["relative", "absolute"])),
        distance_blocks=blocks,
        info={
            "loglik": draw(st.floats(-1e12, 1e12, allow_nan=False)),
            "n_evals": draw(st.integers(0, 10_000)),
            "note": draw(st.text(max_size=20)),
        },
    )


@settings(max_examples=40, deadline=None)
@given(bundle=_bundles())
def test_property_bundle_round_trip_exact(bundle):
    with tempfile.TemporaryDirectory() as tmp:
        loaded = load_model(bundle.save(Path(tmp) / "b.bundle"))
    assert type(loaded.model) is type(bundle.model)
    np.testing.assert_array_equal(loaded.model.theta, bundle.model.theta)
    assert loaded.model.metric == bundle.model.metric
    assert loaded.model.nugget == bundle.model.nugget  # exact: JSON repr round-trips
    np.testing.assert_array_equal(loaded.locations, bundle.locations)
    if bundle.z is None:
        assert loaded.z is None
    else:
        np.testing.assert_array_equal(loaded.z, bundle.z)
        assert loaded.z.shape == bundle.z.shape
    assert loaded.variant == bundle.variant
    assert loaded.acc == bundle.acc
    assert loaded.tile_size == bundle.tile_size
    assert loaded.compression_method == bundle.compression_method
    assert loaded.truncation == bundle.truncation
    assert loaded.info == bundle.info
    if bundle.distance_blocks is None:
        assert loaded.distance_blocks is None
    else:
        assert set(loaded.distance_blocks) == set(bundle.distance_blocks)
        for key, block in bundle.distance_blocks.items():
            np.testing.assert_array_equal(loaded.distance_blocks[key], block)


_META_KEYS = (
    ("model",),
    ("substrate",),
    ("n",),
    ("model", "metric"),
    ("model", "nugget"),
    ("model", "theta"),
    ("substrate", "variant"),
    ("substrate", "acc"),
    ("substrate", "tile_size"),
    ("substrate", "compression_method"),
    ("substrate", "truncation"),
)


@settings(max_examples=len(_META_KEYS), deadline=None)
@given(path_to_drop=st.sampled_from(_META_KEYS))
def test_property_missing_meta_key_raises_bundle_error(path_to_drop):
    """Deleting any required meta.json key must surface as BundleError
    (a typed, catchable ServingError) — never as a raw KeyError."""
    locs = np.random.default_rng(0).random((6, 2))
    bundle = ModelBundle(
        model=MaternCovariance(1.0, 0.1, 0.5), locations=locs, z=None
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = bundle.save(Path(tmp) / "b.bundle")
        meta = json.loads((path / "meta.json").read_text())
        node = meta
        for key in path_to_drop[:-1]:
            node = node[key]
        del node[path_to_drop[-1]]
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(BundleError):
            load_model(path)


@pytest.mark.parametrize(
    "content",
    ["not json at all", "[1, 2, 3]", '{"format_version": 1, "model": "nope"}'],
)
def test_malformed_meta_json_raises_bundle_error(tmp_path, content):
    locs = np.random.default_rng(0).random((6, 2))
    path = ModelBundle(
        model=MaternCovariance(1.0, 0.1, 0.5), locations=locs, z=None
    ).save(tmp_path / "b.bundle")
    (path / "meta.json").write_text(content)
    with pytest.raises(BundleError):
        load_model(path)


def test_unknown_family_rejected(problem, tmp_path):
    est, fit = _fit(problem, "full-block")
    path = est.save_fit(fit, tmp_path / "m.bundle")
    meta = json.loads((path / "meta.json").read_text())
    meta["model"]["family"] = "NoSuchCovariance"
    (path / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(BundleError):
        load_model(path)


# --------------------------------------------------------------------------
# Integrity: the sha256 recorded at save time is verified at load time;
# torn payloads raise a typed error and the bad copy is quarantined.
# --------------------------------------------------------------------------


def _small_bundle(tmp_path, name="b.bundle"):
    locs = np.random.default_rng(0).random((8, 2))
    bundle = ModelBundle(model=MaternCovariance(1.0, 0.1, 0.5), locations=locs, z=None)
    return bundle.save(tmp_path / name)


def test_save_records_the_arrays_checksum(tmp_path):
    path = _small_bundle(tmp_path)
    meta = json.loads((path / "meta.json").read_text())
    recorded = meta["checksums"]["arrays.npz"]
    import hashlib

    assert recorded == hashlib.sha256((path / "arrays.npz").read_bytes()).hexdigest()
    load_model(path)  # a clean bundle passes its own check


def test_corrupted_arrays_raise_typed_error_and_quarantine(tmp_path):
    path = _small_bundle(tmp_path)
    data = bytearray((path / "arrays.npz").read_bytes())
    data[len(data) // 2] ^= 0xFF  # one flipped byte, size unchanged
    (path / "arrays.npz").write_bytes(bytes(data))
    with pytest.raises(BundleCorruptError, match="integrity check"):
        load_model(path)
    # The bad copy was renamed aside so retries stop re-reading it...
    assert not path.exists()
    quarantined = path.with_name(path.name + ".corrupt")
    assert (quarantined / "arrays.npz").is_file()
    # ...and a later load of the (now missing) path is a plain BundleError.
    with pytest.raises(BundleError):
        load_model(path)


def test_truncated_arrays_raise_typed_error_and_quarantine(tmp_path):
    """A torn write (no checksum recorded, payload cut short) surfaces
    as BundleCorruptError from the npz reader, not a raw zipfile error."""
    path = _small_bundle(tmp_path)
    meta = json.loads((path / "meta.json").read_text())
    del meta["checksums"]  # pre-checksum bundle: only the reader can object
    (path / "meta.json").write_text(json.dumps(meta))
    payload = (path / "arrays.npz").read_bytes()
    (path / "arrays.npz").write_bytes(payload[: len(payload) // 3])
    with pytest.raises(BundleCorruptError, match="unreadable"):
        load_model(path)
    assert not path.exists()
    assert path.with_name(path.name + ".corrupt").exists()


def test_bundle_corrupt_error_is_a_bundle_error(tmp_path):
    assert issubclass(BundleCorruptError, BundleError)


def test_legacy_bundle_without_checksums_still_loads(tmp_path):
    path = _small_bundle(tmp_path)
    meta = json.loads((path / "meta.json").read_text())
    del meta["checksums"]
    (path / "meta.json").write_text(json.dumps(meta))
    loaded = load_model(path)
    assert loaded.n == 8


def test_quarantine_names_do_not_collide(tmp_path):
    first = _small_bundle(tmp_path, "m.bundle")
    data = bytearray((first / "arrays.npz").read_bytes())
    data[10] ^= 0xFF
    (first / "arrays.npz").write_bytes(bytes(data))
    with pytest.raises(BundleCorruptError):
        load_model(first)
    second = _small_bundle(tmp_path, "m.bundle")  # same path, fresh save
    data = bytearray((second / "arrays.npz").read_bytes())
    data[10] ^= 0xFF
    (second / "arrays.npz").write_bytes(bytes(data))
    with pytest.raises(BundleCorruptError):
        load_model(second)
    assert (tmp_path / "m.bundle.corrupt").exists()
    assert (tmp_path / "m.bundle.corrupt1").exists()
