"""Edge-case tests for the TLR pipeline: ragged tiles, rank-0 blocks,
alternative compressors, and truncation rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import use_config
from repro.data import generate_irregular_grid, sort_locations
from repro.kernels import GaussianCovariance, MaternCovariance
from repro.linalg.tlr_cholesky import tlr_cholesky
from repro.linalg.tlr_matrix import TLRMatrix
from repro.linalg.tlr_solve import tlr_cholesky_solve


@pytest.fixture(scope="module")
def ragged_problem():
    # 217 = 4 * 50 + 17: last tile is ragged.
    locs = generate_irregular_grid(217, seed=31)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    return locs, model, model.matrix(locs)


class TestRaggedTiles:
    def test_construction_and_reconstruction(self, ragged_problem):
        _, _, sigma = ragged_problem
        tlr = TLRMatrix.from_dense(sigma, 50, acc=1e-9)
        assert tlr.nt == 5
        assert tlr.diag[4].shape == (17, 17)
        assert np.abs(tlr.to_dense() - sigma).max() < 1e-7

    def test_cholesky_and_solve(self, ragged_problem, rng):
        _, _, sigma = ragged_problem
        tlr = TLRMatrix.from_dense(sigma, 50, acc=1e-10)
        tlr_cholesky(tlr)
        b = rng.random(217)
        x = tlr_cholesky_solve(tlr, b)
        np.testing.assert_allclose(sigma @ x, b, atol=1e-5)

    def test_logdet_ragged(self, ragged_problem):
        from repro.linalg.tlr_cholesky import logdet_from_tlr_factor

        _, _, sigma = ragged_problem
        _, ref = np.linalg.slogdet(sigma)
        tlr = TLRMatrix.from_dense(sigma, 50, acc=1e-10)
        tlr_cholesky(tlr)
        assert logdet_from_tlr_factor(tlr) == pytest.approx(ref, abs=1e-4)


class TestRankZeroTiles:
    def test_far_apart_clusters_compress_to_rank_zero(self):
        # Two distant clusters under a short-range Gaussian kernel: the
        # cross tile is numerically zero -> rank 0 under absolute rule.
        rng = np.random.default_rng(0)
        a = rng.random((40, 2)) * 0.05
        b = rng.random((40, 2)) * 0.05 + 10.0
        locs = np.vstack([a, b])
        model = GaussianCovariance(1.0, 0.05, nugget=1e-8)
        sigma = model.matrix(locs)
        tlr = TLRMatrix.from_dense(sigma, 40, acc=1e-10, rule="absolute")
        assert tlr.rank(1, 0) == 0

    def test_cholesky_with_rank_zero_offdiag(self, rng):
        # Block-diagonal SPD matrix: off-diagonal tile is exactly zero.
        blocks = []
        for _ in range(2):
            x = rng.random((30, 30))
            blocks.append(x @ x.T + 30 * np.eye(30))
        sigma = np.zeros((60, 60))
        sigma[:30, :30] = blocks[0]
        sigma[30:, 30:] = blocks[1]
        tlr = TLRMatrix.from_dense(sigma, 30, acc=1e-10, rule="absolute")
        assert tlr.rank(1, 0) == 0
        tlr_cholesky(tlr)
        b = rng.random(60)
        x = tlr_cholesky_solve(tlr, b)
        np.testing.assert_allclose(sigma @ x, b, atol=1e-6)


class TestAlternativeCompressors:
    @pytest.mark.parametrize("method", ["rsvd", "aca"])
    def test_end_to_end_with_method(self, ragged_problem, method, rng):
        _, _, sigma = ragged_problem
        tlr = TLRMatrix.from_dense(sigma, 50, acc=1e-9, method=method)
        assert np.abs(tlr.to_dense() - sigma).max() < 1e-5
        tlr_cholesky(tlr)
        b = rng.random(217)
        x = tlr_cholesky_solve(tlr, b)
        np.testing.assert_allclose(sigma @ x, b, atol=1e-3)

    def test_config_method_flows_through(self, ragged_problem):
        _, _, sigma = ragged_problem
        with use_config(compression_method="aca"):
            tlr = TLRMatrix.from_dense(sigma, 50, acc=1e-8)
        assert np.abs(tlr.to_dense() - sigma).max() < 1e-4


class TestTruncationRules:
    def test_absolute_rule_end_to_end(self, ragged_problem):
        _, _, sigma = ragged_problem
        rel = TLRMatrix.from_dense(sigma, 50, acc=1e-8, rule="relative")
        ab = TLRMatrix.from_dense(sigma, 50, acc=1e-8, rule="absolute")
        # Both satisfy their contracts against the dense matrix.
        assert np.abs(rel.to_dense() - sigma).max() < 1e-6
        assert np.abs(ab.to_dense() - sigma).max() < 1e-6

    def test_accuracy_attribute_recorded(self, ragged_problem):
        _, _, sigma = ragged_problem
        tlr = TLRMatrix.from_dense(sigma, 50, acc=1e-7)
        assert tlr.acc == 1e-7
        # The factorization defaults to the construction accuracy.
        tlr_cholesky(tlr)  # must not raise
