"""Automatic dependency inference (sequential task flow).

StarPU's central contract: tasks submitted in program order with declared
access modes behave *as if* executed sequentially. The tracker enforces
the three hazards on each handle:

* RAW — a reader depends on the last writer;
* WAR — a writer depends on all readers since the last write;
* WAW — a writer depends on the last writer.

Concurrent readers are allowed. The resulting DAG can be exported as a
:mod:`networkx` digraph for analysis (critical path, visualization,
property tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

import networkx as nx

from .task import AccessMode, Task

__all__ = ["DependencyTracker", "build_networkx_dag", "critical_path_length"]


class DependencyTracker:
    """Infers task dependencies from handle access declarations.

    Not thread-safe by itself; the runtime serializes :meth:`register`
    calls under its insertion lock (insertion order *is* program order —
    that is what gives sequential-task-flow semantics).
    """

    def __init__(self) -> None:
        self.tasks: List[Task] = []

    def register(self, task: Task) -> Set[Task]:
        """Record ``task`` and return its direct dependencies.

        Updates per-handle reader/writer bookkeeping as a side effect.
        """
        deps: Set[Task] = set()
        for handle, mode in task.accesses:
            if mode is AccessMode.READ:
                if handle.last_writer is not None:
                    deps.add(handle.last_writer)  # RAW
                handle.readers.append(task)
            else:
                if handle.last_writer is not None:
                    deps.add(handle.last_writer)  # WAW
                deps.update(handle.readers)  # WAR
                handle.last_writer = task
                handle.readers = []
        deps.discard(task)
        task.deps = {d.id for d in deps}
        self.tasks.append(task)
        return deps

    def reset(self) -> None:
        """Forget all recorded tasks (handles keep their payloads)."""
        for task in self.tasks:
            for handle, _ in task.accesses:
                handle.last_writer = None
                handle.readers = []
        self.tasks.clear()


def build_networkx_dag(tasks: Iterable[Task]) -> "nx.DiGraph":
    """Build a networkx DiGraph of the task DAG.

    Nodes are task ids with ``name``, ``priority`` and ``duration``
    attributes; edges point from dependency to dependent.
    """
    g = nx.DiGraph()
    tasks = list(tasks)
    by_id: Dict[int, Task] = {t.id: t for t in tasks}
    for t in tasks:
        g.add_node(t.id, name=t.name, priority=t.priority, duration=t.duration)
    for t in tasks:
        for dep in t.deps:
            if dep in by_id:
                g.add_edge(dep, t.id)
    return g


def critical_path_length(tasks: Iterable[Task]) -> float:
    """Sum of task durations along the longest (time-weighted) path.

    Useful lower bound on any parallel schedule's makespan; tests compare
    it against measured makespans and against the performance model.
    """
    g = build_networkx_dag(tasks)
    if g.number_of_nodes() == 0:
        return 0.0
    dist: Dict[int, float] = {}
    for node in nx.topological_sort(g):
        d = g.nodes[node]["duration"]
        preds = list(g.predecessors(node))
        dist[node] = d + (max(dist[p] for p in preds) if preds else 0.0)
    return max(dist.values())
