"""Figures 6 and 7 — Monte-Carlo estimation accuracy and prediction MSE.

One Monte-Carlo run (per true theta vector) feeds both figures: the
boxplots of estimated parameters (Fig. 6, one row per technique and
parameter) and the boxplots of prediction MSE over 100 held-out points
(Fig. 7). The module exposes a single driver producing both tables so
benches never duplicate the expensive fits.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..mle.montecarlo import (
    DEFAULT_TECHNIQUES,
    MonteCarloResult,
    run_monte_carlo,
    summarize_boxplot,
)
from .common import ResultTable, bench_scale

__all__ = ["PAPER_THETAS", "run_fig6_fig7", "estimation_table", "mse_table"]

#: The three true parameter vectors of Figures 6-7: weak / medium / strong
#: correlation at smoothness 0.5.
PAPER_THETAS: Tuple[Tuple[float, float, float], ...] = (
    (1.0, 0.03, 0.5),
    (1.0, 0.1, 0.5),
    (1.0, 0.3, 0.5),
)

PARAM_NAMES = ("variance (theta1)", "range (theta2)", "smoothness (theta3)")


def _default_sizes() -> tuple[int, int, int]:
    """(n, replicates, maxiter) for the current bench scale."""
    if bench_scale() == "full":
        return 1600, 25, 150
    return 324, 5, 50


def estimation_table(result: MonteCarloResult, theta_label: str) -> ResultTable:
    """Fig. 6 panel row-set: per-technique boxplot stats of each parameter."""
    table = ResultTable(
        title=f"Figure 6 — parameter estimation boxplots, initial theta = {theta_label}",
        headers=["technique", "parameter", "true", "min", "q1", "median", "q3", "max", "mean"],
    )
    for technique, est in result.estimates.items():
        for p, pname in enumerate(PARAM_NAMES):
            stats = summarize_boxplot(est[:, p])
            table.add_row(
                technique,
                pname,
                float(result.theta_true[p]),
                stats["min"],
                stats["q1"],
                stats["median"],
                stats["q3"],
                stats["max"],
                stats["mean"],
            )
    return table


def mse_table(result: MonteCarloResult, theta_label: str) -> ResultTable:
    """Fig. 7 panel: per-technique boxplot stats of the prediction MSE."""
    table = ResultTable(
        title=f"Figure 7 — prediction MSE boxplots, initial theta = {theta_label}",
        headers=["technique", "min", "q1", "median", "q3", "max", "mean"],
    )
    for technique, mses in result.mse.items():
        stats = summarize_boxplot(mses)
        table.add_row(
            technique,
            stats["min"],
            stats["q1"],
            stats["median"],
            stats["q3"],
            stats["max"],
            stats["mean"],
        )
    return table


def run_fig6_fig7(
    *,
    thetas: Sequence[Tuple[float, float, float]] = PAPER_THETAS,
    n: Optional[int] = None,
    n_replicates: Optional[int] = None,
    maxiter: Optional[int] = None,
    techniques=DEFAULT_TECHNIQUES,
    tile_size: Optional[int] = None,
    seed: int = 2018,
) -> Dict[str, Tuple[ResultTable, ResultTable, MonteCarloResult]]:
    """Run the full Monte-Carlo study; returns per-theta (fig6, fig7, raw).

    Sizes default to the current bench scale (paper: n=40,000 with 100
    replicates on a Cray — set ``REPRO_BENCH_SCALE=full`` for the larger
    local study).
    """
    dn, dr, dm = _default_sizes()
    n = dn if n is None else n
    n_replicates = dr if n_replicates is None else n_replicates
    maxiter = dm if maxiter is None else maxiter
    out: Dict[str, Tuple[ResultTable, ResultTable, MonteCarloResult]] = {}
    for theta in thetas:
        label = f"({theta[0]:g}, {theta[1]:g}, {theta[2]:g})"
        result = run_monte_carlo(
            theta,
            n=n,
            n_replicates=n_replicates,
            techniques=techniques,
            tile_size=tile_size,
            maxiter=maxiter,
            seed=seed,
        )
        t6 = estimation_table(result, label)
        t7 = mse_table(result, label)
        t6.add_note(f"n={n}, replicates={n_replicates}, maxiter={maxiter} (paper: 40K x 100)")
        out[label] = (t6, t7, result)
    return out
