#!/usr/bin/env python
"""Fitting-service benchmark: parallel multistart, resume overhead, and
submit-to-reload latency.

Three probes of the :mod:`repro.fitting` subsystem:

* ``multistart`` — the same multistart MLE search run (a) sequentially
  via ``MLEstimator.fit(n_starts=s)`` and (b) fanned out across
  :class:`~repro.fitting.FitOrchestrator` worker processes. The thetas
  must be **bit-identical** (same deterministic start list, same merge
  rule); the speedup column is the point of the fan-out and scales with
  available cores (``cpu_count`` is recorded alongside).
* ``resume`` — one long fit checkpointed mid-run, then resumed from the
  checkpoint in a fresh process-like state: resuming must converge to
  the identical theta while re-paying only the iterations after the
  checkpoint (reported as ``resume_fraction`` of the full wall time).
* ``refit_reload`` — the closed serving loop: ``POST /v1/fit`` against
  a live :class:`~repro.serving.ServingServer` (warm-start refit on new
  observations), polled to completion, hot-reload included — reporting
  the submit→served latency and the number of failed requests under
  concurrent traffic (must be zero).

Results go to ``BENCH_fit_service.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_fit_service.py
    PYTHONPATH=src python benchmarks/bench_fit_service.py --n 400 --starts 4

or through the benchmark suite (small problem):

    PYTHONPATH=src python -m pytest benchmarks/bench_fit_service.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.fitting import FitJobSpec, FitOrchestrator, JobStore
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator
from repro.optim.neldermead import nelder_mead
from repro.serving import ServingClient, ServingServer


def _data(n: int, seed: int = 0, theta=(1.0, 0.1, 0.5)):
    locs, _, _ = sort_locations(generate_irregular_grid(n, seed=seed))
    z = sample_gaussian_field(locs, MaternCovariance(*theta), seed=seed + 1)
    return locs, z


def run_multistart_probe(
    n: int, n_starts: int, maxiter: int, seed: int = 21
) -> dict:
    """Sequential vs process-parallel multistart on identical starts."""
    locs, z = _data(n)

    t0 = time.perf_counter()
    sequential = MLEstimator(locs, z).fit(
        maxiter=maxiter, n_starts=n_starts, seed=seed
    )
    sequential_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(tmp)
        with FitOrchestrator(store, max_workers=n_starts) as orch:
            t0 = time.perf_counter()
            job = orch.submit(
                FitJobSpec(
                    locations=locs, z=z, maxiter=maxiter,
                    n_starts=n_starts, seed=seed, include_factor=False,
                )
            )
            record = orch.wait(job, timeout=3600)
            parallel_s = time.perf_counter() - t0
    assert record["status"] == "done", record.get("error")
    identical = bool(
        np.array_equal(np.asarray(record["result"]["theta"]), sequential.theta)
    )
    return {
        "n": n,
        "n_starts": n_starts,
        "maxiter": maxiter,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": sequential_s,
        "parallel_seconds": parallel_s,
        "speedup": sequential_s / max(1e-12, parallel_s),
        "theta_bit_identical": identical,
        "n_evals": record["result"]["nfev"],
    }


def run_resume_probe(n: int, maxiter: int) -> dict:
    """Kill-at-half-time simulation: resume cost vs the full fit."""
    locs, z = _data(n)
    opts = dict(maxiter=maxiter, ftol=1e-13, xtol=1e-13)  # runs the full budget

    est = MLEstimator(locs, z)
    lower, upper = est.default_bounds()
    from repro.optim.bounds import empirical_start

    x0 = empirical_start(est.z, lower, upper)
    states = []
    t0 = time.perf_counter()
    full = nelder_mead(
        est.evaluator.negative, x0, lower, upper, state_callback=states.append, **opts
    )
    full_s = time.perf_counter() - t0

    checkpoint = states[len(states) // 2]
    resumed_est = MLEstimator(locs, z)  # a fresh process's cold evaluator
    t0 = time.perf_counter()
    resumed = nelder_mead(
        resumed_est.evaluator.negative, None, lower, upper,
        state=checkpoint, **opts
    )
    resume_s = time.perf_counter() - t0
    return {
        "n": n,
        "maxiter": maxiter,
        "checkpoint_iteration": checkpoint.iteration,
        "total_iterations": full.nit,
        "full_seconds": full_s,
        "resume_seconds": resume_s,
        "resume_fraction": resume_s / max(1e-12, full_s),
        "theta_bit_identical": bool(np.array_equal(resumed.x, full.x)),
        "nfev_identical": resumed.nfev == full.nfev,
    }


def run_refit_reload_probe(
    n: int, maxiter: int, num_workers: int = 2, traffic_threads: int = 2
) -> dict:
    """Submit→hot-reload latency over HTTP with traffic; zero failures."""
    locs, z = _data(n)
    est = MLEstimator(locs, z)
    fit = est.fit(maxiter=maxiter)
    z_new = sample_gaussian_field(locs, MaternCovariance(1.6, 0.2, 0.9), seed=17)

    with tempfile.TemporaryDirectory() as tmp:
        bundle = est.save_fit(fit, Path(tmp) / "m.bundle")
        with ServingServer(
            {"m": bundle},
            num_workers=num_workers,
            fit_options={"max_workers": 2, "checkpoint_every": 1},
        ) as server:
            targets = np.ascontiguousarray(np.random.default_rng(3).random((16, 2)))
            stop = threading.Event()
            served = [0]
            failures = [0]

            def hammer() -> None:
                with ServingClient(server.url) as cli:
                    while not stop.is_set():
                        try:
                            cli.predict("m", targets)
                            served[0] += 1
                        except Exception:  # noqa: BLE001 - counted below
                            failures[0] += 1

            threads = [threading.Thread(target=hammer) for _ in range(traffic_threads)]
            for t in threads:
                t.start()
            try:
                with ServingClient(server.url) as cli:
                    t0 = time.perf_counter()
                    job = cli.fit(from_model="m", z=z_new, maxiter=maxiter, seed=5)
                    submit_s = time.perf_counter() - t0
                    record = cli.wait_job(job["job_id"], timeout=3600, poll=0.02)
                    submit_to_reload_s = time.perf_counter() - t0
            finally:
                stop.set()
                for t in threads:
                    t.join()
    return {
        "n": n,
        "maxiter": maxiter,
        "num_workers": num_workers,
        "submit_ms": submit_s * 1e3,
        "submit_to_reload_seconds": submit_to_reload_s,
        "fit_evaluations": record["result"]["nfev"],
        "requests_during_refit": served[0],
        "failed_requests": failures[0],
        "served": bool(record.get("served")),
    }


def run_bench(
    n: int = 400,
    n_starts: int = 4,
    maxiter: int = 60,
    refit_n: int = 196,
    refit_maxiter: int = 40,
    num_workers: int = 2,
) -> dict:
    multistart = run_multistart_probe(n, n_starts, maxiter)
    resume = run_resume_probe(n, maxiter)
    refit = run_refit_reload_probe(refit_n, refit_maxiter, num_workers=num_workers)
    return {
        "summary": {
            "cpu_count": os.cpu_count(),
            "multistart_speedup": multistart["speedup"],
            "resume_fraction": resume["resume_fraction"],
            "submit_to_reload_seconds": refit["submit_to_reload_seconds"],
            "failed_requests_during_refit": refit["failed_requests"],
            "all_bit_identical": (
                multistart["theta_bit_identical"] and resume["theta_bit_identical"]
            ),
        },
        "multistart": multistart,
        "resume": resume,
        "refit_reload": refit,
    }


def write_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the report JSON (default: ``results/BENCH_fit_service.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_fit_service.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_fit_service(outdir):
    """Benchmark-suite entry: small problem, correctness-flavored asserts.

    Parity and zero-failure are asserted unconditionally; wall-clock
    speedup is reported data (it needs free cores — the CI smoke runs on
    multi-core runners, and ``cpu_count`` travels with the number).
    """
    report = run_bench(
        n=256, n_starts=2, maxiter=40, refit_n=144, refit_maxiter=25
    )
    assert report["multistart"]["theta_bit_identical"]
    assert report["resume"]["theta_bit_identical"]
    assert report["resume"]["nfev_identical"]
    # Resuming at ~half-way must cost well under a full re-fit.
    assert report["resume"]["resume_fraction"] < 0.9
    assert report["refit_reload"]["failed_requests"] == 0
    assert report["refit_reload"]["served"]
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=400, help="training-set size")
    parser.add_argument("--starts", type=int, default=4, help="multistart width")
    parser.add_argument("--maxiter", type=int, default=60, help="optimizer budget")
    parser.add_argument("--refit-n", type=int, default=196, help="refit problem size")
    parser.add_argument("--refit-maxiter", type=int, default=40, help="refit budget")
    parser.add_argument("--workers", type=int, default=2, help="serving workers")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(
        n=args.n,
        n_starts=args.starts,
        maxiter=args.maxiter,
        refit_n=args.refit_n,
        refit_maxiter=args.refit_maxiter,
        num_workers=args.workers,
    )
    path = write_report(report, args.out)
    ms, rs, rr = report["multistart"], report["resume"], report["refit_reload"]
    print(f"wrote {path}")
    print(
        f"multistart (n={ms['n']}, {ms['n_starts']} starts, "
        f"{ms['cpu_count']} cores): sequential {ms['sequential_seconds']:.2f}s, "
        f"parallel {ms['parallel_seconds']:.2f}s → {ms['speedup']:.2f}x, "
        f"bit-identical: {ms['theta_bit_identical']}"
    )
    print(
        f"resume (checkpoint at it {rs['checkpoint_iteration']}/"
        f"{rs['total_iterations']}): full {rs['full_seconds']:.2f}s, "
        f"resume {rs['resume_seconds']:.2f}s "
        f"({rs['resume_fraction']:.2f} of full), "
        f"bit-identical: {rs['theta_bit_identical']}"
    )
    print(
        f"refit→reload (n={rr['n']}): submit {rr['submit_ms']:.0f} ms, "
        f"submit→served {rr['submit_to_reload_seconds']:.2f}s, "
        f"{rr['requests_during_refit']} requests under refit, "
        f"{rr['failed_requests']} failed"
    )


if __name__ == "__main__":
    main()
