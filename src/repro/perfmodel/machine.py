"""Shared-memory machine descriptions (paper §VIII-A).

Specs follow the paper's experimental platforms. Peak double-precision
GFLOP/s is ``cores x GHz x flops-per-cycle``; sustained efficiencies are
the standard fractions of peak that dense GEMM-dominated tile kernels
reach in practice (lower on KNL, whose AVX-512 peak is hard to sustain).
The paper's "Full-block" LAPACK baseline additionally suffers fork-join
synchronization, modeled as a lower efficiency — this reproduces the
Full-block > Full-tile ordering of Figure 3 without per-machine tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import ConfigurationError

__all__ = ["MachineSpec", "MACHINES", "get_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory compute node.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"haswell"``).
    cores:
        Physical cores.
    freq_ghz:
        Nominal clock.
    flops_per_cycle:
        Double-precision flops per cycle per core (FMA x vector width).
    eff_dense:
        Sustained fraction of peak for dense tile kernels (GEMM-bound).
    eff_block:
        Sustained fraction of peak for the fork-join LAPACK baseline.
    eff_lr:
        Sustained fraction of peak for low-rank (TLR) kernels: skinny
        GEMMs, thin QRs and small SVDs run far from GEMM efficiency —
        the paper calls this workload "close to the memory-bound
        regime". Combined with the bandwidth roof this term reproduces
        the per-machine speedup ordering of Figure 3 (KNL's high-
        bandwidth MCDRAM benefits TLR most, Skylake least).
    mem_bw_gbs:
        Achievable memory bandwidth, GB/s (STREAM-like).
    mem_gb:
        Usable DRAM capacity, GB.
    eff_gen:
        Sustained fraction of peak for covariance *generation* kernels
        (transcendental-heavy Matérn evaluation). ``None`` — the preset
        machines — means "use the historical ``eff_dense / 2`` guess";
        a calibrated profile (:mod:`repro.perfmodel.autotune`) measures
        it directly on the host.
    """

    name: str
    cores: int
    freq_ghz: float
    flops_per_cycle: int
    eff_dense: float
    eff_block: float
    eff_lr: float
    mem_bw_gbs: float
    mem_gb: float
    eff_gen: Optional[float] = None

    @property
    def peak_gflops(self) -> float:
        """Theoretical double-precision peak, GFLOP/s."""
        return self.cores * self.freq_ghz * self.flops_per_cycle

    @property
    def mem_bytes(self) -> float:
        """Usable memory in bytes."""
        return self.mem_gb * 1e9

    def sustained_gflops(self, efficiency: float) -> float:
        """Peak scaled by an efficiency fraction."""
        return self.peak_gflops * efficiency

    @property
    def gen_efficiency(self) -> float:
        """Generation-kernel efficiency, with the ``eff_dense/2`` fallback."""
        return self.eff_gen if self.eff_gen is not None else self.eff_dense * 0.5


#: The paper's shared-memory platforms (§VIII-A) plus the Shaheen-2 node.
MACHINES: Dict[str, MachineSpec] = {
    # Dual-socket 18-core Intel Haswell Xeon E5-2698 v3, 2.3 GHz, AVX2 FMA.
    "haswell": MachineSpec("haswell", 36, 2.3, 16, 0.80, 0.55, 0.25, 120.0, 256.0),
    # Dual-socket 14-core Intel Broadwell Xeon E5-2680 v4, 2.4 GHz.
    "broadwell": MachineSpec("broadwell", 28, 2.4, 16, 0.80, 0.55, 0.36, 130.0, 256.0),
    # Intel Knights Landing 7210, 64 cores, 1.3 GHz, AVX-512 (2 VPUs).
    "knl": MachineSpec("knl", 64, 1.3, 32, 0.55, 0.30, 0.33, 380.0, 208.0),
    # Dual-socket 28-core Intel Skylake Xeon Platinum 8176, 2.1 GHz, AVX-512.
    "skylake": MachineSpec("skylake", 56, 2.1, 32, 0.75, 0.50, 0.17, 220.0, 256.0),
    # Dual-socket 8-core Intel Sandy Bridge Xeon E5-2650, 2.0 GHz, AVX.
    "sandybridge": MachineSpec("sandybridge", 16, 2.0, 8, 0.80, 0.55, 0.25, 70.0, 128.0),
    # Shaheen-2 Cray XC40 node: dual-socket 16-core Haswell, 2.3 GHz, 128 GB.
    "shaheen_node": MachineSpec("shaheen_node", 32, 2.3, 16, 0.80, 0.55, 0.25, 115.0, 128.0),
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None
