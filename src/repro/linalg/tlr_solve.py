"""Triangular solves against a TLR Cholesky factor (paper eq. (1), (4)).

Block forward/backward substitution where every off-diagonal contribution
is applied through the low-rank factors: ``A_ij @ x_j`` costs two skinny
GEMMs (``O(k nb m)``) instead of a dense ``O(nb^2 m)``. Both the MLE
(``Sigma^{-1} z``) and the prediction operation (eq. (4), 100 right-hand
sides) reduce to these solves after the TLR factorization.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..exceptions import ShapeError
from .tlr_matrix import TLRMatrix

__all__ = ["tlr_solve_triangular", "tlr_cholesky_solve"]


def tlr_solve_triangular(
    factor: TLRMatrix, b: np.ndarray, *, trans: bool = False
) -> np.ndarray:
    """Solve ``L x = b`` (or ``L^T x = b``) against a TLR factor.

    Parameters
    ----------
    factor:
        Lower TLR Cholesky factor from :func:`~repro.linalg.tlr_cholesky`.
    b:
        ``(n,)`` or ``(n, m)`` right-hand side (not modified).
    trans:
        Solve with ``L^T`` instead of ``L``.

    Returns
    -------
    Solution array with the same shape as ``b``.
    """
    g = factor.grid
    if b.shape[0] != g.n:
        raise ShapeError(f"rhs leading dimension {b.shape[0]} != {g.n}")
    blocks = g.partition(np.asarray(b, dtype=np.float64))
    nt = g.nt
    if not trans:
        for i in range(nt):
            for j in range(i):
                lr = factor.low[(i, j)]
                if lr.rank:
                    blocks[i] -= lr.u @ (lr.v @ blocks[j])
            blocks[i] = sla.solve_triangular(
                factor.diag[i], blocks[i], lower=True, check_finite=False
            )
    else:
        for i in range(nt - 1, -1, -1):
            for j in range(i + 1, nt):
                lr = factor.low[(j, i)]  # (L^T)_ij = (L_ji)^T = V^T U^T
                if lr.rank:
                    blocks[i] -= lr.v.T @ (lr.u.T @ blocks[j])
            blocks[i] = sla.solve_triangular(
                factor.diag[i], blocks[i], lower=True, trans="T", check_finite=False
            )
    return g.unpartition(blocks)


def tlr_cholesky_solve(factor: TLRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from the TLR factor (forward then backward)."""
    y = tlr_solve_triangular(factor, b, trans=False)
    return tlr_solve_triangular(factor, y, trans=True)
