"""Geographic regions and bounding-box partitioning (paper §VIII-D.2).

The paper divides the soil-moisture map into eight regions (R1-R8) and the
wind-speed map into four (R1-R4), each holding about 250K locations, and
fits an independent Matérn model per region. This module provides the
bounding-box :class:`Region` abstraction and grid partitioning used by the
dataset substitutes and the Table I/II benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import check_locations

__all__ = ["Region", "partition_bbox", "points_in_region"]


@dataclass(frozen=True)
class Region:
    """A named axis-aligned bounding box in (lon, lat) or (x, y) space.

    Attributes
    ----------
    name:
        Label, e.g. ``"R1"``.
    lon_min, lon_max, lat_min, lat_max:
        Box edges. Points on the max edges belong to the region only for
        the last region in each axis direction (handled by the caller via
        half-open boxes; :func:`points_in_region` treats boxes as closed,
        which is adequate for scattered continuous coordinates).
    """

    name: str
    lon_min: float
    lon_max: float
    lat_min: float
    lat_max: float

    def __post_init__(self) -> None:
        if not (self.lon_max > self.lon_min and self.lat_max > self.lat_min):
            raise ShapeError(f"degenerate region bounds for {self.name}: {self}")

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """``(lon_min, lon_max, lat_min, lat_max)``."""
        return (self.lon_min, self.lon_max, self.lat_min, self.lat_max)

    @property
    def center(self) -> Tuple[float, float]:
        """Region centroid ``(lon, lat)``."""
        return (0.5 * (self.lon_min + self.lon_max), 0.5 * (self.lat_min + self.lat_max))

    @property
    def area(self) -> float:
        """Planar area of the box (degrees², or unit² for planar coords)."""
        return (self.lon_max - self.lon_min) * (self.lat_max - self.lat_min)

    def contains(self, lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the (closed) box."""
        lon = np.asarray(lon, dtype=np.float64)
        lat = np.asarray(lat, dtype=np.float64)
        return (
            (lon >= self.lon_min)
            & (lon <= self.lon_max)
            & (lat >= self.lat_min)
            & (lat <= self.lat_max)
        )


def partition_bbox(
    bbox: Tuple[float, float, float, float],
    nx: int,
    ny: int,
    *,
    prefix: str = "R",
    start_index: int = 1,
) -> List[Region]:
    """Split a bounding box into an ``nx x ny`` grid of named regions.

    Regions are numbered row-major from ``start_index`` (paper's maps use
    R1..R8 and R1..R4), scanning longitude fastest, matching the
    left-to-right, bottom-to-top layout of the paper's Figure 8.
    """
    if nx < 1 or ny < 1:
        raise ShapeError(f"nx and ny must be >= 1, got {nx}, {ny}")
    lon_min, lon_max, lat_min, lat_max = map(float, bbox)
    if not (lon_max > lon_min and lat_max > lat_min):
        raise ShapeError(f"invalid bbox {bbox}")
    lons = np.linspace(lon_min, lon_max, nx + 1)
    lats = np.linspace(lat_min, lat_max, ny + 1)
    regions: List[Region] = []
    idx = start_index
    for j in range(ny):
        for i in range(nx):
            regions.append(
                Region(
                    name=f"{prefix}{idx}",
                    lon_min=float(lons[i]),
                    lon_max=float(lons[i + 1]),
                    lat_min=float(lats[j]),
                    lat_max=float(lats[j + 1]),
                )
            )
            idx += 1
    return regions


def points_in_region(locations: np.ndarray, region: Region) -> np.ndarray:
    """Indices of ``(lon, lat)`` rows that fall inside ``region``."""
    pts = check_locations(locations, "locations")
    if pts.shape[1] != 2:
        raise ShapeError("regions operate on (lon, lat) pairs")
    mask = region.contains(pts[:, 0], pts[:, 1])
    return np.nonzero(mask)[0]
