"""Tests for validation, timing, RNG, logging, and config utilities."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import Config, get_config, reset_config, set_config, use_config
from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import StageTimes, Stopwatch, timed
from repro.utils.logging import get_logger
from repro.utils.validation import (
    as_float_array,
    check_locations,
    check_positive,
    check_square,
    check_symmetric,
    check_vector,
)


class TestValidation:
    def test_as_float_array_conversion(self):
        arr = as_float_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ShapeError):
            as_float_array([1.0, np.nan])
        with pytest.raises(ShapeError):
            as_float_array([1.0, np.inf])

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ShapeError):
            check_positive(0.0, "x")
        with pytest.raises(ShapeError):
            check_positive(-1.0, "x", strict=False)

    def test_check_square_symmetric(self, rng):
        a = rng.random((4, 4))
        check_square(a)
        with pytest.raises(ShapeError):
            check_square(rng.random((3, 4)))
        s = a + a.T
        check_symmetric(s)
        with pytest.raises(ShapeError):
            check_symmetric(a + np.eye(4))

    def test_check_vector(self, rng):
        v = rng.random(5)
        check_vector(v, 5)
        with pytest.raises(ShapeError):
            check_vector(v, 6)
        with pytest.raises(ShapeError):
            check_vector(rng.random((2, 2)))

    def test_check_locations(self, rng):
        pts = check_locations(rng.random(7))
        assert pts.shape == (7, 1)
        with pytest.raises(ShapeError):
            check_locations(rng.random((3, 4)))
        with pytest.raises(ShapeError):
            check_locations(np.empty((0, 2)))


class TestTimers:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        with sw:
            time.sleep(0.01)
        assert sw.calls == 2
        assert sw.elapsed >= 0.015
        sw.reset()
        assert sw.elapsed == 0.0 and sw.calls == 0

    def test_stage_times(self):
        st = StageTimes()
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("a"):
            pass
        with st.stage("b"):
            pass
        assert set(st.stages) == {"a", "b"}
        assert st.total() == pytest.approx(sum(st.stages.values()))
        row = st.as_row()
        assert "total" in row

    def test_merge(self):
        a, b = StageTimes({"x": 1.0}), StageTimes({"x": 2.0, "y": 3.0})
        merged = a.merged_with(b)
        assert merged.stages == {"x": 3.0, "y": 3.0}

    def test_timed_context(self):
        with timed() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004


class TestRng:
    def test_as_generator_normalization(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_default_seed_is_configured(self):
        with use_config(rng_seed=777):
            a = as_generator(None).random(4)
            b = as_generator(None).random(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_independent_streams(self):
        gens = spawn_generators(4, seed=9)
        draws = [g.random(10) for g in gens]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_spawn_reproducible(self):
        a = [g.random(3) for g in spawn_generators(3, seed=1)]
        b = [g.random(3) for g in spawn_generators(3, seed=1)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_generators(-1)


class TestConfig:
    def test_defaults_valid(self):
        cfg = Config()
        assert cfg.tile_size >= 2
        assert cfg.resolved_workers() >= 1

    def test_validation_errors(self):
        for bad in (
            dict(tile_size=1),
            dict(tlr_accuracy=0.0),
            dict(tlr_accuracy=2.0),
            dict(compression_method="qr"),
            dict(truncation="weird"),
            dict(num_workers=-1),
            dict(runtime_engine="gpu"),
            dict(cholesky_jitter=-1e-3),
        ):
            with pytest.raises(ConfigurationError):
                Config(**bad)  # type: ignore[arg-type]

    def test_use_config_scoped(self):
        reset_config()
        base = get_config().tile_size
        with use_config(tile_size=99):
            assert get_config().tile_size == 99
            with use_config(tlr_accuracy=1e-5):
                assert get_config().tile_size == 99
                assert get_config().tlr_accuracy == 1e-5
        assert get_config().tile_size == base

    def test_use_config_restores_on_error(self):
        reset_config()
        base = get_config().tile_size
        with pytest.raises(RuntimeError):
            with use_config(tile_size=77):
                raise RuntimeError("boom")
        assert get_config().tile_size == base

    def test_set_config_validates(self):
        cfg = Config()
        object.__setattr__(cfg, "tile_size", 1)
        with pytest.raises(ConfigurationError):
            set_config(cfg)
        reset_config()


class TestLogging:
    def test_logger_namespace(self):
        log = get_logger("unit")
        assert log.name == "repro.unit"
        log.debug("message does not raise")
