"""Process-local metrics registry: counters, gauges, histograms.

Each process (router, every serving worker, fit legs) owns one
:class:`MetricsRegistry`; instruments are cheap enough to update
unconditionally (a dict-free attribute add under the GIL). The router
pulls worker snapshots over the existing ``metrics`` pipe op and
:func:`MetricsRegistry.merge`\\ s them, so ``/v1/metrics`` shows fleet
totals and ``?format=prometheus`` renders one exposition for the whole
server.

Histograms use **explicit** bucket upper bounds (Prometheus
``le``-style, cumulative at export time) so percentile-ish questions
("how many predicts were over 100 ms?") survive cross-process
aggregation, which a quantile sketch would not without a merge
protocol.

:class:`~repro.serving.metrics.ServiceMetrics` remains the serving
API, but is now a compatibility façade that mirrors into this
registry — its snapshot/percentile behavior is unchanged.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import TelemetryError

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
]

# Powers-of-~3 from 1 ms to 30 s: wide enough for a cold TLR factorize,
# fine enough to see batching effects at the fast end.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
)


class Counter:
    """Monotonically increasing value. ``inc`` is GIL-atomic enough."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease (by={by})")
        self._value += by

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, warm engines)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, by: float = 1.0) -> None:
        self._value += by

    def dec(self, by: float = 1.0) -> None:
        self._value -= by

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed explicit-bucket histogram (per-bucket counts + sum/count)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> None:
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS)))
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Get-or-create instrument registry; one per process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise TelemetryError(
                    f"metric {name!r} already registered as a {other}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._claim(name, "counter")
                c = self._counters[name] = Counter(name, help)
            return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._claim(name, "gauge")
                g = self._gauges[name] = Gauge(name, help)
            return g

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._claim(name, "histogram")
                h = self._histograms[name] = Histogram(name, buckets, help)
            elif buckets is not None and tuple(sorted(map(float, buckets))) != h.buckets:
                raise TelemetryError(
                    f"histogram {name!r} re-registered with different buckets"
                )
            return h

    def snapshot(self) -> Dict[str, Any]:
        """A picklable point-in-time view (crosses the worker pipe)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: h.snapshot() for n, h in self._histograms.items()
                },
                "help": {
                    **{n: c.help for n, c in self._counters.items() if c.help},
                    **{n: g.help for n, g in self._gauges.items() if g.help},
                    **{n: h.help for n, h in self._histograms.items() if h.help},
                },
            }

    @staticmethod
    def merge(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
        """Sum counters/histograms (and gauges — ours are additive:
        queue depths, warm-engine counts) across process snapshots.

        Histograms with mismatched bucket bounds keep the first
        process's bounds and fold the other's total into ``sum`` /
        ``count`` only — a version-skew guard, not an expected path.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        help_text: Dict[str, str] = {}
        for snap in snapshots:
            if not snap:
                continue
            for n, v in snap.get("counters", {}).items():
                counters[n] = counters.get(n, 0.0) + v
            for n, v in snap.get("gauges", {}).items():
                gauges[n] = gauges.get(n, 0.0) + v
            for n, h in snap.get("histograms", {}).items():
                agg = histograms.get(n)
                if agg is None:
                    histograms[n] = {
                        "buckets": list(h["buckets"]),
                        "counts": list(h["counts"]),
                        "sum": h["sum"],
                        "count": h["count"],
                    }
                elif agg["buckets"] == list(h["buckets"]):
                    agg["counts"] = [
                        a + b for a, b in zip(agg["counts"], h["counts"])
                    ]
                    agg["sum"] += h["sum"]
                    agg["count"] += h["count"]
                else:
                    agg["sum"] += h["sum"]
                    agg["count"] += h["count"]
            help_text.update(snap.get("help", {}))
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "help": help_text,
        }


_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Test hook: replace the process registry with a fresh one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        _REGISTRY = MetricsRegistry()
        return _REGISTRY
