#!/usr/bin/env python
"""Generation-pipeline benchmark: distance caching + fused parallel generation.

Measures the per-stage cost (``StageTimes``: generation / factorization /
solve) of repeated likelihood evaluations — the MLE hot loop — under three
configurations of the same TLR problem:

* ``seed``            — no distance cache, serial generation, serial
  factorization (the repository's original behavior);
* ``cached``          — :class:`~repro.linalg.generation.TileDistanceCache`
  on, still serial (isolates the cache's amortization of the
  pairwise-distance work from the second evaluation onward);
* ``cached+parallel`` — cache on *and* generation fused into the
  factorization task graph of a :class:`~repro.runtime.Runtime`
  (generation stage = task submission; the generate+compress work
  overlaps the factorization).

All three produce identical log-likelihoods (asserted to 1e-10 relative;
with the deterministic SVD compressor they are bit-identical). Results —
per-evaluation stage breakdowns, speedups, and parity evidence — are
written to ``BENCH_generation.json``.

Run as a script (paper-scale: 3600 points):

    PYTHONPATH=src python benchmarks/bench_generation_pipeline.py
    PYTHONPATH=src python benchmarks/bench_generation_pipeline.py --n 900 --tile-size 150

or through the benchmark suite (small problem):

    PYTHONPATH=src python -m pytest benchmarks/bench_generation_pipeline.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle.loglik import LikelihoodEvaluator
from repro.runtime import Runtime

#: (variance, range) multipliers replayed per configuration — a stand-in
#: for the optimizer's trial points (the first evaluation pays any
#: one-time costs). Smoothness stays at nu = 0.5 so every evaluation uses
#: the same correlation code path (the generic-nu Bessel branch is ~30x
#: costlier than the exponential special case and would swamp the
#: pipeline effect being measured; the cache's absolute saving is the
#: same either way).
THETA_SCALES = (1.0, 1.15, 0.9, 1.05)


def _trial_thetas(model, n_evals: int):
    thetas = []
    for s in THETA_SCALES[:n_evals]:
        theta = model.theta.copy()
        theta[:2] *= s
        thetas.append(theta)
    return thetas


def _evaluate(ev: LikelihoodEvaluator, thetas) -> dict:
    """Run ``ev`` over ``thetas``; return per-eval stage times and logliks."""
    evals = []
    for theta in thetas:
        before = dict(ev.times.stages)
        loglik = ev(theta)
        after = ev.times.stages
        stages = {k: after.get(k, 0.0) - before.get(k, 0.0) for k in after}
        stages["total"] = sum(stages.values())
        evals.append({"stages": stages, "loglik": loglik})
    return {"evals": evals, "cumulative_stages": ev.times.as_row()}


def run_bench(
    n: int = 3600,
    tile_size: int = 300,
    acc: float = 1e-9,
    n_evals: int = len(THETA_SCALES),
    num_workers: Optional[int] = None,
    variant: str = "tlr",
) -> dict:
    """Benchmark the three pipeline configurations on one synthetic problem."""
    locs = generate_irregular_grid(n, seed=0)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=1)
    thetas = _trial_thetas(model, n_evals)

    common = dict(variant=variant, acc=acc, tile_size=tile_size)
    results = {}

    seed_ev = LikelihoodEvaluator(
        locs, z, model, cache_distances=False, parallel_generation=False, **common
    )
    results["seed"] = _evaluate(seed_ev, thetas)

    cached_ev = LikelihoodEvaluator(
        locs, z, model, cache_distances=True, parallel_generation=False, **common
    )
    results["cached"] = _evaluate(cached_ev, thetas)

    with Runtime(num_workers=num_workers) as rt:
        fused_ev = LikelihoodEvaluator(
            locs, z, model, runtime=rt,
            cache_distances=True, parallel_generation=True, **common
        )
        results["cached+parallel"] = _evaluate(fused_ev, thetas)
        workers = rt.num_workers

    # ---------------------------------------------------------------- parity
    seed_logliks = np.array([e["loglik"] for e in results["seed"]["evals"]])
    max_rel_err = 0.0
    for config in ("cached", "cached+parallel"):
        logliks = np.array([e["loglik"] for e in results[config]["evals"]])
        rel = float(np.max(np.abs(logliks - seed_logliks) / np.abs(seed_logliks)))
        results[config]["max_rel_loglik_err_vs_seed"] = rel
        max_rel_err = max(max_rel_err, rel)

    # ------------------------------------------------------------- speedups
    def stage_after_first(config: str, stage: str) -> float:
        return sum(e["stages"][stage] for e in results[config]["evals"][1:])

    def total_after_first(config: str) -> float:
        return sum(e["stages"]["total"] for e in results[config]["evals"][1:])

    gen_seed = stage_after_first("seed", "generation")
    summary = {
        "n": n,
        "tile_size": tile_size,
        "acc": acc,
        "variant": variant,
        "n_evals": len(thetas),
        "num_workers": workers,
        "max_rel_loglik_err_vs_seed": max_rel_err,
        "generation_stage_seconds_evals_2plus": {
            c: stage_after_first(c, "generation") for c in results
        },
        "total_seconds_evals_2plus": {c: total_after_first(c) for c in results},
        "generation_speedup_cached_vs_seed": gen_seed
        / max(1e-12, stage_after_first("cached", "generation")),
        "generation_speedup_cached_parallel_vs_seed": gen_seed
        / max(1e-12, stage_after_first("cached+parallel", "generation")),
        "total_speedup_cached_parallel_vs_seed": total_after_first("seed")
        / max(1e-12, total_after_first("cached+parallel")),
    }
    return {"summary": summary, "configs": results}


def write_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the benchmark report JSON (default: ``results/BENCH_generation.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_generation.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_generation_pipeline(outdir):
    """Benchmark-suite entry: small problem, parity + speedup assertions."""
    report = run_bench(n=900, tile_size=150, n_evals=3)
    summary = report["summary"]
    assert summary["max_rel_loglik_err_vs_seed"] <= 1e-10
    assert summary["generation_speedup_cached_parallel_vs_seed"] >= 2.0
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=3600, help="number of locations")
    parser.add_argument("--tile-size", type=int, default=300, help="tile size nb")
    parser.add_argument("--acc", type=float, default=1e-9, help="TLR accuracy")
    parser.add_argument("--evals", type=int, default=len(THETA_SCALES), help="likelihood evaluations per config")
    parser.add_argument("--workers", type=int, default=None, help="runtime worker threads")
    parser.add_argument("--variant", default="tlr", choices=("tlr", "full-tile"))
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(
        n=args.n,
        tile_size=args.tile_size,
        acc=args.acc,
        n_evals=args.evals,
        num_workers=args.workers,
        variant=args.variant,
    )
    path = write_report(report, args.out)
    s = report["summary"]
    print(f"wrote {path}")
    print(
        f"n={s['n']} nb={s['tile_size']} variant={s['variant']} "
        f"workers={s['num_workers']} evals={s['n_evals']}"
    )
    print(f"max relative loglik error vs seed: {s['max_rel_loglik_err_vs_seed']:.2e}")
    for c, t in s["generation_stage_seconds_evals_2plus"].items():
        print(f"  generation (evals 2+) {c:>16}: {t:8.3f} s")
    print(
        "generation speedup (cached vs seed):          "
        f"{s['generation_speedup_cached_vs_seed']:.2f}x"
    )
    print(
        "generation speedup (cached+parallel vs seed): "
        f"{s['generation_speedup_cached_parallel_vs_seed']:.2f}x"
    )
    print(
        "total speedup (cached+parallel vs seed):      "
        f"{s['total_speedup_cached_parallel_vs_seed']:.2f}x"
    )


if __name__ == "__main__":
    main()
