"""Linear algebra substrates (paper §V).

Three families, mirroring the paper's three computation variants:

* ``blocklapack`` — the **Full-block** reference (LAPACK-style dense
  Cholesky via scipy; the paper's Intel MKL baseline);
* ``tile_*`` — the **Full-tile** dense tile algorithms (Chameleon
  substitute): tile matrices, task-based tile Cholesky, tile solves;
* ``compression`` + ``tlr_*`` — the **TLR** data format and algorithms
  (HiCMA substitute): per-tile low-rank compression (SVD / RSVD / ACA),
  TLR Cholesky with recompression, TLR solves and matvec.

``generation`` is the covariance *generation pipeline* shared by the tile
and TLR variants: a per-fit :class:`~repro.linalg.generation.TileDistanceCache`
amortizing pairwise-distance work across likelihood evaluations, and
task-parallel generation fused into the factorization task graph.
"""

from .blocklapack import (
    block_cholesky,
    block_cholesky_solve,
    block_logdet_from_factor,
)
from .tile_matrix import TileGrid, TileMatrix
from .tile_cholesky import tile_cholesky, logdet_from_tile_factor
from .tile_solve import tile_cholesky_solve, tile_solve_triangular
from .compression import LowRank, compress, recompress, lr_add
from .tlr_matrix import TLRMatrix
from .tlr_cholesky import tlr_cholesky, logdet_from_tlr_factor
from .tlr_solve import tlr_cholesky_solve, tlr_solve_triangular
from .tlr_matvec import tlr_symmetric_matvec
from .generation import (
    CrossDistanceCache,
    TileDistanceCache,
    empty_tile_matrix,
    empty_tlr_matrix,
    generate_and_factor_tile_matrix,
    generate_and_factor_tlr_matrix,
    generate_tile_matrix,
    generate_tlr_matrix,
    insert_tile_generation_tasks,
    insert_tlr_generation_tasks,
)

__all__ = [
    "CrossDistanceCache",
    "TileDistanceCache",
    "empty_tile_matrix",
    "empty_tlr_matrix",
    "generate_tile_matrix",
    "generate_tlr_matrix",
    "generate_and_factor_tile_matrix",
    "generate_and_factor_tlr_matrix",
    "insert_tile_generation_tasks",
    "insert_tlr_generation_tasks",
    "block_cholesky",
    "block_cholesky_solve",
    "block_logdet_from_factor",
    "TileGrid",
    "TileMatrix",
    "tile_cholesky",
    "logdet_from_tile_factor",
    "tile_cholesky_solve",
    "tile_solve_triangular",
    "LowRank",
    "compress",
    "recompress",
    "lr_add",
    "TLRMatrix",
    "tlr_cholesky",
    "logdet_from_tlr_factor",
    "tlr_cholesky_solve",
    "tlr_solve_triangular",
    "tlr_symmetric_matvec",
]
