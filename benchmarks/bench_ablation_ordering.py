"""Ablation bench — Morton ordering vs TLR compressibility.

ExaGeoStat Morton-orders locations before tiling; this bench quantifies
how much rank/memory that ordering saves against natural and random
orderings.
"""

from __future__ import annotations

from repro.experiments.ablation import ordering_study


def test_ablation_ordering(benchmark, outdir):
    """Writes the ordering-comparison table; Morton must win."""
    table = benchmark.pedantic(ordering_study, rounds=1, iterations=1)
    table.save("ablation_ordering")
    rows = {row[0]: row for row in table.rows}
    # Morton mean rank <= random-permutation mean rank.
    assert rows["morton"][2] <= rows["random permutation"][2]
