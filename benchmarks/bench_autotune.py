#!/usr/bin/env python
"""Autotune benchmark: does the calibrated model predict real phase times?

The planner's whole value rests on one claim — constants fitted from
second-scale micro-probes predict the phase times of *real* workloads.
This benchmark closes that loop on the current host:

* **calibrate** — run the full probe suite (:func:`repro.perfmodel.autotune`)
  and record the fitted constants and the probe wall time;
* **plan vs measured** — for two workloads at ``n≈900`` (a dense-tile
  and a TLR configuration), compare the planner's predicted
  fit-iteration and prediction totals against a measured
  :class:`~repro.mle.loglik.LikelihoodEvaluator` evaluation and a
  kriging solve. The **2x band** (0.5 ≤ predicted/measured ≤ 2.0) is
  asserted — the paper-model tradition of "right to within a factor of
  two beats wrong to within an order of magnitude";
* **plan over HTTP** — boot a :class:`~repro.serving.ServingServer`
  on the freshly saved profile and fetch ``GET /v1/plan`` end to end.

Results go to ``BENCH_autotune.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_autotune.py

or through the benchmark suite (same sizes — calibration is cheap):

    PYTHONPATH=src python -m pytest benchmarks/bench_autotune.py -q
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.mle.loglik import LikelihoodEvaluator
from repro.perfmodel.autotune import autotune
from repro.perfmodel.planner import Planner, predict_workload
from repro.serving import ServingClient, ServingServer

THETA = (1.0, 0.1, 0.5)

# TLR tile ladder for the plan-accuracy workload: capped so n=900 keeps
# several tiles per side (an uncapped search may pick nb=n, a degenerate
# single dense tile that exercises no TLR machinery).
TLR_TILE_SIZES = (96, 128, 192, 256, 300)


def run_calibration(sizes, repeats: int, seed: int) -> dict:
    t0 = time.perf_counter()
    profile = autotune(sizes=tuple(sizes), repeats=repeats, seed=seed)
    wall = time.perf_counter() - t0
    return {
        "profile": profile,
        "probe_wall_s": wall,
        "constants": dict(profile.constants),
        "sizes": list(sizes),
        "repeats": repeats,
    }


def measure_workload(
    profile, n: int, m: int, *, variant: str, nb: int, acc: Optional[float]
) -> dict:
    """Measured vs predicted phase times for one (variant, nb, acc) config."""
    locs, _, _ = sort_locations(generate_irregular_grid(n, seed=0))
    model = MaternCovariance(*THETA)
    z = sample_gaussian_field(locs, model, seed=1)
    targets = generate_irregular_grid(m, seed=7)

    evaluator = LikelihoodEvaluator(
        locs, z, model, variant=variant, acc=acc, tile_size=nb
    )
    t0 = time.perf_counter()
    loglik = evaluator(np.asarray(THETA, dtype=float))
    fit_wall = time.perf_counter() - t0
    measured_fit = dict(evaluator.times.stages)

    engine = PredictionEngine(
        locs, z, model, variant=variant, acc=acc, tile_size=nb
    )
    t0 = time.perf_counter()
    engine.predict(targets)
    predict_wall = time.perf_counter() - t0

    eff_acc = acc if acc is not None else 1e-9
    predicted = predict_workload(
        profile, n, variant=variant, nb=nb, acc=eff_acc, m=m
    )
    pred_fit_s = predicted["fit_iteration"]["total_s"]
    pred_predict_s = predicted["predict"]["total_s"]

    return {
        "n": n,
        "m": m,
        "variant": variant,
        "tile_size": nb,
        "accuracy": acc,
        "loglik": float(loglik),
        "measured": {
            "fit_total_s": fit_wall,
            "fit_stages_s": measured_fit,
            "predict_total_s": predict_wall,
        },
        "predicted": {
            "fit_total_s": pred_fit_s,
            "fit_phases_s": predicted["fit_iteration"]["phases"],
            "predict_total_s": pred_predict_s,
        },
        "ratio": {
            "fit": pred_fit_s / fit_wall,
            "predict": pred_predict_s / predict_wall,
        },
    }


def run_plan_http(profile) -> dict:
    """Save the profile, serve plans from it, fetch one over HTTP."""
    with tempfile.TemporaryDirectory() as tmp:
        path = profile.save(Path(tmp) / "profile.json")
        t0 = time.perf_counter()
        with ServingServer(
            models={}, num_workers=1, calibration_profile=path
        ) as server:
            client = ServingClient(server.url)
            t1 = time.perf_counter()
            payload = client.plan(900)
            plan_latency = time.perf_counter() - t1
        return {
            "boot_s": t1 - t0,
            "plan_latency_s": plan_latency,
            "config": payload["config"],
            "predicted_fit_total_s": payload["predicted"]["fit_iteration"]["total_s"],
        }


def run_bench(
    *, n: int = 900, m: int = 100, sizes=(64, 128, 256), repeats: int = 3, seed: int = 0
) -> dict:
    calib = run_calibration(sizes, repeats, seed)
    profile = calib.pop("profile")
    planner = Planner(profile)

    # Workload 1: dense tiles at the planner's own choice of nb.
    tile_plan = planner.plan(n, m=m, substrate="full-tile")
    tile = measure_workload(
        profile, n, m, variant="full-tile", nb=tile_plan.tile_size, acc=None
    )

    # Workload 2: TLR at the planner's choice over a capped ladder.
    tlr_plan = planner.plan(
        n, m=m, substrate="tlr", tile_sizes=TLR_TILE_SIZES
    )
    tlr = measure_workload(
        profile, n, m, variant="tlr", nb=tlr_plan.tile_size, acc=tlr_plan.accuracy
    )

    http = run_plan_http(profile)

    ratios = [
        tile["ratio"]["fit"],
        tile["ratio"]["predict"],
        tlr["ratio"]["fit"],
        tlr["ratio"]["predict"],
    ]
    return {
        "summary": {
            "probe_wall_s": calib["probe_wall_s"],
            "constants": calib["constants"],
            "worst_ratio": max(max(r, 1.0 / r) for r in ratios),
            "all_within_2x": all(0.5 <= r <= 2.0 for r in ratios),
            "plan_http_latency_s": http["plan_latency_s"],
        },
        "calibration": calib,
        "workloads": {"full_tile": tile, "tlr": tlr},
        "plan_http": http,
    }


def write_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the report JSON (default: ``results/BENCH_autotune.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_autotune.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_autotune_predicts_measured_within_2x(outdir):
    """Benchmark-suite entry: fitted model vs measured phase times.

    The 2x band is asserted on both workloads' fit *and* predict
    totals — this is the acceptance gate for the self-tuning loop.
    """
    report = run_bench()
    for name, workload in report["workloads"].items():
        for op in ("fit", "predict"):
            ratio = workload["ratio"][op]
            assert 0.5 <= ratio <= 2.0, (
                f"{name} {op}: predicted/measured ratio {ratio:.3f} outside "
                f"the 2x band (measured {workload['measured'][f'{op}_total_s']:.4f}s, "
                f"predicted {workload['predicted'][f'{op}_total_s']:.4f}s)"
            )
    assert report["plan_http"]["config"]["tile_size"] >= 1
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=900)
    parser.add_argument("--m", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    report = run_bench(n=args.n, m=args.m, repeats=args.repeats, seed=args.seed)
    path = write_report(report, args.out)
    summary = report["summary"]
    print(f"probe wall     : {summary['probe_wall_s']:.2f}s")
    for key, value in sorted(summary["constants"].items()):
        print(f"  {key:<16}: {value:.6g}")
    for name, workload in report["workloads"].items():
        print(
            f"{name:<10} fit ratio {workload['ratio']['fit']:.3f}  "
            f"predict ratio {workload['ratio']['predict']:.3f}"
        )
    print(f"all within 2x  : {summary['all_within_2x']}")
    print(f"report         : {path}")


if __name__ == "__main__":
    main()
