"""Bound-constrained Nelder-Mead simplex minimization (from scratch).

Implements the standard Nelder-Mead method (reflection, expansion,
outside/inside contraction, shrink) with the adaptive coefficients of
Gao & Han (2012) for dimension-robustness, plus NLopt-style box
constraints: every trial vertex is clamped to the bounds before
evaluation. Termination follows the usual twin criteria on the simplex's
function-value spread (``ftol``) and geometric diameter (``xtol``).

The optimizer's entire iteration state is the simplex, its function
values, and a pair of counters. :class:`SimplexState` packages exactly
that, and ``nelder_mead`` can both emit one per iteration
(``state_callback``) and start from one (``state``) — resuming from any
snapshot replays the remaining iterations bit-identically, which is what
lets the fitting service checkpoint a long MLE fit and survive a kill
(see :mod:`repro.fitting.checkpoint`).

The MLE drivers *maximize* the log-likelihood by minimizing its negation;
this module is a pure minimizer and knows nothing about likelihoods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import OptimizationError
from ..utils.rng import SeedLike, as_generator
from ..utils.validation import as_float_array
from .bounds import clip_to_bounds, validate_bounds
from .result import HistoryEntry, OptimizeResult

__all__ = [
    "SimplexState",
    "nelder_mead",
    "multistart_points",
    "multistart_nelder_mead",
]


@dataclass
class SimplexState:
    """The complete iteration state of one Nelder-Mead run.

    A snapshot taken after iteration ``iteration`` completed; feeding it
    back through ``nelder_mead(..., state=...)`` continues the run as if
    it had never stopped — same iterates, same evaluation count, same
    final vertex, bit for bit (the algorithm is deterministic given the
    simplex and the objective).

    Attributes
    ----------
    simplex:
        ``(n + 1, n)`` vertex matrix after the iteration's update.
    fvals:
        ``(n + 1,)`` objective values of the vertices.
    iteration:
        Number of completed iterations.
    nfev:
        Objective evaluations spent so far.
    history:
        Trajectory entries accumulated so far (one per iteration).
    """

    simplex: np.ndarray
    fvals: np.ndarray
    iteration: int
    nfev: int
    history: List[HistoryEntry]

    def validate(self, n: int) -> "SimplexState":
        """Check the state describes an ``n``-dimensional simplex."""
        simplex = np.asarray(self.simplex, dtype=np.float64)
        fvals = np.asarray(self.fvals, dtype=np.float64)
        if simplex.shape != (n + 1, n):
            raise OptimizationError(
                f"resume state simplex has shape {simplex.shape}, expected {(n + 1, n)}"
            )
        if fvals.shape != (n + 1,):
            raise OptimizationError(
                f"resume state fvals has shape {fvals.shape}, expected {(n + 1,)}"
            )
        if self.iteration < 0 or self.nfev < 0:
            raise OptimizationError(
                f"resume state counters must be >= 0, got iteration={self.iteration} "
                f"nfev={self.nfev}"
            )
        return self


def _initial_simplex(
    x0: np.ndarray, lower: np.ndarray, upper: np.ndarray, scale: float
) -> np.ndarray:
    """Axis-aligned initial simplex around ``x0``, kept inside the box.

    Each extra vertex perturbs one coordinate by ``scale`` times the box
    width in that coordinate, flipping direction when the step would
    leave the box.
    """
    n = x0.size
    simplex = np.repeat(x0[None, :], n + 1, axis=0)
    widths = upper - lower
    for i in range(n):
        step = scale * widths[i]
        candidate = x0[i] + step
        if candidate > upper[i]:
            candidate = x0[i] - step
        simplex[i + 1, i] = candidate
    return clip_to_bounds(simplex, lower, upper)


def nelder_mead(
    fn: Callable[[np.ndarray], float],
    x0: Optional[Sequence[float]],
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    ftol: float = 1e-7,
    xtol: float = 1e-7,
    maxiter: int = 500,
    initial_scale: float = 0.10,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
    state: Optional[SimplexState] = None,
    state_callback: Optional[Callable[[SimplexState], None]] = None,
) -> OptimizeResult:
    """Minimize ``fn`` over a box with the Nelder-Mead simplex method.

    Parameters
    ----------
    fn:
        Objective; called with a 1-D parameter vector inside the box.
        May return ``+inf`` (e.g. penalty for a failed factorization).
    x0:
        Starting point (clamped into the box). May be ``None`` when
        resuming from ``state`` — the simplex is the whole start.
    lower, upper:
        Box constraints (elementwise, strict ``lower < upper``).
    ftol:
        Objective-spread tolerance: the simplex's best-worst spread must
        fall below ``ftol * (|f_best| + ftol)``.
    xtol:
        Diameter tolerance: the simplex diameter (relative to box width)
        must fall below ``xtol``. Termination requires **both** the
        ftol and xtol criteria (scipy semantics; either alone fires
        spuriously on symmetric or plateaued objectives).
    maxiter:
        Iteration cap (one reflection cycle per iteration; resuming
        counts the checkpointed iterations against the same cap).
    initial_scale:
        Initial simplex size as a fraction of the box width per axis.
    callback:
        Called as ``callback(iteration, best_x, best_f)`` once per
        iteration — the hook the MLE driver uses to log per-iteration
        timings (the quantity Figures 3-4 report). On resume it fires
        for the *remaining* iterations only, so appended logs carry no
        duplicates.
    state:
        Resume from this :class:`SimplexState` instead of building an
        initial simplex around ``x0``. The continuation is bit-identical
        to the uninterrupted run.
    state_callback:
        Called with a fresh :class:`SimplexState` snapshot after every
        iteration's simplex update — the checkpoint stream. Snapshots
        own their arrays (safe to persist or keep).

    Returns
    -------
    :class:`OptimizeResult`
    """
    lo, hi = validate_bounds(lower, upper)
    if state is None:
        if x0 is None:
            raise OptimizationError("x0 is required when no resume state is given")
        x0 = clip_to_bounds(as_float_array(x0, "x0"), lo, hi)
        n = x0.size
    else:
        n = lo.size
    if n == 0:
        raise OptimizationError("cannot optimize a zero-dimensional parameter vector")
    if maxiter < 1:
        raise OptimizationError(f"maxiter must be >= 1, got {maxiter}")

    # Gao-Han adaptive coefficients.
    alpha = 1.0
    beta = 1.0 + 2.0 / n
    gamma = 0.75 - 1.0 / (2.0 * n)
    delta = 1.0 - 1.0 / n

    nfev = 0

    def evaluate(x: np.ndarray) -> float:
        nonlocal nfev
        nfev += 1
        val = float(fn(x))
        if np.isnan(val):
            # NaN poisons simplex ordering; treat as "worse than anything".
            return np.inf
        return val

    if state is None:
        simplex = _initial_simplex(x0, lo, hi, initial_scale)
        fvals = np.array([evaluate(v) for v in simplex])
        history: List[HistoryEntry] = []
        first_iteration = 1
    else:
        state.validate(n)
        simplex = np.array(state.simplex, dtype=np.float64, copy=True)
        fvals = np.array(state.fvals, dtype=np.float64, copy=True)
        history = list(state.history)
        nfev = int(state.nfev)
        first_iteration = int(state.iteration) + 1

    widths = hi - lo
    converged = False
    message = "maximum number of iterations reached"
    it = first_iteration - 1
    for it in range(first_iteration, maxiter + 1):
        order = np.argsort(fvals, kind="stable")
        simplex = simplex[order]
        fvals = fvals[order]
        best, worst = fvals[0], fvals[-1]
        best_x = simplex[0].copy()
        history.append(HistoryEntry(it, best_x, float(best)))
        if callback is not None:
            callback(it, best_x, float(best))

        # Termination: require BOTH criteria (as scipy does) — the
        # f-spread alone fires spuriously when distinct vertices share an
        # objective value (symmetric objectives), and the diameter alone
        # can linger on flat plateaus.
        f_spread = worst - best
        f_ok = np.isfinite(best) and f_spread <= ftol * (abs(best) + ftol)
        diam = float(np.max(np.abs(simplex[1:] - simplex[0]) / widths))
        if f_ok and diam <= xtol:
            converged = True
            message = "simplex spread below ftol and diameter below xtol"
            break

        centroid = simplex[:-1].mean(axis=0)
        xr = clip_to_bounds(centroid + alpha * (centroid - simplex[-1]), lo, hi)
        fr = evaluate(xr)
        if fr < fvals[0]:
            # Try expanding further along the reflection direction.
            xe = clip_to_bounds(centroid + beta * (xr - centroid), lo, hi)
            fe = evaluate(xe)
            if fe < fr:
                simplex[-1], fvals[-1] = xe, fe
            else:
                simplex[-1], fvals[-1] = xr, fr
        elif fr < fvals[-2]:
            simplex[-1], fvals[-1] = xr, fr
        else:
            if fr < fvals[-1]:
                # Outside contraction.
                xc = clip_to_bounds(centroid + gamma * (xr - centroid), lo, hi)
                fc = evaluate(xc)
                accept = fc <= fr
            else:
                # Inside contraction.
                xc = clip_to_bounds(centroid - gamma * (centroid - simplex[-1]), lo, hi)
                fc = evaluate(xc)
                accept = fc < fvals[-1]
            if accept:
                simplex[-1], fvals[-1] = xc, fc
            else:
                # Shrink toward the best vertex.
                for i in range(1, n + 1):
                    simplex[i] = clip_to_bounds(
                        simplex[0] + delta * (simplex[i] - simplex[0]), lo, hi
                    )
                    fvals[i] = evaluate(simplex[i])

        if state_callback is not None:
            state_callback(
                SimplexState(
                    simplex=simplex.copy(),
                    fvals=fvals.copy(),
                    iteration=it,
                    nfev=nfev,
                    history=list(history),
                )
            )

    order = np.argsort(fvals, kind="stable")
    simplex = simplex[order]
    fvals = fvals[order]
    return OptimizeResult(
        x=simplex[0].copy(),
        fun=float(fvals[0]),
        nfev=nfev,
        nit=it,
        converged=converged,
        message=message,
        history=history,
    )


def multistart_points(
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    n_starts: int = 3,
    x0: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """The deterministic start list a multistart search runs from.

    The first start is ``x0`` (when given); the rest are drawn
    log-uniformly inside the box when all lower bounds are positive
    (which suits positive scale parameters like the Matérn theta), and
    uniformly otherwise. Exposed separately so the fitting
    orchestrator's worker processes can each regenerate the identical
    list from ``(bounds, x0, seed)`` and claim one index — parallel
    multistart then explores exactly the starts the sequential
    :func:`multistart_nelder_mead` would.
    """
    lo, hi = validate_bounds(lower, upper)
    rng = as_generator(seed)
    starts: List[np.ndarray] = []
    if x0 is not None:
        starts.append(clip_to_bounds(as_float_array(x0, "x0"), lo, hi))
    log_ok = bool(np.all(lo > 0.0))
    while len(starts) < max(1, n_starts):
        u = rng.random(lo.size)
        if log_ok:
            starts.append(np.exp(np.log(lo) + u * (np.log(hi) - np.log(lo))))
        else:
            starts.append(lo + u * (hi - lo))
    return starts


def multistart_nelder_mead(
    fn: Callable[[np.ndarray], float],
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    n_starts: int = 3,
    x0: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
    **nm_kwargs: object,
) -> OptimizeResult:
    """Run Nelder-Mead from several starts; return the best result.

    Starts come from :func:`multistart_points`; evaluation counts are
    aggregated. Ties keep the earliest start, so a process-parallel
    fan-out that merges per-start results with the same rule (see
    :class:`~repro.fitting.orchestrator.FitOrchestrator`) reproduces
    this function's answer exactly.
    """
    lo, hi = validate_bounds(lower, upper)
    starts = multistart_points(lo, hi, n_starts=n_starts, x0=x0, seed=seed)
    best: Optional[OptimizeResult] = None
    total_nfev = 0
    total_nit = 0
    for start in starts:
        res = nelder_mead(fn, start, lo, hi, **nm_kwargs)  # type: ignore[arg-type]
        total_nfev += res.nfev
        total_nit += res.nit
        if best is None or res.fun < best.fun:
            best = res
    assert best is not None
    best.nfev = total_nfev
    best.nit = total_nit
    return best
