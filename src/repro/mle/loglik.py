"""Gaussian log-likelihood evaluators (paper eq. (1)).

One evaluation = generate ``Sigma(theta)`` + Cholesky + half-solve +
log-determinant. The three variants differ only in the linear-algebra
substrate:

* ``full-block`` — dense LAPACK (the paper's MKL baseline);
* ``full-tile``  — dense tile Cholesky, optionally task-parallel;
* ``tlr``        — TLR compression + TLR Cholesky at accuracy ``acc``.

The evaluator records per-stage times (generation / factorization /
solve) and evaluation counts; the benchmark harness reports the paper's
"time of one iteration" from these numbers.

Generation pipeline (``cache_distances`` / ``parallel_generation``)
-------------------------------------------------------------------
Locations are fixed for a whole fit, so per-tile distance blocks are
cached across evaluations (:class:`~repro.linalg.generation.TileDistanceCache`;
the full-block variant caches the full distance matrix) — after the
first evaluation, generation reduces to applying the correlation
function to cached distances. When a :class:`~repro.runtime.Runtime` is
attached and ``parallel_generation`` is on, tile/TLR generation is
additionally *fused* into the factorization task graph: one
generate(+compress) task per tile, and the Cholesky tasks on tile
``(i, j)`` depend on that tile's generation task instead of a global
barrier. In fused mode the ``generation`` stage time is task-submission
time only — the generation work itself overlaps the factorization and
is accounted in the ``factorization`` stage wait. Both knobs preserve
values: cached tiles are bit-identical, and fused execution computes the
same factorization.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..config import get_config
from ..exceptions import ConfigurationError, NotPositiveDefiniteError
from ..kernels.covariance import CovarianceModel
from ..kernels.distance import pairwise_distance
from ..linalg.blocklapack import (
    block_cholesky,
    block_logdet_from_factor,
)
from ..linalg.generation import (
    TileDistanceCache,
    generate_and_factor_tile_matrix,
    generate_and_factor_tlr_matrix,
)
from ..linalg.tile_cholesky import logdet_from_tile_factor
from ..linalg.tile_solve import tile_solve_triangular
from ..linalg.tlr_cholesky import logdet_from_tlr_factor
from ..linalg.tlr_solve import tlr_solve_triangular
from ..runtime import Runtime
from ..telemetry import spans as _telemetry
from ..utils.timer import StageTimes
from ..utils.validation import as_float_array, check_locations, check_vector
import scipy.linalg as sla

__all__ = ["exact_loglikelihood", "LikelihoodEvaluator", "VARIANTS"]

#: Supported computation variants.
VARIANTS = ("full-block", "full-tile", "tlr")

#: Log-likelihood assigned when a trial theta yields a non-SPD covariance
#: (the optimizer treats it as an infinitely bad point and moves on).
PENALTY_LOGLIK = -1e12


def exact_loglikelihood(
    locations: np.ndarray,
    z: np.ndarray,
    model: CovarianceModel,
) -> float:
    """Reference dense evaluation of eq. (1) (used by tests and baselines).

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations.
    z:
        ``(n,)`` observation vector.
    model:
        Covariance model evaluated at its own ``theta``.

    Returns
    -------
    The scalar log-likelihood value.
    """
    x = check_locations(locations, "locations")
    z = check_vector(as_float_array(z, "z"), x.shape[0], "z")
    sigma = model.matrix(x)
    factor = block_cholesky(sigma, overwrite=True)
    half = sla.solve_triangular(factor, z, lower=True, check_finite=False)
    logdet = block_logdet_from_factor(factor)
    n = x.shape[0]
    return float(-0.5 * n * math.log(2.0 * math.pi) - 0.5 * logdet - 0.5 * (half @ half))


class LikelihoodEvaluator:
    """Callable objective ``theta -> loglik`` with a fixed substrate.

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations, already ordered (callers typically
        apply Morton ordering once, outside the optimization loop).
    z:
        ``(n,)`` observations.
    model:
        Template covariance model; each evaluation rebinds ``theta`` via
        ``model.with_theta``.
    variant:
        ``"full-block"``, ``"full-tile"`` or ``"tlr"``.
    acc:
        TLR accuracy threshold (TLR variant only; default configured).
    tile_size:
        Tile size ``nb`` (tile/TLR variants; default configured).
    runtime:
        Optional task runtime shared across evaluations (tile/TLR).
    compression_method:
        Per-tile compressor for the TLR variant.
    cache_distances:
        Reuse distance blocks across evaluations (default: configured
        ``cache_distances``). Values are bit-identical either way.
    parallel_generation:
        With a runtime attached, generate (and compress) tiles as tasks
        fused into the factorization graph (default: configured
        ``parallel_generation``). No effect without a runtime or for the
        full-block variant.
    compression_batch:
        TLR tiles compressed per fused generation task (default:
        configured ``compression_batch``); amortizes per-task overhead
        when ``nb`` is small relative to ``nt``. Values are identical
        for any batch size.
    keep_last_factor:
        Retain a reference to the most recent successful evaluation's
        Cholesky factor (``last_factor``/``last_theta``). Costs no extra
        compute — the factor would otherwise be garbage-collected — but
        keeps one factor's memory (O(n^2) for the dense substrates)
        alive between evaluations. Default False;
        :class:`~repro.mle.estimator.MLEstimator` opts in so its
        prediction path can adopt the fit's final factorization and skip
        re-factorizing ``Sigma_22`` when predicting at the fitted theta.

    Notes
    -----
    A non-positive-definite trial covariance yields the penalty value
    rather than an exception, so the optimizer can continue searching —
    the behaviour of ExaGeoStat's objective wrapper.
    """

    def __init__(
        self,
        locations: np.ndarray,
        z: np.ndarray,
        model: CovarianceModel,
        *,
        variant: str = "full-block",
        acc: Optional[float] = None,
        tile_size: Optional[int] = None,
        runtime: Optional[Runtime] = None,
        compression_method: Optional[str] = None,
        cache_distances: Optional[bool] = None,
        parallel_generation: Optional[bool] = None,
        compression_batch: Optional[int] = None,
        keep_last_factor: bool = False,
    ) -> None:
        if variant not in VARIANTS:
            raise ConfigurationError(f"variant must be one of {VARIANTS}, got {variant!r}")
        cfg = get_config()
        self.locations = check_locations(locations, "locations")
        self.z = check_vector(as_float_array(z, "z"), self.locations.shape[0], "z")
        self.model = model
        self.variant = variant
        self.acc = cfg.tlr_accuracy if acc is None else float(acc)
        self.tile_size = cfg.tile_size if tile_size is None else int(tile_size)
        self.runtime = runtime
        self.compression_method = compression_method or cfg.compression_method
        self.truncation_rule = cfg.truncation
        # Resolved here (not at insert time): evaluations may run on
        # threads whose thread-local config never saw the caller's value.
        self.compression_batch = (
            cfg.compression_batch if compression_batch is None else max(1, int(compression_batch))
        )
        self.cache_distances = (
            cfg.cache_distances if cache_distances is None else bool(cache_distances)
        )
        self.parallel_generation = (
            cfg.parallel_generation if parallel_generation is None else bool(parallel_generation)
        )
        self.n_evals = 0
        self.n_failures = 0
        self.times = StageTimes()
        self._n = self.locations.shape[0]
        self._const = -0.5 * self._n * math.log(2.0 * math.pi)
        self.distance_cache: Optional[TileDistanceCache] = None
        if self.cache_distances and variant in ("full-tile", "tlr"):
            self.distance_cache = TileDistanceCache(
                self.locations, self.tile_size, metric=model.metric
            )
        self._full_distances: Optional[np.ndarray] = None  # full-block cache
        self.keep_last_factor = bool(keep_last_factor)
        #: Cholesky factor of the most recent successful evaluation
        #: (ndarray / TileMatrix / TLRMatrix per variant), and its theta.
        self.last_factor: Optional[object] = None
        self.last_theta: Optional[np.ndarray] = None
        self._pending_factor: Optional[object] = None

    # ------------------------------------------------------------- calls
    def __call__(self, theta: np.ndarray) -> float:
        """Evaluate the log-likelihood at parameter vector ``theta``."""
        model = self.model.with_theta(theta)
        self.n_evals += 1
        try:
            # The stage() calls inside each variant emit per-phase child
            # spans (generation/factorization/solve) under this one.
            with _telemetry.span("loglik.eval", variant=self.variant):
                if self.variant == "full-block":
                    logdet, quad = self._eval_full_block(model)
                elif self.variant == "full-tile":
                    logdet, quad = self._eval_full_tile(model)
                else:
                    logdet, quad = self._eval_tlr(model)
        except NotPositiveDefiniteError:
            self.n_failures += 1
            self._pending_factor = None
            self.last_factor = None
            self.last_theta = None
            return PENALTY_LOGLIK
        if self.keep_last_factor:
            self.last_factor = self._pending_factor
            self.last_theta = model.theta.copy()
        self._pending_factor = None
        return float(self._const - 0.5 * logdet - 0.5 * quad)

    def negative(self, theta: np.ndarray) -> float:
        """``-loglik(theta)`` for minimizers."""
        return -self(theta)

    # ----------------------------------------------------------- plumbing
    def _tile_generator(self, model: CovarianceModel):
        """Tile generator for ``model``: cached distances when enabled."""
        if self.distance_cache is not None:
            return self.distance_cache.generator(model)
        return lambda rs, cs: model.tile(self.locations, rs, cs)

    @property
    def _fused(self) -> bool:
        """True when generation is fused into the factorization graph."""
        return self.runtime is not None and self.parallel_generation

    # ---------------------------------------------------------- variants
    def _eval_full_block(self, model: CovarianceModel) -> tuple[float, float]:
        with self.times.stage("generation"):
            if self.cache_distances:
                if self._full_distances is None:
                    self._full_distances = pairwise_distance(
                        self.locations, metric=model.metric
                    )
                sigma = model.matrix_from_distances(self._full_distances)
            else:
                sigma = model.matrix(self.locations)
        with self.times.stage("factorization"):
            factor = block_cholesky(sigma, overwrite=True)
        self._pending_factor = factor
        with self.times.stage("solve"):
            half = sla.solve_triangular(factor, self.z, lower=True, check_finite=False)
            logdet = block_logdet_from_factor(factor)
        return logdet, float(half @ half)

    def _eval_full_tile(self, model: CovarianceModel) -> tuple[float, float]:
        tiles = generate_and_factor_tile_matrix(
            self._n,
            self.tile_size,
            self._tile_generator(model),
            runtime=self.runtime,
            fused=self._fused,
            times=self.times,
        )
        self._pending_factor = tiles
        with self.times.stage("solve"):
            half = tile_solve_triangular(tiles, self.z, trans=False)
            logdet = logdet_from_tile_factor(tiles)
        return logdet, float(half @ half)

    def _eval_tlr(self, model: CovarianceModel) -> tuple[float, float]:
        tlr = generate_and_factor_tlr_matrix(
            self._n,
            self.tile_size,
            self._tile_generator(model),
            self.acc,
            method=self.compression_method,
            rule=self.truncation_rule,
            runtime=self.runtime,
            fused=self._fused,
            times=self.times,
            compression_batch=self.compression_batch,
        )
        self._pending_factor = tlr
        with self.times.stage("solve"):
            half = tlr_solve_triangular(tlr, self.z, trans=False)
            logdet = logdet_from_tlr_factor(tlr)
        return logdet, float(half @ half)
