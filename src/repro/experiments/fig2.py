"""Figure 2 — the 400-point irregular-grid example.

The paper displays 400 irregularly spaced locations on the unit square,
362 used for estimation and 38 for prediction validation. The text
reproduction verifies the construction's properties: point count, bounds,
nearest-neighbour separation (the "no two locations too close"
guarantee), and the train/test split sizes.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import GeoDataset, train_test_split
from ..data.fields import sample_gaussian_field
from ..data.synthetic import generate_irregular_grid
from ..kernels.covariance import MaternCovariance
from ..kernels.distance import euclidean_distance_matrix
from .common import ResultTable

__all__ = ["run_fig2"]


def run_fig2(*, n: int = 400, n_test: int = 38, seed: int = 0) -> ResultTable:
    """Generate the Figure 2 example and tabulate its properties."""
    locs = generate_irregular_grid(n, seed=seed)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=seed + 1)
    ds = GeoDataset(locs, z, name="fig2")
    train, test = train_test_split(ds, n_test, seed=seed + 2)

    d = euclidean_distance_matrix(locs)
    np.fill_diagonal(d, np.inf)
    nn = d.min(axis=1)
    side = int(round(np.sqrt(n)))

    table = ResultTable(
        title="Figure 2 — irregular grid example (400 points, 362 fit + 38 predict)",
        headers=["property", "value"],
    )
    table.add_row("points generated", n)
    table.add_row("fit points", train.n)
    table.add_row("prediction points", test.n)
    table.add_row("x range", f"[{locs[:, 0].min():.4f}, {locs[:, 0].max():.4f}]")
    table.add_row("y range", f"[{locs[:, 1].min():.4f}, {locs[:, 1].max():.4f}]")
    table.add_row("min nearest-neighbour distance", float(nn.min()))
    table.add_row("mean nearest-neighbour distance", float(nn.mean()))
    table.add_row("regular-grid spacing 1/sqrt(n)", 1.0 / side)
    table.add_note(
        "jitter is 0.4 of a cell, so the minimum separation stays bounded away from 0 "
        "(uniform sampling would not guarantee this)"
    )
    return table
