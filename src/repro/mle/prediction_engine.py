"""Cached, task-parallel kriging over a fixed training set (paper §III).

The prediction operation (eqs. (2)-(4)) is, like one likelihood
evaluation, dominated by generating and factorizing ``Sigma_22`` — the
paper's Figure 5 prediction curves mirror the Figure 4 MLE curves for
exactly this reason. ExaGeoStat treats prediction as a first-class,
*repeatedly invoked* operation over a fitted model: many realizations,
many target sets, one training set. :class:`PredictionEngine` gives that
workload the same treatment PR 1 gave the MLE hot loop:

* **Distance caching.** A per-engine
  :class:`~repro.linalg.generation.TileDistanceCache` (shareable with
  the fit's evaluator, so ``fit -> predict`` pays for no distance block
  twice) covers ``Sigma_22``; a new
  :class:`~repro.linalg.generation.CrossDistanceCache` covers the
  ``Sigma_12`` cross blocks, keyed by a content digest of the target
  coordinates. Cached tiles are bit-identical to direct generation.

* **Fused task-parallel generation.** With a
  :class:`~repro.runtime.Runtime` attached and ``parallel_generation``
  on, tile/TLR generation is inserted into the prediction Cholesky's
  task graph exactly as the MLE loop does
  (:func:`~repro.linalg.generation.insert_tile_generation_tasks` /
  :func:`~repro.linalg.generation.insert_tlr_generation_tasks`): no
  global barrier between generation and factorization.

* **One factorization, many solves.** The Cholesky factor of
  ``Sigma_22`` is cached per parameter vector: batched multi-RHS
  prediction (``z`` with shape ``(n, k)``), repeated target sets, and
  conditional variances all reuse one factorization. The engine can
  also *adopt* the factorization left behind by the fit's final
  likelihood evaluation, skipping even the first factorization.

* **All substrates.** ``full-block``, ``full-tile`` and ``tlr`` share
  the machinery, including :meth:`conditional_variance` (previously
  dense-only).

Values are preserved: with caching and/or fused generation the
conditional means are bit-identical to the seed path for the dense
substrates and within the compression accuracy for TLR (bit-identical
with the deterministic SVD compressor).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.linalg as sla

from ..config import get_config
from ..exceptions import ConfigurationError, NotPositiveDefiniteError, ShapeError
from ..kernels.covariance import CovarianceModel
from ..kernels.distance import pairwise_distance
from ..linalg.blocklapack import block_cholesky
from ..linalg.generation import (
    CrossDistanceCache,
    TileDistanceCache,
    generate_and_factor_tile_matrix,
    generate_and_factor_tlr_matrix,
)
from ..linalg.tile_matrix import TileMatrix
from ..linalg.tile_solve import tile_solve_triangular
from ..linalg.tlr_matrix import TLRMatrix
from ..linalg.tlr_solve import tlr_solve_triangular
from ..runtime import Runtime
from ..telemetry import spans as _telemetry
from ..utils.timer import StageTimes
from ..utils.validation import as_float_array, check_locations
from .loglik import VARIANTS

__all__ = ["PredictionEngine"]

#: A Sigma_22 Cholesky factor in any of the three substrate formats.
Factor = Union[np.ndarray, TileMatrix, TLRMatrix]


def _check_rhs(z: object, n: int, name: str = "z") -> np.ndarray:
    """Validate a ``(n,)`` or ``(n, k)`` right-hand side."""
    arr = as_float_array(z, name)
    if arr.ndim not in (1, 2):
        raise ShapeError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    if arr.shape[0] != n:
        raise ShapeError(f"{name} must have leading dimension {n}, got {arr.shape[0]}")
    return arr


def _validate_factor(factor: Factor) -> Factor:
    """Guard a Cholesky factor's diagonal, as ``logdet_from_*_factor`` does.

    Raises
    ------
    NotPositiveDefiniteError
        If any diagonal entry of the factor is not strictly positive —
        solving against such a factor would silently produce NaN/Inf
        predictions instead of a diagnosable failure.
    """
    if isinstance(factor, TileMatrix):
        for k in range(factor.nt):
            if not np.all(np.diagonal(factor.tile(k, k)) > 0.0):
                raise NotPositiveDefiniteError(
                    f"tile Cholesky factor has a non-positive diagonal in tile ({k},{k})"
                )
    elif isinstance(factor, TLRMatrix):
        for k in range(factor.nt):
            if not np.all(np.diagonal(factor.diag[k]) > 0.0):
                raise NotPositiveDefiniteError(
                    f"TLR Cholesky factor has a non-positive diagonal in tile ({k},{k})"
                )
    else:
        if not np.all(np.diagonal(factor) > 0.0):
            raise NotPositiveDefiniteError("Cholesky factor has non-positive diagonal entries")
    return factor


class PredictionEngine:
    """Kriging engine bound to one training set and one substrate.

    Parameters
    ----------
    locations:
        ``(n, d)`` observed locations (order fixed; callers that Morton-
        order for the fit must pass the reordered locations).
    z:
        Observations: ``(n,)`` for one realization, ``(n, k)`` for a
        batch, or ``None`` for variance-only use. Rebindable per call via
        :meth:`predict`'s ``z=`` argument.
    model:
        Fitted covariance model (defines ``Sigma_22`` and ``Sigma_12``).
        Rebindable via :meth:`set_model` — distance caches survive a
        theta change, the factorization cache does not.
    variant:
        ``"full-block"`` (default), ``"full-tile"`` or ``"tlr"``.
    acc, tile_size, runtime, compression_method:
        Substrate controls, as in
        :class:`~repro.mle.loglik.LikelihoodEvaluator`.
    cache_distances:
        Cache ``Sigma_22`` distance blocks and ``Sigma_12`` cross-distance
        matrices across calls (default: configured ``cache_distances``).
        Values are bit-identical either way.
    parallel_generation:
        With a runtime attached, fuse tile/TLR generation into the
        prediction Cholesky task graph (default: configured
        ``parallel_generation``). No effect without a runtime or for the
        full-block variant.
    compression_batch:
        TLR tiles compressed per fused generation task (default:
        configured ``compression_batch``), resolved at construction so
        serving worker threads never consult their own config.
    distance_cache:
        An existing :class:`~repro.linalg.generation.TileDistanceCache`
        to share (typically the fit evaluator's, so prediction reuses the
        fit's distance work). Must be built over the same locations and
        metric.
    full_distances:
        Pre-computed ``(n, n)`` distance matrix to seed the full-block
        cache with (the full-block analogue of ``distance_cache``).

    Examples
    --------
    >>> from repro.data import generate_irregular_grid, sample_gaussian_field
    >>> from repro.kernels import MaternCovariance
    >>> locs = generate_irregular_grid(64, seed=0)
    >>> model = MaternCovariance(1.0, 0.1, 0.5)
    >>> z = sample_gaussian_field(locs, model, seed=1)
    >>> engine = PredictionEngine(locs, z, model)
    >>> engine.predict(locs[:4]).shape   # factors Sigma_22 once
    (4,)
    >>> engine.predict(locs[4:8]).shape  # reuses the factorization
    (4,)
    >>> engine.n_factorizations
    1
    """

    def __init__(
        self,
        locations: np.ndarray,
        z: Optional[np.ndarray],
        model: CovarianceModel,
        *,
        variant: str = "full-block",
        acc: Optional[float] = None,
        tile_size: Optional[int] = None,
        runtime: Optional[Runtime] = None,
        compression_method: Optional[str] = None,
        cache_distances: Optional[bool] = None,
        parallel_generation: Optional[bool] = None,
        compression_batch: Optional[int] = None,
        distance_cache: Optional[TileDistanceCache] = None,
        full_distances: Optional[np.ndarray] = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ConfigurationError(f"variant must be one of {VARIANTS}, got {variant!r}")
        cfg = get_config()
        self.locations = check_locations(locations, "locations")
        self._n = self.locations.shape[0]
        self.z = None if z is None else _check_rhs(z, self._n, "z")
        self.model = model
        self.variant = variant
        self.acc = cfg.tlr_accuracy if acc is None else float(acc)
        self.tile_size = cfg.tile_size if tile_size is None else int(tile_size)
        self.runtime = runtime
        self.compression_method = compression_method or cfg.compression_method
        self.truncation_rule = cfg.truncation
        # Resolved at construction: serving executes factor() on worker
        # threads whose thread-local config is the default.
        self.compression_batch = (
            cfg.compression_batch if compression_batch is None else max(1, int(compression_batch))
        )
        self.cache_distances = (
            cfg.cache_distances if cache_distances is None else bool(cache_distances)
        )
        self.parallel_generation = (
            cfg.parallel_generation if parallel_generation is None else bool(parallel_generation)
        )

        self.distance_cache: Optional[TileDistanceCache] = None
        self.cross_cache: Optional[CrossDistanceCache] = None
        self._full_distances: Optional[np.ndarray] = None
        if self.cache_distances:
            if variant in ("full-tile", "tlr"):
                self.distance_cache = distance_cache or TileDistanceCache(
                    self.locations, self.tile_size, metric=model.metric
                )
            else:
                self._full_distances = full_distances
            self.cross_cache = CrossDistanceCache(self.locations, metric=model.metric)

        self._factor: Optional[Factor] = None
        self._factor_key: Optional[Tuple] = None
        self._alpha: Optional[np.ndarray] = None  # Sigma_22^{-1} z for the bound z
        self.n_factorizations = 0
        self.n_predicts = 0
        self.times = StageTimes()

    # ---------------------------------------------------------- model state
    @staticmethod
    def _model_key(model: CovarianceModel) -> Tuple:
        """Cache key of everything ``Sigma_22`` depends on besides locations."""
        return (type(model).__name__, model.theta.tobytes(), model.nugget, model.metric)

    def set_model(self, model: CovarianceModel) -> "PredictionEngine":
        """Rebind the fitted model; invalidates factor/solve caches on change.

        Distance caches are theta-independent and survive a parameter
        change; a *metric* change invalidates them too (cached distances
        were measured in the old metric).
        """
        if self._model_key(model) != self._model_key(self.model):
            self._factor = None
            self._factor_key = None
            self._alpha = None
        if model.metric != self.model.metric and self.cache_distances:
            if self.distance_cache is not None:
                self.distance_cache = TileDistanceCache(
                    self.locations, self.tile_size, metric=model.metric
                )
            self._full_distances = None
            self.cross_cache = CrossDistanceCache(self.locations, metric=model.metric)
        self.model = model
        return self

    def set_observations(self, z: Optional[np.ndarray]) -> "PredictionEngine":
        """Rebind the default observation vector/batch (drops its cached solve)."""
        self.z = None if z is None else _check_rhs(z, self._n, "z")
        self._alpha = None
        return self

    def adopt_factor(self, factor: Factor, model: CovarianceModel) -> "PredictionEngine":
        """Install an existing ``Sigma_22`` Cholesky factor for ``model``.

        Used by :class:`~repro.mle.estimator.MLEstimator` to hand the fit's
        final factorization to the prediction path when the training
        locations are unchanged. The factor must come from this engine's
        substrate (``variant``/``tile_size``/``acc``); ownership transfers
        to the engine (the factor must not be mutated afterwards).
        """
        expected = {
            "full-block": np.ndarray,
            "full-tile": TileMatrix,
            "tlr": TLRMatrix,
        }[self.variant]
        if not isinstance(factor, expected):
            raise ConfigurationError(
                f"adopted factor type {type(factor).__name__} does not match "
                f"variant {self.variant!r}"
            )
        self._factor = _validate_factor(factor)
        self._factor_key = self._model_key(model)
        self._alpha = None
        self.model = model
        return self

    # -------------------------------------------------------- factorization
    def _tile_generator(self, model: CovarianceModel):
        """Tile generator for ``Sigma_22``: cached distances when enabled."""
        if self.distance_cache is not None:
            return self.distance_cache.generator(model)
        return lambda rs, cs: model.tile(self.locations, rs, cs)

    @property
    def _fused(self) -> bool:
        """True when generation is fused into the factorization task graph."""
        return self.runtime is not None and self.parallel_generation

    def factor(self) -> Factor:
        """The Cholesky factor of ``Sigma_22`` at the current model (cached)."""
        key = self._model_key(self.model)
        if self._factor is not None and self._factor_key == key:
            return self._factor
        with _telemetry.span("engine.factor", variant=self.variant):
            # Runtime task events recorded during this factorization are
            # adopted as child spans, joining the task-level view (what
            # StarPU's FxT traces show) to the request-level one.
            rt_trace = self.runtime.trace if self.runtime is not None else None
            events_before = rt_trace.total_recorded if rt_trace is not None else 0
            self._factor = _validate_factor(self._compute_factor(self.model))
            if rt_trace is not None:
                _telemetry.adopt_trace_events(rt_trace.tail(events_before))
        self._factor_key = key
        self._alpha = None
        self.n_factorizations += 1
        return self._factor

    def _compute_factor(self, model: CovarianceModel) -> Factor:
        if self.variant == "full-block":
            with self.times.stage("generation"):
                if self.cache_distances:
                    if self._full_distances is None:
                        self._full_distances = pairwise_distance(
                            self.locations, metric=model.metric
                        )
                    sigma = model.matrix_from_distances(self._full_distances)
                else:
                    sigma = model.matrix(self.locations)
            with self.times.stage("factorization"):
                return block_cholesky(sigma, overwrite=True)
        generate = self._tile_generator(model)
        if self.variant == "full-tile":
            return generate_and_factor_tile_matrix(
                self._n,
                self.tile_size,
                generate,
                runtime=self.runtime,
                fused=self._fused,
                times=self.times,
            )
        return generate_and_factor_tlr_matrix(
            self._n,
            self.tile_size,
            generate,
            self.acc,
            method=self.compression_method,
            rule=self.truncation_rule,
            runtime=self.runtime,
            fused=self._fused,
            times=self.times,
            compression_batch=self.compression_batch,
        )

    # --------------------------------------------------------------- solves
    def _half_solve(self, factor: Factor, b: np.ndarray) -> np.ndarray:
        """``L^{-1} b`` against ``factor`` (any substrate)."""
        if self.variant == "full-block":
            return sla.solve_triangular(factor, b, lower=True, check_finite=False)
        if self.variant == "full-tile":
            return tile_solve_triangular(factor, b, trans=False)
        return tlr_solve_triangular(factor, b, trans=False)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """``Sigma_22^{-1} b`` via the cached factor; ``b`` is ``(n,)`` or ``(n, k)``."""
        b = _check_rhs(b, self._n, "b")
        factor = self.factor()
        with self.times.stage("solve"):
            if self.variant == "full-block":
                y = sla.solve_triangular(factor, b, lower=True, check_finite=False)
                return sla.solve_triangular(factor, y, lower=True, trans="T", check_finite=False)
            if self.variant == "full-tile":
                y = tile_solve_triangular(factor, b, trans=False)
                return tile_solve_triangular(factor, y, trans=True)
            y = tlr_solve_triangular(factor, b, trans=False)
            return tlr_solve_triangular(factor, y, trans=True)

    def _weights(self) -> np.ndarray:
        """``Sigma_22^{-1} z`` for the bound observations (cached per factor)."""
        if self.z is None:
            raise ConfigurationError(
                "engine has no bound observations; pass z= to predict() or "
                "bind one with set_observations()"
            )
        if self._alpha is None:
            self._alpha = self.solve(self.z)
        return self._alpha

    # ---------------------------------------------------------- predictions
    def cross_covariance(self, new_locations: np.ndarray) -> np.ndarray:
        """``Sigma_12``: ``(m, n)`` covariance between targets and training set."""
        xnew = check_locations(new_locations, "new_locations")
        with self.times.stage("cross"):
            if self.cross_cache is not None:
                d12 = self.cross_cache.matrix(xnew)
            else:
                d12 = pairwise_distance(xnew, self.locations, metric=self.model.metric)
            return self.model(d12)

    def predict(
        self, new_locations: np.ndarray, *, z: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Conditional mean ``Sigma_12 Sigma_22^{-1} z`` (eq. (4)).

        Parameters
        ----------
        new_locations:
            ``(m, d)`` prediction targets.
        z:
            Optional observation override: ``(n,)`` or, for batched
            multi-RHS prediction, ``(n, k)`` — ``k`` realizations solved
            against one factorization. Defaults to the bound ``z``
            (whose solve is additionally cached across calls).

        Returns
        -------
        ``(m,)`` predictions, or ``(m, k)`` for a batched ``z``.
        """
        with _telemetry.span("engine.predict", variant=self.variant):
            sigma12 = self.cross_covariance(new_locations)
            alpha = self._weights() if z is None else self.solve(z)
            self.n_predicts += 1
            with _telemetry.span("engine.gemv"):
                return sigma12 @ alpha

    def predict_many(
        self,
        target_sets: Sequence[np.ndarray],
        *,
        z: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Serve several target sets in one coalesced kriging pass.

        The micro-batching primitive of
        :class:`~repro.serving.service.PredictionService`: one engine
        call resolves the factor and the observation solve ``alpha``
        once and serves every target set against them, so a group of
        coalesced requests pays one dispatch, one factor lookup, and one
        (cached) solve instead of one each.

        Per-request results are **bit-identical** to calling
        :meth:`predict` once per target set: cross-covariances and the
        conditional-mean GEMV are evaluated per set, with exactly the
        shapes a standalone call would use. (Deliberately *not* stacked
        into one tall matrix: the GEMM inside the euclidean distance
        kernel and BLAS GEMV both block by row count — a stacked
        evaluation differs in the last bits — and per-set ufunc passes
        stay cache-resident where one ``(sum m_i, n)`` pass spills.)

        Counts as one predict (``n_predicts += 1``): it is one pass over
        one request group.
        """
        if len(target_sets) == 0:
            return []
        checked = [check_locations(t, f"target_sets[{k}]") for k, t in enumerate(target_sets)]
        dim = checked[0].shape[1]
        for k, t in enumerate(checked[1:], start=1):
            if t.shape[1] != dim:
                raise ShapeError(
                    f"target_sets[{k}] has dimension {t.shape[1]}, expected {dim}"
                )
        with _telemetry.span(
            "engine.predict", variant=self.variant, target_sets=len(checked)
        ):
            alpha = self._weights() if z is None else self.solve(z)
            self.n_predicts += 1
            out = []
            for t in checked:
                sigma12 = self.cross_covariance(t)
                with _telemetry.span("engine.gemv"):
                    out.append(sigma12 @ alpha)
            return out

    def conditional_variance(self, new_locations: np.ndarray) -> np.ndarray:
        """Pointwise kriging variance (eq. (3)) on any substrate.

        ``diag(Sigma_11 - Sigma_12 Sigma_22^{-1} Sigma_21)`` through the
        cached factor: one ``(n, m)`` half-solve, then column norms. TLR
        results carry the compression accuracy of the factor.
        """
        sigma12 = self.cross_covariance(new_locations)
        factor = self.factor()  # outside the solve stage: may generate+factorize
        with self.times.stage("solve"):
            half = self._half_solve(factor, sigma12.T)
            reduction = np.einsum("ij,ij->j", half, half)
        var_marginal = float(self.model(np.zeros(1))[0]) + self.model.nugget
        return np.maximum(var_marginal - reduction, 0.0)

    # -------------------------------------------------------------- serving
    @classmethod
    def from_bundle(
        cls,
        bundle: object,
        *,
        runtime: Optional[Runtime] = None,
        cache_distances: Optional[bool] = None,
        parallel_generation: Optional[bool] = None,
        compression_batch: Optional[int] = None,
    ) -> "PredictionEngine":
        """Build an engine from a persisted model bundle — no re-fit.

        ``bundle`` is a :class:`~repro.serving.store.ModelBundle` or a
        path to one saved with :meth:`ModelBundle.save` /
        :meth:`~repro.mle.estimator.MLEstimator.save_fit`. The engine is
        bound to the bundle's (already Morton-ordered) training set,
        observations, substrate, and fitted model; a persisted
        ``Sigma_22`` Cholesky factor is adopted directly and persisted
        distance blocks rehydrate the caches, so the first ``predict``
        after a process restart can skip generation *and* factorization
        entirely — predictions are bit-identical to the process that
        ran the fit.
        """
        from ..serving.store import ModelBundle, load_model  # local: serving imports mle

        if not isinstance(bundle, ModelBundle):
            bundle = load_model(bundle)
        return bundle.build_engine(
            runtime=runtime,
            cache_distances=cache_distances,
            parallel_generation=parallel_generation,
            compression_batch=compression_batch,
        )

    # ------------------------------------------------------------- plumbing
    def stats(self) -> dict:
        """Counters and cache statistics (for benchmarks and tests)."""
        out = {
            "n_factorizations": self.n_factorizations,
            "n_predicts": self.n_predicts,
            "stage_times": dict(self.times.stages),
        }
        if self.distance_cache is not None:
            out["distance_cache"] = {
                "hits": self.distance_cache.hits,
                "misses": self.distance_cache.misses,
                "nbytes": self.distance_cache.nbytes,
            }
        if self.cross_cache is not None:
            out["cross_cache"] = {
                "hits": self.cross_cache.hits,
                "misses": self.cross_cache.misses,
                "nbytes": self.cross_cache.nbytes,
            }
        return out

    def clear(self) -> None:
        """Drop the factorization and solve caches (distance caches kept)."""
        self._factor = None
        self._factor_key = None
        self._alpha = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionEngine(n={self._n}, variant={self.variant!r}, "
            f"nb={self.tile_size}, cached_factor={self._factor is not None})"
        )
