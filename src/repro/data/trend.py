"""Mean-process removal for real datasets (paper §VII).

The paper fits a *zero-mean* Gaussian process to soil-moisture
**residuals** after removing a mean model ("we use the same model for
the mean process as in Huang and Sun [16]") — a low-order polynomial in
longitude/latitude. This module implements that preprocessing step:
least-squares polynomial trend fitting, residualization, and re-adding
the trend to predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import as_float_array, check_locations, check_vector

__all__ = ["PolynomialTrend", "detrend"]


def _design_matrix(locations: np.ndarray, degree: int) -> np.ndarray:
    """Bivariate polynomial design matrix with all terms of total degree
    at most ``degree`` (1, x, y, x², xy, y², ...)."""
    x, y = locations[:, 0], locations[:, 1]
    cols = []
    for total in range(degree + 1):
        for i in range(total + 1):
            cols.append((x ** (total - i)) * (y**i))
    return np.column_stack(cols)


@dataclass
class PolynomialTrend:
    """A fitted bivariate polynomial mean model.

    Attributes
    ----------
    degree:
        Total polynomial degree (paper-style mean models use 1-2).
    coefficients:
        Least-squares coefficients in graded-lexicographic term order.
    center, scale:
        Affine normalization of coordinates applied before evaluating the
        polynomial (keeps the normal equations well-conditioned for
        lon/lat magnitudes).
    """

    degree: int
    coefficients: np.ndarray
    center: np.ndarray
    scale: np.ndarray

    @classmethod
    def fit(cls, locations: np.ndarray, values: np.ndarray, *, degree: int = 1) -> "PolynomialTrend":
        """Least-squares fit of the trend surface.

        Parameters
        ----------
        locations:
            ``(n, 2)`` coordinates.
        values:
            ``(n,)`` observations.
        degree:
            Total polynomial degree, ``>= 0``.
        """
        if degree < 0:
            raise ShapeError(f"degree must be >= 0, got {degree}")
        pts = check_locations(locations, "locations")
        if pts.shape[1] != 2:
            raise ShapeError("polynomial trends are defined over 2-D coordinates")
        vals = check_vector(as_float_array(values, "values"), pts.shape[0], "values")
        n_terms = (degree + 1) * (degree + 2) // 2
        if pts.shape[0] < n_terms:
            raise ShapeError(
                f"need at least {n_terms} points to fit a degree-{degree} trend, got {pts.shape[0]}"
            )
        center = pts.mean(axis=0)
        scale = pts.std(axis=0)
        scale[scale == 0.0] = 1.0
        normalized = (pts - center) / scale
        design = _design_matrix(normalized, degree)
        coef, *_ = np.linalg.lstsq(design, vals, rcond=None)
        return cls(degree=degree, coefficients=coef, center=center, scale=scale)

    def __call__(self, locations: np.ndarray) -> np.ndarray:
        """Evaluate the trend surface at ``locations``."""
        pts = check_locations(locations, "locations")
        if pts.shape[1] != 2:
            raise ShapeError("polynomial trends are defined over 2-D coordinates")
        normalized = (pts - self.center) / self.scale
        return _design_matrix(normalized, self.degree) @ self.coefficients

    def residuals(self, locations: np.ndarray, values: np.ndarray) -> np.ndarray:
        """``values - trend(locations)`` — the zero-mean field to model."""
        vals = as_float_array(values, "values")
        return vals - self(locations)


def detrend(
    locations: np.ndarray, values: np.ndarray, *, degree: int = 1
) -> Tuple[np.ndarray, PolynomialTrend]:
    """Fit a polynomial mean model and return (residuals, trend).

    The paper's real-data pipeline in one call: fit the mean process,
    model the residuals with a zero-mean Matérn GP, and add
    ``trend(new_locations)`` back onto kriging predictions.
    """
    trend = PolynomialTrend.fit(locations, values, degree=degree)
    return trend.residuals(locations, values), trend
