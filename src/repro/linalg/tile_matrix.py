"""Tile decomposition of dense matrices (paper §V, Chameleon substitute).

Tile algorithms split an ``n x n`` matrix into ``nt x nt`` square tiles of
size ``nb`` (the last row/column of tiles may be smaller when ``nb`` does
not divide ``n``). Fine-grained per-tile tasks weaken synchronization
points relative to LAPACK's fork-join blocks and expose look-ahead — the
motivation recalled in the paper's §V.

:class:`TileGrid` is the index arithmetic; :class:`TileMatrix` is dense
storage, one contiguous ndarray per tile (so each BLAS call runs on
cache-friendly contiguous data, per the HPC guide's memory-layout
advice). Symmetric matrices can store the lower triangle only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import check_square

__all__ = ["TileGrid", "TileMatrix", "materialize_tile"]


def materialize_tile(
    raw: np.ndarray, expected: Tuple[int, int], i: int, j: int
) -> np.ndarray:
    """Validate and take ownership of a generated tile buffer.

    Generators may hand back views into a caller-owned dense matrix (e.g.
    ``TLRMatrix.from_dense``); tiles must own contiguous float64 storage
    because solvers factor them in place.
    """
    tile = np.asarray(raw, dtype=np.float64)
    if tile.base is not None or not tile.flags["C_CONTIGUOUS"]:
        tile = tile.copy()
    if tile.shape != tuple(expected):
        raise ShapeError(
            f"generator returned shape {tile.shape} for tile ({i},{j}), "
            f"expected {tuple(expected)}"
        )
    return tile


@dataclass(frozen=True)
class TileGrid:
    """Index arithmetic for a 1-D tiling of ``n`` rows with tile size ``nb``.

    Attributes
    ----------
    n:
        Matrix dimension.
    nb:
        Tile size (the paper tunes 560 for dense, 1900 for TLR at scale).
    """

    n: int
    nb: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ShapeError(f"n must be >= 1, got {self.n}")
        if self.nb < 1:
            raise ShapeError(f"nb must be >= 1, got {self.nb}")

    @property
    def nt(self) -> int:
        """Number of tiles per dimension."""
        return -(-self.n // self.nb)

    def tile_size(self, i: int) -> int:
        """Rows in tile ``i`` (the last tile may be ragged)."""
        self._check_index(i)
        return min(self.nb, self.n - i * self.nb)

    def offset(self, i: int) -> int:
        """Global row index where tile ``i`` starts."""
        self._check_index(i)
        return i * self.nb

    def tile_slice(self, i: int) -> slice:
        """Global row slice covered by tile ``i``."""
        off = self.offset(i)
        return slice(off, off + self.tile_size(i))

    def partition(self, x: np.ndarray) -> list:
        """Split the leading axis of ``x`` into per-tile contiguous copies.

        Copies (never views): block solvers update these buffers in place
        and must not clobber the caller's array.
        """
        if x.shape[0] != self.n:
            raise ShapeError(f"expected leading dimension {self.n}, got {x.shape[0]}")
        return [np.array(x[self.tile_slice(i)], dtype=np.float64, copy=True) for i in range(self.nt)]

    def unpartition(self, blocks: list) -> np.ndarray:
        """Concatenate per-tile blocks back along the leading axis."""
        if len(blocks) != self.nt:
            raise ShapeError(f"expected {self.nt} blocks, got {len(blocks)}")
        return np.concatenate(blocks, axis=0)

    def _check_index(self, i: int) -> None:
        if not (0 <= i < self.nt):
            raise ShapeError(f"tile index {i} out of range [0, {self.nt})")


class TileMatrix:
    """Dense matrix stored as a grid of contiguous tiles.

    Parameters
    ----------
    grid:
        The tiling.
    symmetric_lower:
        When True only tiles with ``i >= j`` are stored; ``tile(i, j)``
        with ``i < j`` returns the transpose of the mirrored tile
        (a copy — callers must not mutate it).
    """

    def __init__(self, grid: TileGrid, *, symmetric_lower: bool = False) -> None:
        self.grid = grid
        self.symmetric_lower = symmetric_lower
        self._tiles: Dict[Tuple[int, int], np.ndarray] = {}

    # -------------------------------------------------------- constructors
    @classmethod
    def from_dense(
        cls, a: np.ndarray, nb: int, *, symmetric_lower: bool = False
    ) -> "TileMatrix":
        """Tile an existing dense matrix (copies into per-tile buffers)."""
        check_square(a, "a")
        grid = TileGrid(a.shape[0], nb)
        tm = cls(grid, symmetric_lower=symmetric_lower)
        for i in range(grid.nt):
            jmax = i + 1 if symmetric_lower else grid.nt
            for j in range(jmax):
                # copy=True: slices of `a` may alias the caller's buffer
                # (a single-tile matrix would otherwise be factored in
                # place over the input).
                tile = np.array(
                    a[grid.tile_slice(i), grid.tile_slice(j)], dtype=np.float64, copy=True
                )
                tm.set_tile(i, j, tile)
        return tm

    @classmethod
    def from_generator(
        cls,
        n: int,
        nb: int,
        generate: Callable[[slice, slice], np.ndarray],
        *,
        symmetric_lower: bool = False,
        runtime=None,
    ) -> "TileMatrix":
        """Build tiles by calling ``generate(row_slice, col_slice)``.

        This is the covariance *generation* stage of ExaGeoStat: the dense
        matrix never exists as a single allocation.

        Parameters
        ----------
        runtime:
            Optional :class:`~repro.runtime.Runtime`. When given, one
            generation task per tile is inserted (tiles are independent,
            so all tasks run concurrently) and the call blocks until all
            tiles are materialized. Tile contents are identical to the
            serial path.
        """
        if runtime is not None:
            from .generation import generate_tile_matrix  # local: avoid cycle

            return generate_tile_matrix(
                n, nb, generate, runtime, symmetric_lower=symmetric_lower
            )
        grid = TileGrid(n, nb)
        tm = cls(grid, symmetric_lower=symmetric_lower)
        for i in range(grid.nt):
            jmax = i + 1 if symmetric_lower else grid.nt
            for j in range(jmax):
                raw = generate(grid.tile_slice(i), grid.tile_slice(j))
                expected = (grid.tile_size(i), grid.tile_size(j))
                tm.set_tile(i, j, materialize_tile(raw, expected, i, j))
        return tm

    # ------------------------------------------------------------ accessors
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.grid.n

    @property
    def nt(self) -> int:
        """Tiles per dimension."""
        return self.grid.nt

    def tile(self, i: int, j: int) -> np.ndarray:
        """Tile ``(i, j)``; mirrored transpose copy for ``i < j`` when symmetric."""
        if self.symmetric_lower and i < j:
            return self._tiles[(j, i)].T.copy()
        return self._tiles[(i, j)]

    def set_tile(self, i: int, j: int, tile: np.ndarray) -> None:
        """Install a tile buffer (must match the grid's tile shape)."""
        if self.symmetric_lower and i < j:
            raise ShapeError("symmetric_lower matrices store only i >= j tiles")
        expected = (self.grid.tile_size(i), self.grid.tile_size(j))
        if tile.shape != expected:
            raise ShapeError(f"tile ({i},{j}) must have shape {expected}, got {tile.shape}")
        self._tiles[(i, j)] = tile

    def has_tile(self, i: int, j: int) -> bool:
        """True when tile ``(i, j)`` is physically stored."""
        return (i, j) in self._tiles

    def iter_stored(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Iterate physically stored tiles as ``(i, j, buffer)``."""
        for (i, j), tile in sorted(self._tiles.items()):
            yield i, j, tile

    # ------------------------------------------------------------- exports
    def to_dense(self) -> np.ndarray:
        """Assemble the full dense matrix (symmetric mirror applied)."""
        g = self.grid
        out = np.zeros((g.n, g.n), dtype=np.float64)
        for (i, j), tile in self._tiles.items():
            out[g.tile_slice(i), g.tile_slice(j)] = tile
            if self.symmetric_lower and i != j:
                out[g.tile_slice(j), g.tile_slice(i)] = tile.T
        return out

    def copy(self) -> "TileMatrix":
        """Deep copy (fresh tile buffers)."""
        tm = TileMatrix(self.grid, symmetric_lower=self.symmetric_lower)
        for (i, j), tile in self._tiles.items():
            tm._tiles[(i, j)] = tile.copy()
        return tm

    @property
    def nbytes(self) -> int:
        """Bytes of stored tile payloads."""
        return int(sum(t.nbytes for t in self._tiles.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TileMatrix(n={self.n}, nb={self.grid.nb}, nt={self.nt}, "
            f"symmetric_lower={self.symmetric_lower})"
        )
