"""Table II — Matérn estimates for the 4 wind-speed regions.

Same protocol as Table I (see :mod:`repro.experiments.table1`) over the
WRF-domain substitute: smoother fields (θ3 ≈ 1.2-1.4), larger variances,
stronger correlation — the regime where the paper found TLR needs its
higher accuracy thresholds (only up to 1e-9 is still profitable).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..data.wind_speed import WIND_SPEED_REGION_THETA, WindSpeedGenerator
from ..mle.estimator import MLEstimator
from ..optim.bounds import default_matern_bounds
from .common import ResultTable, bench_scale

__all__ = ["run_table2", "PAPER_TABLE2_FULLTILE"]

#: The paper's Table II full-tile reference values (ground truth here).
PAPER_TABLE2_FULLTILE = WIND_SPEED_REGION_THETA

PARAM_NAMES = ("variance", "range", "smoothness")


def run_table2(
    *,
    regions: Optional[Sequence[str]] = None,
    accuracies: Sequence[float] = (1e-5, 1e-7, 1e-9),
    n: Optional[int] = None,
    tile_size: Optional[int] = None,
    maxiter: Optional[int] = None,
    seed: int = 22,
) -> Dict[str, ResultTable]:
    """Reproduce Table II: one table per Matérn parameter."""
    quick = bench_scale() == "quick"
    if regions is None:
        regions = ("R1", "R3") if quick else tuple(WIND_SPEED_REGION_THETA)
    n = (300 if quick else 800) if n is None else n
    tile_size = (75 if quick else 150) if tile_size is None else tile_size
    maxiter = (50 if quick else 120) if maxiter is None else maxiter

    gen = WindSpeedGenerator(points_per_region=n)
    techniques: list[Tuple[str, Optional[float]]] = [("tlr", a) for a in accuracies]
    techniques.append(("full-tile", None))
    tech_names = [f"TLR {a:.0e}" for a in accuracies] + ["Full-tile"]

    estimates: Dict[str, Dict[str, np.ndarray]] = {}
    for idx, region in enumerate(regions):
        ds = gen.region_dataset(region, seed=seed + idx)
        estimates[region] = {}
        for (variant, acc), tname in zip(techniques, tech_names):
            est = MLEstimator.from_dataset(ds, variant=variant, acc=acc, tile_size=tile_size)
            bounds = default_matern_bounds(ds.values, max_range=60.0)
            # Start from the generating parameters (see table1 rationale).
            x0 = np.asarray(ds.meta["theta_true"], dtype=float)
            fit = est.fit(maxiter=maxiter, bounds=bounds, x0=x0)
            estimates[region][tname] = fit.theta

    tables: Dict[str, ResultTable] = {}
    for p, pname in enumerate(PARAM_NAMES):
        table = ResultTable(
            title=f"Table II — wind speed, estimated Matérn {pname} per region",
            headers=["region", "truth (paper full-tile)"] + tech_names,
        )
        for region in regions:
            truth = WIND_SPEED_REGION_THETA[region][p]
            row: list[object] = [region, truth]
            for tname in tech_names:
                row.append(float(estimates[region][tname][p]))
            table.add_row(*row)
        table.add_note(
            f"synthetic substitute fields (n={n}/region) from the paper's full-tile "
            "estimates; see DESIGN.md §4"
        )
        tables[pname] = table
    return tables
