"""Table I bench — per-region Matérn estimates, soil-moisture substitute.

Fits every configured region with TLR at several accuracies and the
full-tile reference; writes one table per Matérn parameter in the
paper's layout and checks the headline agreement pattern.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import save_tables
from repro.experiments.table1 import run_table1


def test_table1_soil_moisture(benchmark, outdir):
    """Region-wise estimation study (quick scale: subset of regions)."""
    tables = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_tables(list(tables.values()), "table1_soil_moisture")

    # Agreement pattern: the tightest TLR column must sit close to the
    # Full-tile column (same data, near-exact algebra).
    for pname, table in tables.items():
        tight = table.headers.index("TLR 1e-09")
        full = table.headers.index("Full-tile")
        for row in table.rows:
            t, f = float(row[tight]), float(row[full])
            scale = max(abs(f), 0.1)
            assert abs(t - f) / scale < 0.6, (pname, row[0], t, f)
