"""Tests for low-rank compression: SVD, RSVD, ACA, addition, rounding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import use_config
from repro.exceptions import CompressionError, ShapeError
from repro.linalg.compression import (
    LowRank,
    aca_compress,
    compress,
    lr_add,
    recompress,
    rsvd_compress,
    svd_compress,
    truncation_rank,
)


def random_lowrank_matrix(rng, m, n, rank, noise=0.0):
    """Exactly rank-``rank`` matrix plus optional dense noise."""
    u = rng.standard_normal((m, rank))
    v = rng.standard_normal((rank, n))
    a = u @ v
    if noise:
        a = a + noise * rng.standard_normal((m, n))
    return a


def covariance_tile(rng, m=60, n=60, range_=0.3):
    """A realistic smooth (hence compressible) off-diagonal tile."""
    from repro.kernels.covariance import MaternCovariance

    x = np.sort(rng.random(m))[:, None]
    y = np.sort(rng.random(n))[:, None] + 2.0  # well-separated clusters
    return MaternCovariance(1.0, range_, 1.5).matrix(x, y)


class TestTruncationRank:
    def test_relative(self):
        s = np.array([10.0, 1.0, 0.1, 0.01])
        assert truncation_rank(s, 0.05, "relative") == 2
        assert truncation_rank(s, 1e-4, "relative") == 4

    def test_absolute(self):
        s = np.array([10.0, 1.0, 0.1, 0.01])
        assert truncation_rank(s, 0.5, "absolute") == 2
        assert truncation_rank(s, 0.001, "absolute") == 4

    def test_empty_and_bad_rule(self):
        assert truncation_rank(np.array([]), 0.1, "relative") == 0
        with pytest.raises(ShapeError):
            truncation_rank(np.array([1.0]), 0.1, "weird")


class TestLowRank:
    def test_basic_properties(self, rng):
        lr = LowRank(rng.random((10, 3)), rng.random((3, 8)))
        assert lr.shape == (10, 8)
        assert lr.rank == 3
        assert lr.nbytes == (30 + 24) * 8
        assert lr.to_dense().shape == (10, 8)

    def test_rank_zero(self):
        lr = LowRank(np.zeros((5, 0)), np.zeros((0, 7)))
        assert lr.rank == 0
        np.testing.assert_array_equal(lr.to_dense(), np.zeros((5, 7)))

    def test_incompatible_factors(self, rng):
        with pytest.raises(ShapeError):
            LowRank(rng.random((5, 3)), rng.random((2, 5)))

    def test_set_factors_shape_guard(self, rng):
        lr = LowRank(rng.random((6, 2)), rng.random((2, 6)))
        lr.set_factors(rng.random((6, 4)), rng.random((4, 6)))  # rank change ok
        assert lr.rank == 4
        with pytest.raises(ShapeError):
            lr.set_factors(rng.random((5, 2)), rng.random((2, 6)))

    def test_copy_independent(self, rng):
        lr = LowRank(rng.random((4, 2)), rng.random((2, 4)))
        dup = lr.copy()
        dup.u[:] = 0
        assert lr.u.max() > 0


class TestSVDCompress:
    def test_exact_rank_recovery(self, rng):
        a = random_lowrank_matrix(rng, 40, 30, 5)
        lr = svd_compress(a, 1e-10, rule="relative")
        assert lr.rank == 5
        np.testing.assert_allclose(lr.to_dense(), a, atol=1e-8)

    @pytest.mark.parametrize("acc", [1e-2, 1e-5, 1e-9])
    def test_relative_error_contract(self, acc, rng):
        a = covariance_tile(rng)
        lr = svd_compress(a, acc, rule="relative")
        err = np.linalg.norm(a - lr.to_dense(), 2)
        assert err <= acc * np.linalg.norm(a, 2) + 1e-14

    def test_absolute_rule(self, rng):
        a = covariance_tile(rng)
        lr = svd_compress(a, 1e-6, rule="absolute")
        assert np.linalg.norm(a - lr.to_dense(), 2) <= 1e-6 + 1e-12

    def test_rank_monotone_in_accuracy(self, rng):
        a = covariance_tile(rng)
        ranks = [svd_compress(a, acc).rank for acc in (1e-2, 1e-5, 1e-9, 1e-13)]
        assert ranks == sorted(ranks)

    def test_zero_matrix(self):
        lr = svd_compress(np.zeros((10, 10)), 1e-8)
        assert lr.rank == 0


class TestRSVDCompress:
    @pytest.mark.parametrize("acc", [1e-3, 1e-6])
    def test_error_contract(self, acc, rng):
        a = covariance_tile(rng)
        lr = rsvd_compress(a, acc, seed=0)
        err = np.linalg.norm(a - lr.to_dense(), 2)
        # Randomized bound: allow modest slack over the target.
        assert err <= 10 * acc * np.linalg.norm(a, 2)

    def test_adaptivity_grows_rank(self, rng):
        a = random_lowrank_matrix(rng, 80, 80, 40)
        lr = rsvd_compress(a, 1e-9, initial_rank=4, seed=1)
        assert lr.rank >= 39
        np.testing.assert_allclose(lr.to_dense(), a, atol=1e-5)

    def test_full_rank_fallback(self, rng):
        a = rng.standard_normal((20, 20))  # incompressible
        lr = rsvd_compress(a, 1e-12, seed=2)
        np.testing.assert_allclose(lr.to_dense(), a, atol=1e-8)


class TestACACompress:
    @pytest.mark.parametrize("acc", [1e-3, 1e-7])
    def test_error_contract_frobenius(self, acc, rng):
        a = covariance_tile(rng)
        lr = aca_compress(a, acc, rule="relative")
        err = np.linalg.norm(a - lr.to_dense())
        assert err <= acc * np.linalg.norm(a) + 1e-14

    def test_zero_matrix_rank0(self):
        lr = aca_compress(np.zeros((8, 12)), 1e-6)
        assert lr.rank == 0
        assert lr.shape == (8, 12)

    def test_max_rank_failure(self, rng):
        a = rng.standard_normal((30, 30))
        with pytest.raises(CompressionError):
            aca_compress(a, 1e-12, max_rank=3)

    def test_exact_low_rank(self, rng):
        a = random_lowrank_matrix(rng, 25, 25, 3)
        lr = aca_compress(a, 1e-10)
        assert lr.rank <= 6
        np.testing.assert_allclose(lr.to_dense(), a, atol=1e-7)


class TestDispatchAndConfig:
    def test_compress_dispatch(self, rng):
        a = covariance_tile(rng)
        for method in ("svd", "rsvd", "aca"):
            lr = compress(a, 1e-5, method=method)
            assert lr.rank >= 1

    def test_config_default_method(self, rng):
        a = covariance_tile(rng)
        with use_config(compression_method="aca"):
            lr = compress(a, 1e-5)
        assert lr.rank >= 1

    def test_unknown_method(self, rng):
        with pytest.raises(ShapeError):
            compress(covariance_tile(rng), 1e-5, method="magic")


class TestAddRecompress:
    def test_lr_add_exact(self, rng):
        a = svd_compress(random_lowrank_matrix(rng, 20, 20, 3), 1e-12)
        b = svd_compress(random_lowrank_matrix(rng, 20, 20, 4), 1e-12)
        s = lr_add(a, b, beta=-2.0)
        np.testing.assert_allclose(
            s.to_dense(), a.to_dense() - 2.0 * b.to_dense(), atol=1e-10
        )
        assert s.rank == a.rank + b.rank

    def test_lr_add_zero_rank_operands(self, rng):
        z = LowRank(np.zeros((10, 0)), np.zeros((0, 10)))
        b = svd_compress(random_lowrank_matrix(rng, 10, 10, 2), 1e-12)
        np.testing.assert_allclose(lr_add(z, b).to_dense(), b.to_dense(), atol=1e-12)
        np.testing.assert_allclose(lr_add(b, z).to_dense(), b.to_dense(), atol=1e-12)

    def test_lr_add_shape_mismatch(self, rng):
        a = LowRank(rng.random((5, 1)), rng.random((1, 5)))
        b = LowRank(rng.random((6, 1)), rng.random((1, 6)))
        with pytest.raises(ShapeError):
            lr_add(a, b)

    def test_recompress_reduces_inflated_rank(self, rng):
        base = random_lowrank_matrix(rng, 30, 30, 4)
        a = svd_compress(base, 1e-12)
        doubled = lr_add(a, LowRank(-a.u.copy(), a.v.copy()))  # exactly zero
        rounded = recompress(doubled, 1e-8)
        # Relative truncation keeps noise-level directions, but the
        # represented block must be numerically zero and not inflated.
        assert rounded.rank <= doubled.rank
        assert np.linalg.norm(rounded.to_dense()) < 1e-12

    def test_recompress_reduces_redundant_rank(self, rng):
        # Duplicating the same factors doubles the stored rank without
        # adding information; rounding must collapse it back.
        base = random_lowrank_matrix(rng, 30, 30, 4)
        a = svd_compress(base, 1e-12)
        doubled = lr_add(a, a)  # represents 2*base, rank 8 stored
        rounded = recompress(doubled, 1e-10)
        assert rounded.rank == 4
        np.testing.assert_allclose(rounded.to_dense(), 2 * base, atol=1e-8)

    @pytest.mark.parametrize("acc", [1e-4, 1e-8])
    def test_recompress_error_contract(self, acc, rng):
        a = svd_compress(covariance_tile(rng), 1e-13)
        rounded = recompress(a, acc)
        err = np.linalg.norm(a.to_dense() - rounded.to_dense(), 2)
        assert err <= acc * np.linalg.norm(a.to_dense(), 2) + 1e-13
        assert rounded.rank <= a.rank

    def test_recompress_rank_zero_passthrough(self):
        z = LowRank(np.zeros((7, 0)), np.zeros((0, 7)))
        assert recompress(z, 1e-8).rank == 0

    @settings(max_examples=15)
    @given(st.integers(1, 8), st.floats(1e-10, 1e-2))
    def test_property_svd_contract_on_noisy_lowrank(self, rank, acc):
        rng = np.random.default_rng(rank)
        a = random_lowrank_matrix(rng, 30, 25, rank, noise=1e-12)
        lr = svd_compress(a, acc, rule="relative")
        err = np.linalg.norm(a - lr.to_dense(), 2)
        assert err <= acc * np.linalg.norm(a, 2) + 1e-11
