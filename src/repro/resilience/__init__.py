"""Resilience primitives: fault injection, retry/deadline policies, breakers.

Long-running MLE and kriging services meet partial failure long before
they meet FLOP limits: torn bundle writes, killed workers, stragglers,
overload. This package makes failure handling a *tested subsystem*
instead of scattered ad-hoc code:

* :mod:`~repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` with named injection sites threaded through
  serving, fitting, and the runtime; a no-op when unarmed.
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` (jittered
  exponential backoff, idempotency-aware) and :class:`Deadline`
  (absolute, propagated from the HTTP edge down to the engine).
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker`
  (closed/open/half-open, per model and per worker) and
  :class:`AdmissionGate` (bounded in-flight load shedding).
"""

from .breaker import AdmissionGate, BreakerPool, CircuitBreaker
from .faults import (
    PLAN_ENV,
    SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    disarm,
    fault_point,
)
from .policy import Deadline, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultRule",
    "arm",
    "disarm",
    "active_plan",
    "fault_point",
    "SITES",
    "PLAN_ENV",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "AdmissionGate",
    "BreakerPool",
]
