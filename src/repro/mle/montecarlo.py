"""Monte-Carlo accuracy study harness (paper §VIII-D.1, Figures 6-7).

Protocol, mirroring the paper:

1. generate one set of irregular locations and ``R`` measurement vectors
   from a known Matérn ``theta`` **in exact computation** (all variants
   see identical data);
2. for each replicate and each computation technique (TLR at several
   accuracies, full-tile / full-block reference), re-estimate ``theta``
   by MLE — these estimates populate the Figure 6 boxplots;
3. per replicate, hold out ``m`` random points, predict them with the
   fitted model, and record the MSE (eq. (7)) — the Figure 7 boxplots.

The paper runs n = 40K with 100 replicates on a Cray; the harness scales
all of that down by default and exposes every size knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.fields import sample_gaussian_field
from ..data.synthetic import generate_irregular_grid
from ..kernels.covariance import MaternCovariance
from ..utils.logging import get_logger
from ..utils.rng import SeedLike, as_generator, spawn_generators
from .estimator import MLEstimator
from .metrics import mean_squared_error

__all__ = ["MonteCarloResult", "run_monte_carlo", "summarize_boxplot"]

logger = get_logger("montecarlo")

#: Default computation techniques, matching Figure 6's panels.
DEFAULT_TECHNIQUES: Tuple[Tuple[str, Optional[float]], ...] = (
    ("tlr", 1e-7),
    ("tlr", 1e-9),
    ("tlr", 1e-12),
    ("full-tile", None),
)


def technique_label(variant: str, acc: Optional[float]) -> str:
    """Human-readable technique name, e.g. ``"TLR-acc(1e-09)"``."""
    if variant == "tlr":
        return f"TLR-acc({acc:.0e})"
    return {"full-tile": "Full-tile", "full-block": "Full-block"}.get(variant, variant)


@dataclass
class MonteCarloResult:
    """Per-replicate estimates and prediction errors for one true theta.

    Attributes
    ----------
    theta_true:
        The generating parameter vector.
    estimates:
        ``technique -> (R, 3)`` array of estimated theta per replicate.
    mse:
        ``technique -> (R,)`` prediction MSE per replicate.
    logliks:
        ``technique -> (R,)`` maximized log-likelihood per replicate.
    """

    theta_true: np.ndarray
    estimates: Dict[str, np.ndarray] = field(default_factory=dict)
    mse: Dict[str, np.ndarray] = field(default_factory=dict)
    logliks: Dict[str, np.ndarray] = field(default_factory=dict)


def run_monte_carlo(
    theta_true: Sequence[float],
    *,
    n: int = 900,
    n_replicates: int = 10,
    n_predict: int = 100,
    techniques: Sequence[Tuple[str, Optional[float]]] = DEFAULT_TECHNIQUES,
    tile_size: Optional[int] = None,
    maxiter: int = 100,
    seed: SeedLike = None,
    metric: str = "euclidean",
) -> MonteCarloResult:
    """Run the Figure 6/7 Monte-Carlo study for one true parameter vector.

    Parameters
    ----------
    theta_true:
        ``(variance, range, smoothness)`` of the generating Matérn model.
    n:
        Number of spatial locations (paper: 40,000).
    n_replicates:
        Independent measurement vectors (paper: 100).
    n_predict:
        Held-out points per replicate for the MSE (paper: 100).
    techniques:
        Sequence of ``(variant, acc)`` pairs to compare.
    tile_size, maxiter, seed, metric:
        Size/optimizer/randomness knobs.

    Returns
    -------
    :class:`MonteCarloResult`
    """
    theta_true = np.asarray(theta_true, dtype=np.float64)
    rng = as_generator(seed)
    locations = generate_irregular_grid(n, rng)
    truth = MaternCovariance(*theta_true, metric=metric)
    fields = sample_gaussian_field(locations, truth, rng, n_samples=n_replicates)
    fields = np.atleast_2d(fields)
    replicate_rngs = spawn_generators(n_replicates, rng)

    result = MonteCarloResult(theta_true=theta_true)
    for variant, acc in techniques:
        label = technique_label(variant, acc)
        est = np.empty((n_replicates, theta_true.size))
        mses = np.empty(n_replicates)
        lls = np.empty(n_replicates)
        for r in range(n_replicates):
            z = fields[r]
            rrng = replicate_rngs[r]
            holdout = rrng.choice(n, size=min(n_predict, n - 1), replace=False)
            mask = np.ones(n, dtype=bool)
            mask[holdout] = False
            estimator = MLEstimator(
                locations[mask],
                z[mask],
                model=MaternCovariance(metric=metric),
                variant=variant,
                acc=acc,
                tile_size=tile_size,
            )
            fit = estimator.fit(maxiter=maxiter)
            pred = estimator.predict(fit, locations[holdout])
            est[r] = fit.theta
            lls[r] = fit.loglik
            mses[r] = mean_squared_error(z[holdout], pred)
            logger.debug(
                "%s replicate %d: theta=%s mse=%.4g", label, r, np.round(fit.theta, 4), mses[r]
            )
        result.estimates[label] = est
        result.mse[label] = mses
        result.logliks[label] = lls
    return result


def summarize_boxplot(samples: np.ndarray) -> Dict[str, float]:
    """Five-number summary (plus mean) of a 1-D sample, as Figure 6 boxplots.

    Returns a dict with ``min, q1, median, q3, max, mean``.
    """
    arr = np.asarray(samples, dtype=np.float64)
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return {
        "min": float(arr.min()),
        "q1": float(q1),
        "median": float(med),
        "q3": float(q3),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }
