"""Span recording: nesting, ring bounds, sinks, adoption, arming."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import use_config
from repro.runtime.trace import TraceEvent
from repro.telemetry import spans as tspans
from repro.telemetry.spans import (
    SpanRecorder,
    adopt_trace_events,
    annotate,
    configure,
    enabled,
    get_recorder,
    record_span,
    span,
)


def test_disabled_by_default_and_noop_is_shared():
    assert enabled() is False
    a, b = span("x"), span("y")
    assert a is b  # the disabled path allocates nothing
    with a:
        annotate("k", "v")  # must not raise
    assert get_recorder() is None


def test_config_knob_arms_lazily():
    with use_config(telemetry_enabled=True, telemetry_max_spans=7):
        assert enabled() is True
        assert get_recorder().max_spans == 7


def test_env_wins_over_config(monkeypatch):
    monkeypatch.setenv(tspans.ENV_ENABLED, "0")
    with use_config(telemetry_enabled=True):
        assert enabled() is False


def test_span_nesting_parents_correctly():
    configure(enabled=True)
    with span("parent") as parent:
        with span("child"):
            pass
    recs = get_recorder().snapshot()
    assert [r["name"] for r in recs] == ["child", "parent"]
    child, par = recs
    assert child["trace_id"] == par["trace_id"]
    assert child["parent_id"] == par["span_id"]
    assert par["span_id"] == parent.ctx.span_id
    assert child["duration"] <= par["duration"]
    assert child["pid"] == os.getpid()


def test_span_attrs_annotations_and_error_flag():
    configure(enabled=True)
    with pytest.raises(RuntimeError):
        with span("work", variant="tlr"):
            annotate("note", 42)
            raise RuntimeError("boom")
    (rec,) = get_recorder().snapshot()
    assert rec["attrs"] == {"variant": "tlr"}
    assert ["note", 42] in rec["annotations"]
    assert ["error", "RuntimeError"] in rec["annotations"]


def test_recorder_ring_drops_oldest_and_counts():
    rec = SpanRecorder(max_spans=3)
    for i in range(5):
        rec.record({"name": f"s{i}"})
    assert len(rec) == 3
    assert rec.dropped == 2
    assert [r["name"] for r in rec.snapshot()] == ["s2", "s3", "s4"]
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0


def test_record_span_uses_explicit_ctx():
    configure(enabled=True)
    from repro.telemetry import context as tctx

    ctx = tctx.new_trace()
    record_span("queue_wait", 0.25, ctx=ctx, model="m")
    (rec,) = get_recorder().for_trace(ctx.trace_id)
    assert rec["parent_id"] == ctx.span_id
    assert rec["duration"] == 0.25
    assert rec["attrs"] == {"model": "m"}


def test_adopt_trace_events_shifts_onto_wall_clock():
    configure(enabled=True)
    from repro.telemetry import context as tctx
    import time

    ctx = tctx.new_trace()
    t = time.perf_counter()
    events = [
        TraceEvent(task_id=0, name="potrf", worker=0, t_start=t - 0.5, t_end=t - 0.4),
        TraceEvent(task_id=1, name="trsm", worker=1, t_start=t - 0.4, t_end=t - 0.1),
    ]
    assert adopt_trace_events(events, ctx=ctx) == 2
    recs = get_recorder().for_trace(ctx.trace_id)
    assert {r["name"] for r in recs} == {"task:potrf", "task:trsm"}
    for r in recs:
        assert r["parent_id"] == ctx.span_id
        assert abs(r["t_start"] - time.time()) < 5.0  # wall clock, not perf ticks


def test_jsonl_sink_bounded(tmp_path):
    sink = tmp_path / "sink"
    configure(enabled=True, max_spans=2, sink_dir=str(sink))
    for i in range(4):
        with span(f"s{i}"):
            pass
    files = list(sink.glob("spans-*.jsonl"))
    assert len(files) == 1
    lines = [json.loads(l) for l in files[0].read_text().splitlines()]
    assert [l["name"] for l in lines] == ["s0", "s1"]  # bounded: later drops


def test_configure_propagates_to_environment(tmp_path):
    configure(enabled=True, max_spans=123, sink_dir=str(tmp_path), propagate=True)
    assert os.environ[tspans.ENV_ENABLED] == "1"
    assert os.environ[tspans.ENV_MAX_SPANS] == "123"
    assert os.environ[tspans.ENV_SINK] == str(tmp_path)
    s = tspans.settings()
    assert s["enabled"] is True
    assert s["max_spans"] == 123
    assert s["sink_dir"] == str(tmp_path)


def test_settings_shape_when_disabled():
    assert tspans.settings() == {"enabled": False, "max_spans": 10_000, "sink_dir": None}
