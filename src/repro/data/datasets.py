"""Container type for geospatial datasets and train/test splitting.

The paper's accuracy experiments hold out a set of locations (e.g. 38 of
400 in Figure 2, or 100 random points per region in §VIII-D) and predict
them from the rest; :func:`train_test_split` reproduces that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.rng import SeedLike, as_generator
from ..utils.validation import as_float_array, check_locations

__all__ = ["GeoDataset", "train_test_split"]


@dataclass
class GeoDataset:
    """Locations plus one measurement per location.

    Attributes
    ----------
    locations:
        ``(n, d)`` coordinates. For ``metric="gcd"`` these are
        ``(longitude, latitude)`` in degrees.
    values:
        ``(n,)`` measurements (residuals after mean removal — the paper
        fits zero-mean models).
    metric:
        Distance metric the covariance should use (``"euclidean"`` or
        ``"gcd"``).
    name:
        Human-readable label.
    meta:
        Free-form provenance (true parameters for synthetic data, region
        name, etc.).
    """

    locations: np.ndarray
    values: np.ndarray
    metric: str = "euclidean"
    name: str = "dataset"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.locations = check_locations(self.locations, "locations")
        self.values = as_float_array(self.values, "values")
        if self.values.ndim != 1:
            raise ShapeError(f"values must be 1-D, got shape {self.values.shape}")
        if self.values.shape[0] != self.locations.shape[0]:
            raise ShapeError(
                f"values length {self.values.shape[0]} does not match "
                f"{self.locations.shape[0]} locations"
            )

    @property
    def n(self) -> int:
        """Number of observations."""
        return self.locations.shape[0]

    def subset(self, indices: np.ndarray, *, name: Optional[str] = None) -> "GeoDataset":
        """Dataset restricted to ``indices`` (meta is shared, not copied)."""
        idx = np.asarray(indices)
        return replace(
            self,
            locations=self.locations[idx],
            values=self.values[idx],
            name=name or self.name,
        )

    def subsample(self, n: int, seed: SeedLike = None, *, name: Optional[str] = None) -> "GeoDataset":
        """Uniform random subsample of ``n`` observations without replacement."""
        if not (1 <= n <= self.n):
            raise ShapeError(f"cannot subsample {n} of {self.n} observations")
        rng = as_generator(seed)
        idx = rng.choice(self.n, size=n, replace=False)
        idx.sort()
        return self.subset(idx, name=name or f"{self.name}[sub{n}]")


def train_test_split(
    dataset: GeoDataset,
    n_test: int,
    seed: SeedLike = None,
) -> Tuple[GeoDataset, GeoDataset]:
    """Randomly hold out ``n_test`` observations for prediction validation.

    Mirrors the paper's protocol ("the missing values are randomly picked
    from the generated data so that it can be used as a prediction
    accuracy reference").

    Returns
    -------
    ``(train, test)`` datasets; indices are disjoint and cover the input.
    """
    if not (1 <= n_test < dataset.n):
        raise ShapeError(
            f"n_test must lie in [1, {dataset.n - 1}], got {n_test}"
        )
    rng = as_generator(seed)
    perm = rng.permutation(dataset.n)
    test_idx = np.sort(perm[:n_test])
    train_idx = np.sort(perm[n_test:])
    return (
        dataset.subset(train_idx, name=f"{dataset.name}[train]"),
        dataset.subset(test_idx, name=f"{dataset.name}[test]"),
    )
