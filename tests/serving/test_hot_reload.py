"""Hot-reload under load: soak/stress tests for registry + service + HTTP.

The contract being proven: :meth:`ModelRegistry.reload` swaps a
re-fitted bundle under a stable model id with **zero failed requests**
— in-flight predicts finish on the old engine, later predicts see the
new one, every answer is bit-identical to one of the two engines — and
the churn (LRU evictions, rehydrations, reloads, pool recycling) leaks
no runtime workers.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

import repro.serving.registry as registry_module
from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import ModelNotFoundError
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.runtime import Runtime
from repro.serving import (
    ModelBundle,
    ModelRegistry,
    PredictionService,
    ServingClient,
    ServingServer,
)

N, NB, ACC = 144, 36, 1e-9
THETA_A = (1.0, 0.1, 0.5)
THETA_B = (1.8, 0.2, 0.9)


def _bundle(variant, theta, with_factor=True):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant, tile_size=NB, acc=ACC
    )
    if with_factor:
        bundle.factor = bundle.build_engine().factor()
    return bundle


@pytest.fixture(scope="module")
def soak_paths(tmp_path_factory):
    """Three models (one per substrate) at theta A, plus theta-B variants
    of each for the reload swaps."""
    root = tmp_path_factory.mktemp("soak")
    paths = {}
    for variant in ("full-block", "full-tile", "tlr"):
        paths[variant, "A"] = _bundle(variant, THETA_A).save(
            root / f"{variant}-A.bundle"
        )
        paths[variant, "B"] = _bundle(variant, THETA_B).save(
            root / f"{variant}-B.bundle"
        )
    return paths


@pytest.fixture(scope="module")
def targets():
    return np.ascontiguousarray(np.random.default_rng(9).random((7, 2)))


class _TrackingRuntime(Runtime):
    """Runtime that records every instance so leak checks can audit them."""

    instances: list = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        type(self).instances.append(self)


# --------------------------------------------------------------------------
# In-process soak: asyncio clients vs concurrent reloads vs LRU churn.
# --------------------------------------------------------------------------


def test_soak_reload_under_concurrent_traffic(soak_paths, targets, monkeypatch):
    """Concurrent clients hammer 3 models (LRU budget 2 → constant
    evict/rehydrate) while reload() swaps each model A→B mid-flight.
    Zero failures, every answer bit-identical to the A- or B-engine,
    counters reconcile, and every Runtime the registry created is
    closed afterwards."""
    monkeypatch.setattr(_TrackingRuntime, "instances", [])
    monkeypatch.setattr(registry_module, "Runtime", _TrackingRuntime)
    models = ("full-block", "full-tile", "tlr")
    references = {
        (m, gen): PredictionEngine.from_bundle(soak_paths[m, gen]).predict(targets)
        for m in models
        for gen in ("A", "B")
    }
    # A and B engines must actually disagree, or the parity check is vacuous.
    for m in models:
        assert not np.array_equal(references[m, "A"], references[m, "B"])

    n_clients, rounds = 6, 10
    registry = ModelRegistry(max_models=2, num_shards=2, workers_per_shard=1)
    for m in models:
        registry.register(m, soak_paths[m, "A"])

    async def main():
        results: list = []
        async with PredictionService(
            registry, batch_window=0.002, max_batch=8
        ) as service:
            loop = asyncio.get_running_loop()

            async def client(cid: int):
                for r in range(rounds):
                    model = models[(cid + r) % len(models)]
                    out = await service.predict(model, targets)
                    results.append((model, out))

            async def reloader():
                for m in models:
                    await asyncio.sleep(0.01)
                    await loop.run_in_executor(
                        None, lambda m=m: registry.reload(m, path=soak_paths[m, "B"])
                    )

            await asyncio.gather(*[client(i) for i in range(n_clients)], reloader())
            snapshot = service.metrics.snapshot()
        return results, snapshot

    try:
        results, snapshot = asyncio.run(main())
    finally:
        registry.close()

    total = n_clients * rounds
    assert len(results) == total  # zero failed requests
    for model, out in results:
        assert np.array_equal(out, references[model, "A"]) or np.array_equal(
            out, references[model, "B"]
        ), f"{model}: answer matches neither the old nor the new engine"
    counters = snapshot["counters"]
    assert counters["requests"] == total
    assert counters["completed"] == total
    assert counters.get("errors", 0) == 0
    assert counters.get("deadline_exceeded", 0) == 0
    stats = registry.stats()
    assert stats["n_reloads"] == len(models)
    assert stats["n_evictions"] > 0  # the LRU actually churned
    # Zero worker leaks: every runtime the registry ever built is closed.
    assert _TrackingRuntime.instances, "soak never built a shard runtime"
    assert all(rt.closed for rt in _TrackingRuntime.instances)


def test_reload_swaps_predictions_and_keeps_id_stable(soak_paths, targets):
    registry = ModelRegistry(max_models=4)
    registry.register("m", soak_paths["full-block", "A"])
    ref_a = PredictionEngine.from_bundle(soak_paths["full-block", "A"]).predict(targets)
    ref_b = PredictionEngine.from_bundle(soak_paths["full-block", "B"]).predict(targets)
    with registry:
        old_engine = registry.engine("m")
        np.testing.assert_array_equal(old_engine.predict(targets), ref_a)
        new_engine = registry.reload("m", path=soak_paths["full-block", "B"])
        assert new_engine is not old_engine
        np.testing.assert_array_equal(registry.engine("m").predict(targets), ref_b)
        # The old engine object still answers in-flight work unchanged.
        np.testing.assert_array_equal(old_engine.predict(targets), ref_a)
        # Rehydration after eviction uses the *new* path.
        registry.evict("m")
        np.testing.assert_array_equal(registry.engine("m").predict(targets), ref_b)
        assert registry.stats()["n_reloads"] == 1


def test_reload_in_place_rereads_the_registered_path(soak_paths, targets, tmp_path):
    """reload() with no path re-reads the registered bundle — the re-fit
    overwrote it in place."""
    path = tmp_path / "inplace.bundle"
    _bundle("full-block", THETA_A).save(path)
    ref_a = PredictionEngine.from_bundle(path).predict(targets)
    with ModelRegistry(max_models=2) as registry:
        registry.register("m", path)
        np.testing.assert_array_equal(registry.engine("m").predict(targets), ref_a)
        _bundle("full-block", THETA_B).save(path)  # re-fit lands in place
        ref_b = PredictionEngine.from_bundle(path).predict(targets)
        registry.reload("m")
        np.testing.assert_array_equal(registry.engine("m").predict(targets), ref_b)


def test_reload_failure_keeps_old_engine_serving(soak_paths, targets, tmp_path):
    from repro.exceptions import BundleError

    with ModelRegistry(max_models=2) as registry:
        registry.register("m", soak_paths["tlr", "A"])
        ref = registry.engine("m").predict(targets)
        with pytest.raises(BundleError):
            registry.reload("m", path=tmp_path / "missing.bundle")
        # Old engine still installed and serving; the bad path did not
        # poison future rehydrations of the warm engine.
        np.testing.assert_array_equal(registry.engine("m").predict(targets), ref)
        assert registry.stats()["n_reloads"] == 0
        # Regression: the failed reload must not have committed the bad
        # path — rehydration after eviction still reads the good bundle.
        registry.evict("m")
        np.testing.assert_array_equal(registry.engine("m").predict(targets), ref)


def test_reload_unknown_model_raises(soak_paths):
    with ModelRegistry() as registry:
        with pytest.raises(ModelNotFoundError):
            registry.reload("ghost")


# --------------------------------------------------------------------------
# HTTP soak: threads of remote clients vs admin reloads.
# --------------------------------------------------------------------------


def test_http_soak_reload_under_concurrent_clients(soak_paths, targets):
    """The acceptance scenario over the real transport: concurrent HTTP
    clients against multi-process workers while the admin endpoint
    hot-swaps both models. Zero failed requests; every response is
    bit-identical to the old or new engine; counters reconcile."""
    models = ("full-block", "tlr")
    references = {
        (m, gen): PredictionEngine.from_bundle(soak_paths[m, gen]).predict(targets)
        for m in models
        for gen in ("A", "B")
    }
    n_threads, per_thread = 6, 8
    results: list = []
    errors: list = []
    lock = threading.Lock()

    with ServingServer(
        {m: soak_paths[m, "A"] for m in models},
        num_workers=2,
        service_options={"batch_window": 0.002, "max_batch": 8},
    ) as server:

        def hammer(tid: int):
            with ServingClient(server.url) as cli:
                for r in range(per_thread):
                    model = models[(tid + r) % len(models)]
                    try:
                        out = cli.predict(model, targets)
                        with lock:
                            results.append((model, out))
                    except Exception as exc:  # noqa: BLE001 - the soak counts these
                        with lock:
                            errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        with ServingClient(server.url) as admin:
            for m in models:
                admin.reload(m, soak_paths[m, "B"])
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive()

        with ServingClient(server.url) as cli:
            # After the swaps, traffic sees only the new engines.
            for m in models:
                np.testing.assert_array_equal(
                    cli.predict(m, targets), references[m, "B"]
                )
            counters = cli.metrics()["aggregate"]["counters"]
            health = cli.health()

    assert errors == []  # zero failed requests across the reloads
    assert len(results) == n_threads * per_thread
    for model, out in results:
        assert np.array_equal(out, references[model, "A"]) or np.array_equal(
            out, references[model, "B"]
        )
    total = n_threads * per_thread + len(models)  # + the post-swap checks
    assert counters["requests"] == total
    assert counters["completed"] == total
    assert counters.get("errors", 0) == 0
    assert health["status"] == "ok" and all(health["alive"])
