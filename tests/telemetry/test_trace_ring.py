"""Bounded runtime TraceRecorder ring + telemetry-armed Runtime wiring."""

from __future__ import annotations

from repro.config import use_config
from repro.runtime import Runtime
from repro.runtime.trace import TraceEvent, TraceRecorder
from repro.telemetry.spans import configure


def _ev(i, t=None):
    t = float(i) if t is None else t
    return TraceEvent(task_id=i, name=f"t{i}", worker=0, t_start=t, t_end=t + 0.5)


def test_unbounded_by_default():
    rec = TraceRecorder()
    for i in range(10):
        rec.record(_ev(i))
    assert len(rec) == 10
    assert rec.dropped == 0
    assert rec.total_recorded == 10


def test_ring_drops_oldest_and_counts():
    rec = TraceRecorder(max_events=3)
    for i in range(5):
        rec.record(_ev(i))
    assert len(rec) == 3
    assert rec.dropped == 2
    assert rec.total_recorded == 5
    assert [e.task_id for e in rec.events] == [2, 3, 4]
    # analysis views still work on the surviving window
    assert rec.makespan() == 2.5


def test_tail_since_watermark():
    rec = TraceRecorder(max_events=10)
    rec.record(_ev(0))
    mark = rec.total_recorded
    rec.record(_ev(1))
    rec.record(_ev(2))
    assert [e.task_id for e in rec.tail(mark)] == [1, 2]
    assert rec.tail(rec.total_recorded) == []


def test_tail_best_effort_under_full_ring():
    rec = TraceRecorder(max_events=2)
    mark = rec.total_recorded  # 0
    for i in range(5):
        rec.record(_ev(i))
    # 5 new events but only 2 survive: tail is clamped to what exists.
    assert [e.task_id for e in rec.tail(mark)] == [3, 4]


def test_clear_resets_all_counters():
    rec = TraceRecorder(max_events=2)
    for i in range(4):
        rec.record(_ev(i))
    rec.clear()
    assert len(rec) == 0
    assert rec.dropped == 0
    assert rec.total_recorded == 0


def test_runtime_trace_recorder_off_by_default():
    with Runtime(num_workers=1, engine="serial") as rt:
        assert rt.trace is None


def test_runtime_gets_bounded_recorder_when_armed():
    configure(enabled=True)
    with use_config(telemetry_max_spans=77):
        with Runtime(num_workers=1, engine="serial") as rt:
            assert rt.trace is not None
            assert rt.trace.max_events == 77


def test_runtime_explicit_trace_stays_unbounded():
    configure(enabled=True)
    with Runtime(num_workers=1, engine="serial", trace=True) as rt:
        assert rt.trace is not None
        assert rt.trace.max_events is None
