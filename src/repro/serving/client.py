"""HTTP client for :class:`~repro.serving.server.ServingServer`.

A thin, dependency-free wrapper over :mod:`http.client` that speaks the
server's JSON protocol and re-raises the server's typed errors
(:class:`~repro.exceptions.ModelNotFoundError`,
:class:`~repro.exceptions.ServiceOverloadedError`, ...) so remote and
in-process callers handle failures identically.

Each client holds one persistent keep-alive connection guarded by a
lock, so a client instance is thread-safe but serializes its own
requests — concurrent load generators should use one client per
logical client (see ``benchmarks/bench_http_serving.py``). JSON float
encoding round-trips every finite ``float64`` exactly, so
:meth:`ServingClient.predict` is bit-identical to calling the worker's
engine in process.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Union

import numpy as np

from ..exceptions import (
    CircuitOpenError,
    FittingError,
    LoadShedError,
    ServerError,
    ServiceOverloadedError,
)
from ..resilience.policy import RetryPolicy
from .server import exception_from_wire

__all__ = ["ServingClient"]

#: Rejections the server produced *without executing* the request —
#: load shedding at admission, an open circuit breaker, a full model
#: queue. Retrying them is always safe, even for POSTs whose body was
#: sent; whether they ARE retried is the retry policy's call.
_NOT_EXECUTED = (LoadShedError, CircuitOpenError, ServiceOverloadedError)


class ServingClient:
    """Client for one serving endpoint.

    Parameters
    ----------
    url:
        Base URL (``http://host:port``), e.g. ``server.url``. A bare
        ``host:port`` is accepted too.
    timeout:
        Socket timeout in seconds for each request.
    retry_policy:
        A :class:`~repro.resilience.RetryPolicy` applied to rejections
        the server guarantees it did **not** execute (load shedding,
        open circuit breakers, full model queues): the client backs off
        — honoring the server's ``Retry-After`` hint when one came back
        — and resubmits, up to the policy's attempt budget. ``None``
        (default) surfaces those rejections to the caller unchanged.
        Transport-level retries are unaffected: an idle keep-alive
        connection that turns out dead is always retried exactly once,
        and nothing else (a timeout, or a failure on a fresh
        connection) ever is — the request may have executed.

    Examples
    --------
    >>> with ServingServer({"m": path}) as server:        # doctest: +SKIP
    ...     client = ServingClient(server.url)
    ...     mean = client.predict("m", targets)
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 120.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if url.startswith("https://"):
            raise ServerError("ServingClient speaks plain http only")
        if not url.startswith("http://"):
            url = f"http://{url}"
        try:
            # urlsplit handles trailing slashes, paths, and [::1]-style
            # IPv6 hosts that naive ':' splitting gets wrong.
            parts = urllib.parse.urlsplit(url)
            self.host = parts.hostname or "127.0.0.1"
            self.port = 80 if parts.port is None else int(parts.port)
        except ValueError as exc:
            raise ServerError(f"invalid serving URL {url!r}: {exc}") from exc
        self.timeout = float(timeout)
        self.retry_policy = retry_policy
        self.n_retries = 0  # response-level (shed/breaker) resubmissions
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------- transport
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, headers)
            except _NOT_EXECUTED as exc:
                policy = self.retry_policy
                if policy is None or not policy.should_retry(exc, attempt):
                    raise
                # The server's Retry-After hint wins over the policy's
                # backoff curve — it knows when the breaker re-opens.
                hint = getattr(exc, "retry_after", None)
                pause = policy.delay(attempt) if hint is None else max(0.0, float(hint))
                if pause > 0.0:
                    time.sleep(pause)
                self.n_retries += 1
                attempt += 1

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if data is not None else {}
        headers.update(extra_headers or {})
        with self._lock:
            for attempt in (0, 1):
                reused = self._conn is not None
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    self._conn.request(method, path, body=data, headers=headers)
                    response = self._conn.getresponse()
                    raw = response.read()
                    break
                except (http.client.HTTPException, OSError) as exc:
                    self.close_locked()
                    # Retry exactly once, and only when an idle keep-alive
                    # connection turned out to be dead — the server closed
                    # it before this request could have been processed. A
                    # timeout or a failure on a fresh connection is NOT
                    # retried: the request may have executed (predicts
                    # would run twice, reloads would double-swap).
                    stale_keepalive = reused and isinstance(
                        exc,
                        (
                            http.client.RemoteDisconnected,
                            BrokenPipeError,
                            ConnectionResetError,
                        ),
                    )
                    if attempt or not stale_keepalive:
                        raise ServerError(
                            f"request to {self.host}:{self.port}{path} failed: {exc}"
                        ) from exc
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServerError(f"malformed response from server: {exc}") from exc
        if response.status >= 400:
            error = payload.get("error", {}) if isinstance(payload, dict) else {}
            exc = exception_from_wire(
                error.get("type", "ServerError"),
                error.get("message", f"HTTP {response.status}"),
            )
            retry_after = error.get("retry_after")
            if retry_after is None:
                header = response.getheader("Retry-After")
                retry_after = None if header is None else float(header)
            if retry_after is not None and isinstance(exc, _NOT_EXECUTED):
                exc.retry_after = float(retry_after)
            raise exc
        return payload

    def close_locked(self) -> None:
        """Drop the pooled connection (caller holds the lock)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._conn = None

    def close(self) -> None:
        """Close the pooled connection (safe to keep using the client)."""
        with self._lock:
            self.close_locked()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------- API
    def predict(
        self,
        model_id: str,
        targets: np.ndarray,
        *,
        z: Optional[np.ndarray] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        detail: bool = False,
    ) -> np.ndarray:
        """Conditional mean at ``targets`` — the remote twin of
        :meth:`~repro.serving.service.PredictionService.predict`.

        ``deadline`` (seconds) travels as the ``X-Repro-Deadline``
        header; the server turns it into an absolute deadline at the
        edge and every layer below inherits the shrinking remainder.
        With ``detail``, returns ``(prediction, flags)`` where flags
        carry the server's ``degraded`` bit — true when the answer came
        from a last-known-good engine generation.
        """
        body = {
            "model_id": model_id,
            "targets": np.asarray(targets, dtype=np.float64).tolist(),
        }
        if z is not None:
            body["z"] = np.asarray(z, dtype=np.float64).tolist()
        if priority:
            body["priority"] = int(priority)
        headers = None
        if deadline is not None:
            headers = {"X-Repro-Deadline": f"{float(deadline):.6f}"}
        payload = self._request("POST", "/v1/predict", body, headers)
        prediction = np.asarray(payload["prediction"], dtype=np.float64)
        if detail:
            return prediction, {"degraded": bool(payload.get("degraded", False))}
        return prediction

    def register(self, model_id: str, path: Union[str, "object"]) -> dict:
        """Register a bundle path on the owning worker."""
        return self._request(
            "POST", f"/v1/models/{self._quote(model_id)}", {"path": str(path)}
        )

    def reload(self, model_id: str, path: Optional[Union[str, "object"]] = None) -> dict:
        """Hot-swap ``model_id``'s bundle (default: re-read its registered path)."""
        body = {} if path is None else {"path": str(path)}
        return self._request("POST", f"/v1/models/{self._quote(model_id)}/reload", body)

    def set_policy(
        self,
        model_id: str,
        *,
        batch_window: Optional[float] = None,
        max_batch: Optional[int] = None,
    ) -> dict:
        """Install per-model batching knobs on the owning worker."""
        body: dict = {}
        if batch_window is not None:
            body["batch_window"] = float(batch_window)
        if max_batch is not None:
            body["max_batch"] = int(max_batch)
        return self._request(
            "POST", f"/v1/models/{self._quote(model_id)}/policy", body
        )

    @staticmethod
    def _quote(model_id: str) -> str:
        """Percent-encode a model id for a URL path segment, so ids with
        ``/`` or spaces address the same model they predict against."""
        return urllib.parse.quote(str(model_id), safe="")

    # ------------------------------------------------------------ fitting
    def fit(
        self,
        *,
        model_id: Optional[str] = None,
        from_model: Optional[str] = None,
        bundle_path: Optional[Union[str, "object"]] = None,
        locations: Optional[np.ndarray] = None,
        z: Optional[np.ndarray] = None,
        **options: object,
    ) -> dict:
        """Submit a fit job (``POST /v1/fit``); returns ``{"job_id", ...}``.

        ``from_model`` refits an already-served model (its bundle
        supplies data, substrate, and — by default — a warm-start
        theta); inline ``locations``/``z`` override the bundle's data.
        Remaining keyword ``options`` are
        :class:`~repro.fitting.FitJobSpec` fields (``n_starts``,
        ``seed``, ``maxiter``, ``warm_start``, ``bounds``, ...). On
        completion the server saves the fit as a bundle and hot-reloads
        ``model_id`` — poll with :meth:`job` / :meth:`wait_job`.
        """
        body: dict = dict(options)
        if model_id is not None:
            body["model_id"] = str(model_id)
        if from_model is not None:
            body["from_model"] = str(from_model)
        if bundle_path is not None:
            body["bundle_path"] = str(bundle_path)
        if locations is not None:
            body["locations"] = np.asarray(locations, dtype=np.float64).tolist()
        if z is not None:
            body["z"] = np.asarray(z, dtype=np.float64).tolist()
        return self._request("POST", "/v1/fit", body)

    def job(self, job_id: str, *, trace: bool = True) -> dict:
        """One fit job's record: status, result, and (with ``trace``,
        the default) the per-start per-iteration trajectory. Status
        pollers should pass ``trace=False`` — the trace grows with
        every iteration."""
        suffix = "" if trace else "?trace=0"
        return self._request("GET", f"/v1/jobs/{self._quote(job_id)}{suffix}")

    def jobs(self) -> List[dict]:
        """State summaries of every fit job on the server."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def wait_job(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 0.1,
        require_served: bool = True,
    ) -> dict:
        """Poll until the job finishes; returns its final record.

        With ``require_served`` (default) a job that targets a serving
        ``model_id`` is also waited on until the server published its
        bundle (hot-reload committed), so a following ``predict`` is
        guaranteed to see the new theta.

        Raises
        ------
        FittingError
            The job ``failed``, its publish step failed, or ``timeout``
            elapsed first.
        """
        deadline = time.monotonic() + timeout
        while True:
            # Poll without the trace (it grows per iteration); the full
            # record is fetched once, after the job settles.
            record = self.job(job_id, trace=False)
            status = record.get("status")
            if status == "failed":
                raise FittingError(
                    f"fit job {job_id} failed: {record.get('error')}"
                )
            if status == "done":
                if record.get("serve_error"):
                    raise FittingError(
                        f"fit job {job_id} finished but publishing failed: "
                        f"{record['serve_error']}"
                    )
                if (
                    not require_served
                    or not record.get("model_id")
                    or record.get("served")
                ):
                    return self.job(job_id)  # now with the full trace
            if time.monotonic() >= deadline:
                raise FittingError(
                    f"fit job {job_id} still {status!r} after {timeout}s"
                )
            time.sleep(poll)

    def models(self) -> Dict[str, List[str]]:
        """Model ids known to each worker."""
        return self._request("GET", "/v1/models")["models"]

    def metrics(self) -> dict:
        """Per-worker metrics and fleet aggregates."""
        return self._request("GET", "/v1/metrics")

    def health(self) -> dict:
        """Router + worker liveness."""
        return self._request("GET", "/healthz")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient(http://{self.host}:{self.port})"
