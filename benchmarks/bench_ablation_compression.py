"""Ablation bench — compression method (SVD vs RSVD vs ACA, paper §V).

All three compressors must satisfy the accuracy contract; they differ in
rank and speed. The per-method compression of a realistic covariance
tile is the benchmarked kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sort_locations
from repro.experiments.ablation import compression_method_study
from repro.kernels import MaternCovariance
from repro.linalg import compress


def test_ablation_compression_table(benchmark, outdir):
    """Writes the method-comparison table."""
    table = benchmark.pedantic(compression_method_study, rounds=1, iterations=1)
    table.save("ablation_compression_methods")
    assert {row[1] for row in table.rows} == {"svd", "rsvd", "aca"}


@pytest.mark.parametrize("method", ["svd", "rsvd", "aca"])
def test_compression_kernel(benchmark, method):
    """pytest-benchmark timing of one 200x200 tile compression."""
    nb = 200
    locs = generate_irregular_grid(4 * nb, seed=0)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    tile = model.tile(locs, slice(0, nb), slice(2 * nb, 3 * nb))
    lr = benchmark(compress, tile, 1e-7, method=method)
    err = np.linalg.norm(tile - lr.to_dense()) / np.linalg.norm(tile)
    assert err < 1e-5
