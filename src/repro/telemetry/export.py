"""Export surfaces: Prometheus text exposition and trace-tree assembly.

Two consumers, two formats:

* ``/v1/metrics?format=prometheus`` → :func:`render_prometheus` over
  the merged router+worker registry snapshot (text exposition format
  0.0.4; JSON stays the default for back-compat).
* ``/v1/trace/<trace_id>`` → :func:`assemble_trace` over the spans
  every process recorded for that id — the router pulls worker spans
  over the pipe and hands the union here to be deduped, sorted, and
  nested into a tree.

:func:`lint_prometheus` is a self-check (used by tests and the
observability benchmark) that the exposition actually parses:
HELP/TYPE comments precede samples, names are legal, values are
floats.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "assemble_trace",
    "lint_prometheus",
    "render_prometheus",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*\Z"
)
_LABEL = re.compile(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\Z')


def _sanitize(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a (possibly merged) registry snapshot as exposition text.

    Counter names get the conventional ``_total`` suffix if they don't
    already carry one; histogram ``le`` buckets are emitted cumulative
    with the mandatory ``+Inf`` bucket.
    """
    help_text = snapshot.get("help", {})
    lines: List[str] = []

    def emit_meta(raw: str, name: str, kind: str) -> None:
        h = help_text.get(raw)
        if h:
            lines.append(f"# HELP {name} {_escape_help(h)}")
        lines.append(f"# TYPE {name} {kind}")

    for raw in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][raw]
        name = _sanitize(f"{prefix}_{raw}")
        if not name.endswith("_total"):
            name += "_total"
        emit_meta(raw, name, "counter")
        lines.append(f"{name} {_fmt(value)}")
    for raw in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][raw]
        name = _sanitize(f"{prefix}_{raw}")
        emit_meta(raw, name, "gauge")
        lines.append(f"{name} {_fmt(value)}")
    for raw in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][raw]
        name = _sanitize(f"{prefix}_{raw}")
        emit_meta(raw, name, "histogram")
        cumulative = 0
        for bound, count in zip(h["buckets"], h["counts"]):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}')
        cumulative += h["counts"][len(h["buckets"])] if len(h["counts"]) > len(h["buckets"]) else 0
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_fmt(h['sum'])}")
        lines.append(f"{name}_count {h['count']}")
    return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def lint_prometheus(text: str) -> None:
    """Raise ``ValueError`` if *text* is not valid exposition format.

    Checks line shape, metric-name legality, label syntax, float
    parseability, and that every sample's family was TYPE-declared.
    """
    declared: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                        "counter",
                        "gauge",
                        "histogram",
                        "summary",
                        "untyped",
                    ):
                        raise ValueError(f"line {lineno}: bad TYPE: {line!r}")
                    declared[parts[2]] = parts[3]
                continue
            raise ValueError(f"line {lineno}: bad comment: {line!r}")
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        name = m.group("name")
        labels = m.group("labels")
        if labels:
            for part in _split_labels(labels):
                if not _LABEL.match(part):
                    raise ValueError(f"line {lineno}: bad label {part!r}")
        value = m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(f"line {lineno}: bad value {value!r}") from None
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")


def _split_labels(labels: str) -> List[str]:
    parts: List[str] = []
    depth_quote = False
    current = []
    i = 0
    while i < len(labels):
        c = labels[i]
        if c == '"' and (i == 0 or labels[i - 1] != "\\"):
            depth_quote = not depth_quote
        if c == "," and not depth_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(c)
        i += 1
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


# --------------------------------------------------------------------------
# Trace assembly


def assemble_trace(
    trace_id: str, spans: Iterable[Dict[str, Any]]
) -> Dict[str, Any]:
    """Join spans from many processes into one tree.

    Dedupes by ``span_id`` (a worker's spans may be collected twice if
    a request raced the collection), sorts children by start time, and
    nests under parents. Spans whose parent never made it into any
    recorder (e.g. dropped by a full ring) surface as extra roots —
    the tree is best-effort, the flat ``spans`` list is the ground
    truth.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    for s in spans:
        if s.get("trace_id") != trace_id:
            continue
        sid = s.get("span_id")
        if sid and sid not in by_id:
            by_id[sid] = dict(s)
    flat = sorted(by_id.values(), key=lambda s: (s.get("t_start", 0.0), s.get("span_id", "")))

    nodes: Dict[str, Dict[str, Any]] = {
        s["span_id"]: {**s, "children": []} for s in flat
    }
    roots: List[Dict[str, Any]] = []
    for s in flat:
        node = nodes[s["span_id"]]
        parent = s.get("parent_id")
        if parent and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return {
        "trace_id": trace_id,
        "span_count": len(flat),
        "spans": flat,
        "tree": roots,
    }
