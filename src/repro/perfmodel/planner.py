"""Self-tuning planner: search the calibrated model for the cheapest config.

Given a problem (``n`` locations, ``m`` prediction targets, a substrate
and an accuracy target) and a host
:class:`~repro.perfmodel.autotune.CalibrationProfile`, the
:class:`Planner` prices every candidate configuration with the fitted
analytic model — per-phase roofline seconds *plus* the calibrated
per-task scheduling overhead, which is what actually dominates small
tiles on the Python substrate — and returns the cheapest feasible
:class:`Plan`: tile size, TLR accuracy, ``compression_batch``, serving
worker count, micro-batching window, and the predicted phase times the
choice was based on.

This is the paper's tuning loop made executable: ExaGeoStat picks
``nb = 560`` (dense) / ``1900`` (TLR) *for Shaheen-2*; here the same
search runs against constants measured on whatever host you are on.

Exposed as :func:`repro.plan`, ``GET /v1/plan`` on the serving server,
and the ``--plan`` flag of ``python -m repro.perfmodel.autotune``.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..config import get_config
from ..exceptions import PlanError, ReproError
from .analytic import estimate_mle_iteration, estimate_prediction
from .autotune import CalibrationProfile, autotune
from .flops import compression_flops
from .rankmodel import DEFAULT_RANK_MODEL

__all__ = [
    "Plan",
    "Planner",
    "plan",
    "task_counts",
    "predict_workload",
    "default_profile",
    "set_default_profile",
    "planned_tile_size",
]

#: Candidate tile sizes searched by the planner (clamped to ``n``). The
#: top end covers the paper's tuned Shaheen-2 values (560 dense /
#: 1900 TLR).
TILE_LADDER = (64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 1900)

_SUBSTRATES = ("full-block", "full-tile", "tlr")

#: Accuracies offered to the search when the caller names none (the
#: paper's sweep, 1e-12 excluded — at probe scale it compresses nothing).
_ACCURACY_LADDER = (1e-5, 1e-7, 1e-9)


def task_counts(n: int, nb: int, variant: str) -> Dict[str, float]:
    """Task population per phase — the multiplier on per-task overhead.

    Mirrors the task graphs in :mod:`repro.linalg`: generation touches
    every lower tile (plus one compression task per off-diagonal tile
    for TLR), the Cholesky runs the classic ``O(nt^3)`` population, and
    the solve sweeps lower tiles forward and backward.
    """
    if variant == "full-block":
        return {"generation": 1.0, "factorization": 1.0, "solve": 2.0}
    nt = -(-n // nb)
    lower = nt * (nt + 1) / 2.0
    off = nt * (nt - 1) / 2.0
    gemm = float(sum((nt - a) * (a - 1) for a in range(2, nt)))
    counts = {
        "generation": lower + (off if variant == "tlr" else 0.0),
        "factorization": nt + 2.0 * off + gemm,
        "solve": 2.0 * (nt + off),
    }
    return counts


def predict_workload(
    profile: CalibrationProfile,
    n: int,
    *,
    variant: str,
    nb: int,
    acc: float,
    m: int = 0,
) -> Dict[str, object]:
    """Predicted phase times of one fit iteration (and one prediction).

    Combines the analytic roofline estimate under the profile's
    calibrated :class:`~repro.perfmodel.machine.MachineSpec` with the
    calibrated per-task overhead times the phase's task count.
    """
    spec = profile.spec()
    overhead = float(profile.constants.get("task_overhead_s", 0.0))
    counts = task_counts(n, nb, variant)

    fit_est = estimate_mle_iteration(
        n, variant=variant, nb=nb, acc=acc, machine=spec, n_rhs=1
    )
    fit_phases = {
        phase: seconds + overhead * counts.get(phase, 0.0)
        for phase, seconds in fit_est.breakdown.items()
    }

    result: Dict[str, object] = {
        "fit_iteration": {
            "phases": fit_phases,
            "total_s": sum(fit_phases.values()),
        },
        "matrix_bytes": fit_est.matrix_bytes,
        "mem_bytes": fit_est.mem_per_node_bytes,
        "oom": fit_est.oom,
    }
    if m > 0:
        pred_est = estimate_prediction(
            n, m, variant=variant, nb=nb, acc=acc, machine=spec
        )
        pred_counts = dict(counts)
        pred_counts["cross_covariance"] = 1.0
        pred_phases = {
            phase: seconds + overhead * pred_counts.get(phase, 0.0)
            for phase, seconds in pred_est.breakdown.items()
        }
        result["predict"] = {
            "phases": pred_phases,
            "total_s": sum(pred_phases.values()),
        }
        result["oom"] = bool(result["oom"] or pred_est.oom)
    return result


@dataclass(frozen=True)
class Plan:
    """One feasible configuration plus the predictions that ranked it."""

    n: int
    m: int
    variant: str
    tile_size: int
    accuracy: Optional[float]
    compression_batch: int
    serving_workers: int
    batch_window: float
    objective_s: float
    predicted: Dict[str, object]
    matrix_bytes: float
    mem_bytes: float
    profile_meta: Dict[str, object] = field(default_factory=dict)
    candidates: int = 0

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "config": {
                "variant": self.variant,
                "tile_size": self.tile_size,
                "accuracy": self.accuracy,
                "compression_batch": self.compression_batch,
                "serving_workers": self.serving_workers,
                "batch_window": self.batch_window,
            },
            "predicted": self.predicted,
            "memory": {
                "matrix_bytes": self.matrix_bytes,
                "mem_bytes": self.mem_bytes,
            },
            "objective_s": self.objective_s,
            "search": {"candidates": self.candidates},
            "profile": self.profile_meta,
        }


class Planner:
    """Search the calibrated model for the cheapest feasible config."""

    def __init__(self, profile: CalibrationProfile) -> None:
        self.profile = profile

    # -- knob heuristics ---------------------------------------------------

    def _compression_batch(self, nb: int, acc: float) -> int:
        """Batch TLR compression tasks until payload >> per-task overhead."""
        overhead = float(self.profile.constants.get("task_overhead_s", 0.0))
        if overhead <= 0.0:
            return 1
        lr_rate = max(self.profile.constants.get("lr_gflops", 1.0), 1e-6) * 1e9
        rank = float(DEFAULT_RANK_MODEL.rank(1, acc, nb))
        per_tile_s = compression_flops(nb, max(rank, 1.0)) / lr_rate
        target_payload_s = 8.0 * overhead
        return max(1, min(64, math.ceil(target_payload_s / max(per_tile_s, 1e-12))))

    def _serving_workers(self, mem_bytes: float) -> int:
        """Half the host cores, bounded by memory for per-worker engines."""
        cpus = int(self.profile.host.get("cpu_count", 1) or 1)
        workers = max(1, min(8, cpus // 2))
        host_mem = float(self.profile.host.get("mem_gb", 8.0)) * 1e9
        if mem_bytes > 0:
            by_mem = max(1, int(0.5 * host_mem / mem_bytes))
            workers = min(workers, by_mem)
        return workers

    def _batch_window(self, predicted: Dict[str, object]) -> float:
        """Coalescing window ~ a quarter of a warm-engine predict.

        A warm serving engine reuses the cached factor, so the
        incremental cost of one more predict is solve + cross terms —
        waiting much longer than that to batch trades latency for
        nothing.
        """
        pred = predicted.get("predict")
        if not isinstance(pred, dict):
            return float(get_config().serving_batch_window)
        phases = pred.get("phases", {})
        assert isinstance(phases, dict)
        warm_s = sum(
            float(v)
            for k, v in phases.items()
            if k in ("solve", "cross_covariance")
        )
        return round(min(0.05, max(0.0005, 0.25 * warm_s)), 6)

    # -- the search --------------------------------------------------------

    def plan(
        self,
        n: int,
        *,
        m: int = 100,
        substrate: Optional[str] = None,
        accuracy: Optional[float] = None,
        tile_sizes: Optional[Sequence[int]] = None,
    ) -> Plan:
        """Return the cheapest feasible plan for ``n`` locations.

        ``substrate`` of ``None``/``"auto"`` searches all variants;
        naming one restricts the search to it. ``accuracy`` (TLR only)
        of ``None`` searches the paper's accuracy ladder. Raises
        :class:`~repro.exceptions.PlanError` when the request is invalid
        or every candidate is modeled out-of-memory.
        """
        try:
            n = int(n)
            m = int(m)
        except (TypeError, ValueError):
            raise PlanError(f"n and m must be integers, got n={n!r} m={m!r}") from None
        if n < 2:
            raise PlanError(f"plan needs n >= 2 locations, got {n}")
        if m < 0:
            raise PlanError(f"plan needs m >= 0 targets, got {m}")
        if substrate in (None, "auto", ""):
            variants = ("full-tile", "tlr") if n > 2048 else _SUBSTRATES
        elif substrate in _SUBSTRATES:
            variants = (substrate,)
        else:
            raise PlanError(
                f"unknown substrate {substrate!r}; expected one of "
                f"{_SUBSTRATES + ('auto',)}"
            )
        if accuracy is not None:
            accuracy = float(accuracy)
            if not (0.0 < accuracy < 1.0):
                raise PlanError(f"accuracy must be in (0, 1), got {accuracy}")

        if tile_sizes is None:
            ladder = sorted({min(int(nb), n) for nb in TILE_LADDER if nb >= 8})
        else:
            ladder = sorted({min(int(nb), n) for nb in tile_sizes})
            if not ladder or min(ladder) < 2:
                raise PlanError(f"invalid tile_sizes {tile_sizes!r}")

        best: Optional[Plan] = None
        candidates = 0
        for variant in variants:
            if variant == "full-block":
                nbs: Sequence[int] = (n,)
                accs: Sequence[Optional[float]] = (None,)
            elif variant == "full-tile":
                nbs = ladder
                accs = (None,)
            else:
                nbs = ladder
                accs = (accuracy,) if accuracy is not None else _ACCURACY_LADDER
            for nb in nbs:
                for acc in accs:
                    candidates += 1
                    eff_acc = acc if acc is not None else 1e-9
                    predicted = predict_workload(
                        self.profile, n, variant=variant, nb=nb, acc=eff_acc, m=m
                    )
                    if predicted["oom"]:
                        continue
                    fit_block = predicted["fit_iteration"]
                    assert isinstance(fit_block, dict)
                    objective = float(fit_block["total_s"])
                    pred_block = predicted.get("predict")
                    if isinstance(pred_block, dict):
                        objective += float(pred_block["total_s"])
                    if best is not None and objective >= best.objective_s:
                        continue
                    mem_bytes = float(predicted["mem_bytes"])  # type: ignore[arg-type]
                    best = Plan(
                        n=n,
                        m=m,
                        variant=variant,
                        tile_size=int(nb),
                        accuracy=acc,
                        compression_batch=(
                            self._compression_batch(nb, eff_acc)
                            if variant == "tlr"
                            else 1
                        ),
                        serving_workers=self._serving_workers(mem_bytes),
                        batch_window=self._batch_window(predicted),
                        objective_s=objective,
                        predicted={
                            k: predicted[k] for k in ("fit_iteration", "predict")
                            if k in predicted
                        },
                        matrix_bytes=float(predicted["matrix_bytes"]),  # type: ignore[arg-type]
                        mem_bytes=mem_bytes,
                        profile_meta=self._profile_meta(),
                    )
        if best is None:
            host_mem = float(self.profile.host.get("mem_gb", 0.0))
            raise PlanError(
                f"no feasible configuration for n={n}: every candidate "
                f"({candidates} searched) is modeled out-of-memory on this "
                f"host ({host_mem:.1f} GB); reduce n or plan for a larger "
                "machine"
            )
        return dataclasses.replace(best, candidates=candidates)

    def _profile_meta(self) -> Dict[str, object]:
        p = self.profile
        return {
            "name": p.machine.get("name"),
            "created": p.created,
            "age_s": round(p.age_s(), 3),
            "stale": p.is_stale(),
            "host": dict(p.host),
            "constants": dict(p.constants),
        }


# --------------------------------------------------------------------------
# process-default profile + convenience entry points
# --------------------------------------------------------------------------

#: Probe settings for the implicit in-process calibration: small enough
#: to finish in well under a second, large enough to sit in the BLAS
#: regime the planner's candidate tiles occupy.
_QUICK_SIZES = (48, 64, 96)
_QUICK_REPEATS = 2

_default_lock = threading.Lock()
_default_profile: Optional[CalibrationProfile] = None
_loaded_path: Optional[tuple] = None  # (path, mtime_ns) of a loaded profile


def set_default_profile(profile: Optional[CalibrationProfile]) -> None:
    """Install (or, with ``None``, clear) the process-default profile.

    Test and ops hook: lets a server or suite plan from a known profile
    without touching the config or running probes.
    """
    global _default_profile, _loaded_path
    with _default_lock:
        _default_profile = profile
        _loaded_path = None


def default_profile(*, refresh: bool = False) -> CalibrationProfile:
    """The profile :func:`plan` uses when none is given explicitly.

    Resolution order: ``Config.autotune_profile`` path (loaded, or
    created by a quick calibration and saved when missing), else a
    quick in-process calibration cached for the process lifetime.
    """
    global _default_profile, _loaded_path
    path = get_config().autotune_profile
    with _default_lock:
        if path:
            p = Path(path)
            if p.is_file():
                stamp = (str(p), p.stat().st_mtime_ns)
                if _loaded_path != stamp or _default_profile is None or refresh:
                    _default_profile = CalibrationProfile.load(p)
                    _loaded_path = stamp
                return _default_profile
            profile = autotune(sizes=_QUICK_SIZES, repeats=_QUICK_REPEATS)
            profile.save(p)
            _default_profile = profile
            _loaded_path = (str(p), p.stat().st_mtime_ns)
            return profile
        if _default_profile is None or refresh:
            _default_profile = autotune(sizes=_QUICK_SIZES, repeats=_QUICK_REPEATS)
            _loaded_path = None
        return _default_profile


def plan(
    n: int,
    *,
    m: int = 100,
    substrate: Optional[str] = None,
    accuracy: Optional[float] = None,
    profile: Optional[CalibrationProfile] = None,
) -> Plan:
    """Plan a workload on this host (module-level convenience).

    Calibrates (or loads, per ``Config.autotune_profile``) the host
    profile on first use, then runs the :class:`Planner` search.
    """
    prof = profile if profile is not None else default_profile()
    return Planner(prof).plan(n, m=m, substrate=substrate, accuracy=accuracy)


def planned_tile_size(
    n: int, *, variant: str, acc: Optional[float] = None
) -> Optional[int]:
    """Best-effort planned ``nb`` for the auto-tune adoption hooks.

    Returns ``None`` instead of raising on any library error: auto-tune
    must degrade to the static config default, never break a fit.
    """
    try:
        return plan(n, m=0, substrate=variant, accuracy=acc).tile_size
    except ReproError:
        return None
