"""Argument validation helpers.

All public entry points of the library validate their inputs through these
helpers so error messages are consistent and informative. The helpers
return the validated (and possibly converted) value to allow chaining.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ShapeError, ValidationError

__all__ = [
    "as_float_array",
    "check_positive",
    "check_square",
    "check_symmetric",
    "check_vector",
    "check_locations",
]


def as_float_array(x: object, name: str = "array", *, copy: bool = False) -> np.ndarray:
    """Convert ``x`` to a C-contiguous float64 ndarray.

    Ragged or otherwise non-numeric input (a list of unequal-length
    rows, object dtype, strings) raises a typed
    :class:`~repro.exceptions.ValidationError` naming ``name`` instead
    of numpy's opaque conversion error.

    Parameters
    ----------
    x:
        Anything :func:`numpy.asarray` accepts.
    name:
        Name used in error messages.
    copy:
        Force a copy even when ``x`` is already a float64 array.
    """
    try:
        arr = np.array(x, dtype=np.float64, copy=copy, order="C") if copy else (
            np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        )
    except (ValueError, TypeError) as exc:
        raise ValidationError(
            f"{name} is not a numeric array (ragged or non-numeric input): {exc}"
        ) from None
    if not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains non-finite values")
    return arr


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that a scalar parameter is positive (or non-negative)."""
    v = float(value)
    if strict and not v > 0:
        raise ShapeError(f"{name} must be > 0, got {v}")
    if not strict and v < 0:
        raise ShapeError(f"{name} must be >= 0, got {v}")
    return v


def check_square(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``a`` is a square 2-D array."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"{name} must be square 2-D, got shape {a.shape}")
    return a


def check_symmetric(a: np.ndarray, name: str = "matrix", *, atol: float = 1e-8) -> np.ndarray:
    """Validate that ``a`` is numerically symmetric."""
    check_square(a, name)
    if not np.allclose(a, a.T, atol=atol):
        raise ShapeError(f"{name} must be symmetric (atol={atol})")
    return a


def check_vector(v: np.ndarray, n: Optional[int] = None, name: str = "vector") -> np.ndarray:
    """Validate that ``v`` is 1-D, optionally of length ``n``."""
    if v.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {v.shape}")
    if n is not None and v.shape[0] != n:
        raise ShapeError(f"{name} must have length {n}, got {v.shape[0]}")
    return v


def check_locations(x: object, name: str = "locations") -> np.ndarray:
    """Validate an ``(n, d)`` array of spatial locations with d in {1, 2, 3}.

    A 1-D array is promoted to a single-column matrix.
    """
    arr = as_float_array(x, name)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be (n, d), got shape {arr.shape}")
    n, d = arr.shape
    if n == 0:
        raise ShapeError(f"{name} must contain at least one point")
    if d not in (1, 2, 3):
        raise ShapeError(f"{name} must have 1-3 coordinates per point, got {d}")
    return arr
