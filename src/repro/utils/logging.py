"""Lightweight logging configured from the ``REPRO_LOG`` environment variable.

Set ``REPRO_LOG=DEBUG`` (or INFO/WARNING) to see runtime scheduling and MLE
iteration traces without configuring the stdlib logging tree yourself.
"""

from __future__ import annotations

import logging
import os

__all__ = ["get_logger"]

_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = os.environ.get("REPRO_LOG", "WARNING").upper()
    level = getattr(logging, level_name, logging.WARNING)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
    )
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        root.addHandler(handler)
    root.propagate = False
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"runtime"`` yields logger ``repro.runtime``.
    """
    _configure_root()
    return logging.getLogger(f"repro.{name}")
