"""Datasets and location generators (paper §VII).

Provides the paper's synthetic irregular-grid generator, Morton
(space-filling-curve) ordering of locations — which ExaGeoStat applies so
that tile-index distance tracks spatial distance, the property TLR
compression exploits — an exact Gaussian-random-field sampler, and
synthetic substitutes for the two real datasets (Mississippi-basin soil
moisture and Middle-East wind speed).
"""

from .synthetic import generate_irregular_grid, generate_uniform_locations
from .morton import morton_keys, morton_order, sort_locations
from .fields import sample_gaussian_field
from .regions import Region, partition_bbox, points_in_region
from .datasets import GeoDataset, train_test_split
from .trend import PolynomialTrend, detrend
from .soil_moisture import (
    SOIL_MOISTURE_REGION_THETA,
    SoilMoistureGenerator,
    make_soil_moisture_dataset,
)
from .wind_speed import (
    WIND_SPEED_REGION_THETA,
    WindSpeedGenerator,
    make_wind_speed_dataset,
)

__all__ = [
    "generate_irregular_grid",
    "generate_uniform_locations",
    "morton_keys",
    "morton_order",
    "sort_locations",
    "sample_gaussian_field",
    "Region",
    "partition_bbox",
    "points_in_region",
    "GeoDataset",
    "train_test_split",
    "PolynomialTrend",
    "detrend",
    "SoilMoistureGenerator",
    "make_soil_moisture_dataset",
    "SOIL_MOISTURE_REGION_THETA",
    "WindSpeedGenerator",
    "make_wind_speed_dataset",
    "WIND_SPEED_REGION_THETA",
]
