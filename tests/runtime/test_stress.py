"""Stress and fault-injection tests for the task runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import AccessMode, Runtime
from repro.runtime.graph import build_networkx_dag

R, RW = AccessMode.READ, AccessMode.READWRITE


class TestStress:
    def test_long_dependency_chain(self):
        with Runtime(num_workers=4) as rt:
            h = rt.register(np.zeros(1))

            def inc(x):
                x += 1

            for _ in range(500):
                rt.insert_task(inc, [(h, RW)])
            rt.wait_all()
        assert h.get()[0] == 500.0

    def test_wide_fanout_and_reduction(self):
        with Runtime(num_workers=8) as rt:
            src = rt.register(np.full(4, 2.0))
            partials = [rt.register(np.zeros(4)) for _ in range(64)]
            total = rt.register(np.zeros(4))

            def square_into(s, d):
                d[:] = s * s

            def accumulate(p, t):
                t += p

            for p in partials:
                rt.insert_task(square_into, [(src, R), (p, RW)])
            for p in partials:
                rt.insert_task(accumulate, [(p, R), (total, RW)])
            rt.wait_all()
        np.testing.assert_allclose(total.get(), 64 * 4.0)

    def test_diamond_pattern(self):
        # a -> (b, c) -> d : d must observe both branch effects.
        with Runtime(num_workers=4) as rt:
            ha = rt.register(np.array([1.0]))
            hb = rt.register(np.zeros(1))
            hc = rt.register(np.zeros(1))
            hd = rt.register(np.zeros(1))
            rt.insert_task(lambda a: a.__iadd__(1.0), [(ha, RW)])
            rt.insert_task(lambda a, b: b.__iadd__(a * 10), [(ha, R), (hb, RW)])
            rt.insert_task(lambda a, c: c.__iadd__(a * 100), [(ha, R), (hc, RW)])
            rt.insert_task(
                lambda b, c, d: d.__iadd__(b + c), [(hb, R), (hc, R), (hd, RW)]
            )
            rt.wait_all()
        assert hd.get()[0] == pytest.approx(20.0 + 200.0)

    def test_many_independent_tasks_all_run(self):
        counters = []
        with Runtime(num_workers=8) as rt:
            handles = [rt.register(np.zeros(1)) for _ in range(200)]
            for h in handles:
                rt.insert_task(lambda x: x.__iadd__(1.0), [(h, RW)])
            rt.wait_all()
            counters = [h.get()[0] for h in handles]
        assert counters == [1.0] * 200

    def test_dag_export_of_real_factorization(self, small_sigma):
        from repro.linalg.tile_matrix import TileMatrix
        from repro.linalg.tile_cholesky import tile_cholesky

        tm = TileMatrix.from_dense(small_sigma, 64, symmetric_lower=True)
        with Runtime(num_workers=4) as rt:
            # Snapshot the tracker's tasks before the post-wait reset.
            import repro.linalg.tile_cholesky as tc

            handles = {}
            for i, j, tile in tm.iter_stored():
                handles[(i, j)] = rt.register(tile)
            # Build DAG manually via one panel step to verify acyclicity.
            from repro.linalg.tile_ops import potrf_codelet, trsm_codelet

            t0 = rt.insert_task(potrf_codelet, [(handles[(0, 0)], RW)])
            t1 = rt.insert_task(
                trsm_codelet, [(handles[(0, 0)], R), (handles[(1, 0)], RW)]
            )
            rt.wait_all()
            g = build_networkx_dag([t0, t1])
            assert g.has_edge(t0.id, t1.id)


class TestFaultInjection:
    def test_midstream_failure_reports_first_error(self):
        with Runtime(num_workers=4) as rt:
            h = rt.register(np.zeros(1))

            def ok(x):
                x += 1

            def fail(x):
                raise ArithmeticError("injected")

            rt.insert_task(ok, [(h, RW)])
            rt.insert_task(fail, [(h, RW)])
            rt.insert_task(ok, [(h, RW)])
            with pytest.raises(ArithmeticError, match="injected"):
                rt.wait_all()

    def test_failure_in_serial_engine(self):
        with Runtime(engine="serial") as rt:
            h = rt.register(np.zeros(1))
            rt.insert_task(lambda x: 1 / 0, [(h, RW)])
            with pytest.raises(ZeroDivisionError):
                rt.wait_all()

    def test_runtime_usable_after_handled_failure(self):
        with Runtime(num_workers=2) as rt:
            h = rt.register(np.zeros(1))
            rt.insert_task(lambda x: 1 / 0, [(h, RW)])
            with pytest.raises(ZeroDivisionError):
                rt.wait_all()
            rt.insert_task(lambda x: x.__iadd__(5.0), [(h, RW)])
            rt.wait_all()
        assert h.get()[0] == 5.0
