"""Figure 4 bench — one MLE iteration on Shaheen-2 (256 / 1024 nodes).

Modeled with the distributed performance estimator (the DESIGN.md §4
substitution for the Cray XC40); the discrete-event simulator
cross-checks the model on a small tile count.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig4 import model_series
from repro.perfmodel import DistributedSimulator, shaheen2


@pytest.mark.parametrize("nodes", [256, 1024])
def test_fig4_model_series(benchmark, outdir, nodes):
    """Paper-scale modeled panel for one allocation size."""
    table = benchmark.pedantic(model_series, args=(nodes,), rounds=1, iterations=1)
    table.save(f"fig4_model_shaheen_{nodes}nodes")
    # Shape: at the largest n, TLR(1e-5) beats full-tile clearly.
    last = table.rows[-1]
    assert last[1] is None or last[1] > last[-1]


def test_fig4_des_crosscheck(benchmark):
    """Discrete-event simulation of a small distributed TLR Cholesky."""
    sim = DistributedSimulator(shaheen2(16))
    tasks = sim.build_cholesky_dag(24, 1900, variant="tlr", acc=1e-7)
    report = benchmark.pedantic(
        sim.simulate, args=(tasks, 1900), kwargs={"variant": "tlr"}, rounds=1, iterations=1
    )
    assert report.makespan_s > 0
    assert report.utilization(sim.cluster) <= 1.0
