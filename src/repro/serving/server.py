"""Multi-process HTTP serving: worker processes behind a sharding router.

The PR-3 serving stack — :class:`~repro.serving.store.ModelBundle`,
:class:`~repro.serving.registry.ModelRegistry`,
:class:`~repro.serving.service.PredictionService` — lives inside one
process. This module scales it out with nothing but the standard
library:

* :class:`ServingServer` spawns ``num_workers`` processes via
  :mod:`multiprocessing`. Each worker hosts its own registry + asyncio
  micro-batching service and owns the models whose stable hash
  (:func:`~repro.serving.registry._stable_shard` — the same function
  the registry uses for runtime shards) lands on its index, so a model
  id maps to the same worker across restarts and across the fleet.
* An HTTP front-end (stdlib :class:`~http.server.ThreadingHTTPServer`)
  routes requests to the owning worker over a :class:`multiprocessing
  .connection.Connection` pipe. Arrays cross the pipe pickled — bit
  exact — and cross HTTP as JSON, whose ``repr``-based float encoding
  round-trips every finite ``float64`` exactly, so served predictions
  are **bit-identical** to in-process
  :meth:`~repro.mle.prediction_engine.PredictionEngine.predict`.
* **Hot-reload**: ``POST /v1/models/<id>/reload`` calls
  :meth:`ModelRegistry.reload` inside the owning worker — the
  replacement engine is built off-lock and swapped atomically, so
  in-flight requests finish on the old engine and later requests see
  the new one, with zero failed requests across the swap.
* **Worker auto-restart**: a worker process that dies (OOM, kill) is
  respawned on demand with its shard's models re-registered, and the
  request that observed the death is retried once on the fresh worker —
  a crash costs latency, not availability.
* **Fitting service**: the router process hosts a
  :class:`~repro.fitting.orchestrator.FitOrchestrator`; ``POST
  /v1/fit`` submits a durable fit job (fresh fit, refit on new
  observations, or warm-start refit of a served model), ``GET
  /v1/jobs/<id>`` reports status + the per-iteration log-likelihood
  trace, and a finished job's bundle is hot-reloaded into the owning
  worker under its target model id — the full observe → refit → serve
  loop with zero downtime.

Endpoints
---------
``POST /v1/predict``
    ``{"model_id", "targets", "z"?, "deadline"?, "priority"?}`` →
    ``{"model_id", "prediction", "worker"}``. Speaks two transports,
    negotiated per side (see :mod:`repro.serving.wire`): a
    ``Content-Type: application/x-repro-npy`` request body is a binary
    framed message (meta + raw float64 ``targets``/``z`` arrays), and
    an ``Accept: application/x-repro-npy`` response is the prediction
    streamed back as chunked binary frames — bit-exact, several times smaller
    than JSON, decoded into one preallocated array. JSON stays the
    default (and the debug surface); error responses are always JSON.
``GET /healthz``
    Liveness of the router and every worker process.
``GET /v1/models``
    Model ids known to each worker.
``GET /v1/metrics``
    Per-worker service metrics + registry stats, plus fleet aggregates.
    ``?format=prometheus`` renders the merged telemetry registries of
    router + workers in Prometheus text exposition 0.0.4 instead.
``GET /v1/trace/<trace_id>``
    The assembled span tree of one request trace, joined across the
    router and every worker process (telemetry must be armed — see
    :mod:`repro.telemetry`).
``GET /v1/plan``
    Self-tuning planner: ``?n=<locations>&m=<targets>&substrate=<auto|
    full-block|full-tile|tlr>&accuracy=<eps>`` → the cheapest feasible
    configuration (tile size, TLR accuracy, compression batch, worker
    count, batching window) with predicted per-phase times, computed
    router-side (no worker round-trip) from the host's persisted
    :class:`~repro.perfmodel.autotune.CalibrationProfile`. Invalid
    requests are 400 (:class:`~repro.exceptions.PlanError`); a broken
    profile is 500 (:class:`~repro.exceptions.CalibrationError`).
``POST /v1/models/<id>``
    Register a bundle path on the owning worker: ``{"path"}`` — or,
    with a binary Content-Type, register-by-upload: the body is the
    bundle itself (:meth:`ModelBundle.to_payload` as a wire message),
    persisted server-side and registered atomically.
``POST /v1/models/<id>/reload``
    Hot-swap the model's bundle: ``{"path"?}`` (default: re-read the
    registered path).
``POST /v1/models/<id>/policy``
    Per-model batching knobs: ``{"batch_window"?, "max_batch"?}``.
``POST /v1/fit``
    Submit a fit job: ``{"model_id"?, "from_model"?, "bundle_path"?,
    "locations"?, "z"?, "model"?, "variant"?, "acc"?, "tile_size"?,
    "maxiter"?, "ftol"?, "xtol"?, "n_starts"?, "seed"?, "x0"?,
    "bounds"?, "warm_start"?, ...}`` → ``{"job_id", "status",
    "model_id"}``.
``GET /v1/jobs``
    State summaries of every fit job.
``GET /v1/jobs/<id>``
    One job's full record: status, timestamps, result, per-start
    per-iteration ``(iteration, loglik, theta)`` trace, bundle path,
    and whether it has been published to its serving worker.

Error responses are ``{"error": {"type", "message"}}`` with a status
code per exception type; :class:`~repro.serving.client.ServingClient`
re-raises the matching typed exception.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import shutil
import tempfile
import threading
import urllib.parse
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import get_config
from ..exceptions import (
    BundleCorruptError,
    BundleError,
    CalibrationError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    FittingError,
    InjectedFaultError,
    JobNotFoundError,
    LoadShedError,
    ModelNotFoundError,
    PayloadTooLargeError,
    PlanError,
    PredictionError,
    ReproError,
    ServerError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
    ShapeError,
    TelemetryError,
    TraceNotFoundError,
    ValidationError,
    WireFormatError,
)
from ..fitting.jobs import FitJobSpec, JobStore
from ..fitting.orchestrator import FitOrchestrator
from ..resilience.breaker import AdmissionGate, CircuitBreaker
from ..resilience.faults import fault_point
from ..resilience.policy import Deadline, RetryPolicy
from ..telemetry import context as _trace_context
from ..telemetry import metrics as _registry_mod
from ..telemetry import spans as _telemetry
from ..telemetry.export import assemble_trace, render_prometheus
from ..utils.logging import get_logger
from . import wire
from .registry import ModelRegistry, _stable_shard
from .service import PredictionService
from .store import ModelBundle

__all__ = ["ServingServer", "status_for_exception", "exception_from_wire"]

logger = get_logger(__name__)


def _path_within(path: Union[str, Path], root: Union[str, Path]) -> bool:
    """True when ``path`` is ``root`` or lives under it.

    Separator-aware, unlike a bare ``startswith``: a sibling directory
    sharing the prefix (``/data/uploads-keep`` vs ``/data/uploads``)
    must NOT count as inside — misclassifying it as ephemeral would
    delete a durable bundle's rollback path on :meth:`ServingServer.stop`.
    """
    path_s, root_s = str(path), str(root).rstrip(os.sep) or os.sep
    return path_s == root_s or path_s.startswith(root_s + os.sep)


#: Exceptions allowed to cross the worker pipe / HTTP boundary by name.
_WIRE_EXCEPTIONS: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        BundleCorruptError,
        BundleError,
        CalibrationError,
        CircuitOpenError,
        ConfigurationError,
        DeadlineExceededError,
        FittingError,
        InjectedFaultError,
        JobNotFoundError,
        LoadShedError,
        ModelNotFoundError,
        PayloadTooLargeError,
        PlanError,
        PredictionError,
        ReproError,
        ServerError,
        ServiceClosedError,
        ServiceOverloadedError,
        ServingError,
        ShapeError,
        TelemetryError,
        TraceNotFoundError,
        ValidationError,
        WireFormatError,
        ValueError,
        TypeError,
        KeyError,
    )
}

# isinstance-ordered: subclasses must precede their parents
# (BundleCorruptError is a server-side integrity failure, not the
# client's malformed request that plain BundleError maps to).
_STATUS_BY_EXCEPTION: Tuple[Tuple[type, int], ...] = (
    (ModelNotFoundError, 404),
    (JobNotFoundError, 404),
    (TraceNotFoundError, 404),
    (TelemetryError, 400),
    (ServiceOverloadedError, 429),
    (DeadlineExceededError, 504),
    (CircuitOpenError, 503),
    (LoadShedError, 503),
    (ServiceClosedError, 503),
    (BundleCorruptError, 500),
    (BundleError, 400),
    (ConfigurationError, 400),
    (FittingError, 400),
    (InjectedFaultError, 500),
    (PayloadTooLargeError, 413),
    (PlanError, 400),
    (CalibrationError, 500),
    (PredictionError, 500),
    (WireFormatError, 400),
    (ShapeError, 400),
    (ValidationError, 400),
    (ServerError, 502),
    (ValueError, 400),
    (TypeError, 400),
    (KeyError, 400),
)

_READY = -1  # sentinel request id for the worker's startup handshake


def status_for_exception(exc: BaseException) -> int:
    """HTTP status code a failure maps to (500 for anything unknown)."""
    for cls, status in _STATUS_BY_EXCEPTION:
        if isinstance(exc, cls):
            return status
    return 500


def exception_from_wire(type_name: str, message: str) -> BaseException:
    """Rebuild a typed exception from its wire form (whitelisted names).

    Unknown names come back as :class:`ServerError` so a worker can
    never make the router raise an arbitrary class.
    """
    cls = _WIRE_EXCEPTIONS.get(type_name)
    if cls is None:
        return ServerError(f"{type_name}: {message}")
    return cls(message)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(conn, config: dict) -> None:
    """Entry point of one worker process: registry + service + pipe loop."""
    import asyncio

    # Arm telemetry from the router's resolved settings (not this
    # process's env/config): a spawn-started worker has no inherited
    # globals, and a fork-started one must get a *fresh* recorder
    # rather than the router's copied span ring.
    telem = config.get("telemetry")
    if telem is not None:
        _telemetry.configure(
            enabled=telem.get("enabled", False),
            max_spans=telem.get("max_spans"),
            sink_dir=telem.get("sink_dir"),
        )

    async def run() -> None:
        registry = ModelRegistry(**config.get("registry", {}))
        for model_id, path in config.get("models", {}).items():
            registry.register(model_id, path)
        policies = config.get("policies", {})
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        send_lock = threading.Lock()

        def send(msg: tuple) -> None:
            with send_lock:
                try:
                    conn.send(msg)
                except (BrokenPipeError, OSError):  # router is gone; shut down
                    loop.call_soon_threadsafe(stop_event.set)

        async with PredictionService(registry, **config.get("service", {})) as service:
            # Reinstall per-model policies on (re)spawn — the router's
            # map is the source of truth, so a worker crash cannot
            # silently revert a model to default batching.
            for model_id, policy in policies.items():
                service.set_policy(model_id, **policy)

            async def handle(op: str, req_id: int, payload: dict) -> None:
                try:
                    fault_point("worker.pipe")
                    result = await dispatch(op, payload)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 - forwarded to router
                    send((req_id, "err", (type(exc).__name__, str(exc))))
                else:
                    send((req_id, "ok", result))

            async def do_predict(payload: dict) -> dict:
                value, flags = await service.predict(
                    payload["model_id"],
                    payload["targets"],
                    z=payload.get("z"),
                    deadline=payload.get("deadline"),
                    priority=payload.get("priority", 0),
                    detail=True,
                )
                return {"prediction": value, "degraded": flags["degraded"]}

            async def dispatch(op: str, payload: dict) -> Any:
                if op == "predict":
                    ctx = (
                        _trace_context.from_wire(payload.get("trace"))
                        if _telemetry.enabled()
                        else None
                    )
                    if ctx is None:
                        return await do_predict(payload)
                    # Each dispatched coroutine runs in its own copied
                    # context (run_coroutine_threadsafe), so activating
                    # the remote parent here cannot leak into another
                    # in-flight request.
                    with _trace_context.activate(ctx):
                        with _telemetry.span(
                            "worker.predict",
                            model=str(payload["model_id"]),
                            worker=config.get("worker_id", 0),
                        ):
                            return await do_predict(payload)
                if op == "reload":
                    # Blocking work (disk read + engine build + possible
                    # factorization) stays off the event loop so predicts
                    # keep flowing — the whole point of hot-reload.
                    await loop.run_in_executor(
                        None,
                        partial(
                            registry.reload, payload["model_id"], path=payload.get("path")
                        ),
                    )
                    return {"model_id": payload["model_id"], "reloads": registry.n_reloads}
                if op == "register":
                    registry.register(payload["model_id"], payload["path"])
                    return {"model_id": payload["model_id"]}
                if op == "policy":
                    service.set_policy(
                        payload["model_id"],
                        batch_window=payload.get("batch_window"),
                        max_batch=payload.get("max_batch"),
                    )
                    window, max_batch = service.effective_policy(payload["model_id"])
                    return {"batch_window": window, "max_batch": max_batch}
                if op == "models":
                    return registry.known_models
                if op == "metrics":
                    out = {
                        "service": service.metrics.snapshot(),
                        "registry": registry.stats(),
                        "breakers": service.breaker_states(),
                    }
                    if _telemetry.enabled():
                        out["telemetry"] = _registry_mod.get_registry().snapshot()
                    return out
                if op == "trace":
                    recorder = _telemetry.get_recorder()
                    spans = (
                        recorder.for_trace(payload["trace_id"])
                        if recorder is not None
                        else []
                    )
                    return {"spans": spans}
                if op == "ping":
                    return "pong"
                raise ServerError(f"unknown worker op {op!r}")

            def reader() -> None:
                while True:
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        msg = ("stop", 0, None)
                    if msg[0] == "stop":
                        loop.call_soon_threadsafe(stop_event.set)
                        return
                    op, req_id, payload = msg
                    asyncio.run_coroutine_threadsafe(handle(op, req_id, payload), loop)

            send((_READY, "ok", config.get("worker_id", 0)))
            reader_thread = threading.Thread(
                target=reader, name="repro-worker-reader", daemon=True
            )
            reader_thread.start()
            await stop_event.wait()
        registry.close()

    asyncio.run(run())
    try:
        conn.close()
    except OSError:  # pragma: no cover - best effort
        pass


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------


class _Slot:
    """One in-flight router→worker request awaiting its response."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class _WorkerHandle:
    """Router-side proxy for one worker process.

    HTTP handler threads multiplex over the single pipe: sends are
    serialized by a lock and tagged with a request id; a dedicated
    reader thread matches responses back to the waiting thread's slot.
    Concurrent requests therefore overlap inside the worker — which is
    what lets its micro-batcher coalesce them.
    """

    def __init__(
        self, ctx, worker_id: int, config: dict, breaker_options: Optional[dict] = None
    ) -> None:
        self.worker_id = worker_id
        # A fresh handle starts with a fresh, closed breaker: respawning
        # a dead worker resets its transport-failure history.
        self.breaker = CircuitBreaker(**(breaker_options or {}))
        parent_conn, child_conn = ctx.Pipe()
        config = dict(config, worker_id=worker_id)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, config),
            name=f"repro-serving-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _Slot] = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count()
        self._dead = False
        self.last_metrics: Optional[dict] = None  # retained if the worker dies
        self.ready = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-router-reader-{worker_id}", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------- requests
    def request(self, op: str, payload: Optional[dict] = None, timeout: float = 120.0):
        """Send one op to the worker and block for its typed response."""
        if self._dead:
            raise ServerError(f"worker {self.worker_id} is not running")
        req_id = next(self._ids)
        slot = _Slot()
        with self._pending_lock:
            self._pending[req_id] = slot
        try:
            with self._send_lock:
                self._conn.send((op, req_id, payload or {}))
        except (BrokenPipeError, OSError) as exc:
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise ServerError(f"worker {self.worker_id} pipe is closed") from exc
        if not slot.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise ServerError(
                f"worker {self.worker_id} did not answer {op!r} within {timeout}s"
            )
        if slot.error is not None:
            raise slot.error
        return slot.result

    def _read_loop(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                self._dead = True
                self._fail_all(ServerError(f"worker {self.worker_id} terminated"))
                # Wake anyone blocked on the startup handshake — start()
                # re-checks `alive` and reports the crash immediately
                # instead of sitting out its full ready timeout.
                self.ready.set()
                return
            req_id, status, payload = msg
            if req_id == _READY:
                self.ready.set()
                continue
            with self._pending_lock:
                slot = self._pending.pop(req_id, None)
            if slot is None:  # timed out meanwhile; drop the late answer
                continue
            if status == "ok":
                slot.result = payload
            else:
                slot.error = exception_from_wire(*payload)
            slot.event.set()

    def _fail_all(self, exc: BaseException) -> None:
        with self._pending_lock:
            pending, self._pending = dict(self._pending), {}
        for slot in pending.values():
            slot.error = exc
            slot.event.set()

    # ------------------------------------------------------------ lifecycle
    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop; escalate to terminate if the worker hangs."""
        try:
            with self._send_lock:
                self._conn.send(("stop", 0, None))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(5.0)
        self._dead = True
        self._fail_all(ServerError(f"worker {self.worker_id} stopped"))
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - best effort
            pass


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to worker pipes.

    With ``protocol_version = "HTTP/1.1"`` the stdlib reuses ONE
    handler instance for every keep-alive request on a connection
    (``handle()`` loops ``handle_one_request`` on self), so any
    per-request state must be reset per request, not per instance.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    # The ThreadingHTTPServer subclass below carries the owning
    # ServingServer as `owner`.

    def handle_one_request(self) -> None:  # noqa: D102 - stdlib API
        # Per-request state. Stale _streamed from a previous request on
        # this connection would make _safe_error drop the connection
        # instead of replying; stale _body_read would defeat the
        # close-on-unread-body guard and desync keep-alive framing.
        self._streamed = False
        self._body_read = False
        super().handle_one_request()

    def log_message(self, fmt: str, *args: object) -> None:  # noqa: D102 - quiet
        pass

    # ---------------------------------------------------------------- plumbing
    def _content_length(self) -> int:
        """The request's validated body length.

        Malformed or negative declarations raise ``ValueError`` (→ 400)
        instead of leaking as a 500; declarations over the server's
        ``max_body`` cap raise :class:`PayloadTooLargeError` (→ 413)
        *before a single body byte is read*, so an oversized upload
        costs the server a header parse, not a buffered gigabyte.
        """
        server: "ServingServer" = self.server.owner  # type: ignore[attr-defined]
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except (TypeError, ValueError):
            raise ValueError(f"malformed Content-Length header {raw!r}") from None
        if length < 0:
            raise ValueError(f"negative Content-Length {length}")
        if length > server.max_body:
            hint = ""
            if not self._is_binary_request():
                hint = (
                    f" — the binary transport (Content-Type: {wire.CONTENT_TYPE})"
                    " is several times smaller and streamed"
                )
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the server's "
                f"{server.max_body}-byte cap (serving_max_body){hint}"
            )
        return length

    def _body(self) -> dict:
        length = self._content_length()
        if length == 0:
            self._body_read = True
            return {}
        raw = self.rfile.read(length)
        self._body_read = True
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _is_binary_request(self) -> bool:
        ctype = (self.headers.get("Content-Type") or "").split(";")[0].strip().lower()
        return ctype == wire.CONTENT_TYPE

    def _wants_binary(self) -> bool:
        return wire.CONTENT_TYPE in (self.headers.get("Accept") or "")

    def _read_binary(self, deadline: Optional[Deadline]):
        """Decode a binary request body into ``(meta, arrays)``.

        The read is bounded by the (already capped) Content-Length and
        decoded incrementally into preallocated arrays; a decode error
        drains the remaining body so the keep-alive connection stays
        usable for the error reply and the next request.
        """
        server: "ServingServer" = self.server.owner  # type: ignore[attr-defined]
        length = self._content_length()
        if length == 0:
            self._body_read = True
            raise WireFormatError("binary request carries an empty body")
        reader = wire.BoundedReader(self.rfile, length)
        try:
            return wire.read_message(
                reader.read, max_bytes=server.max_body, deadline=deadline
            )
        finally:
            try:
                reader.drain()
                self._body_read = True
            except OSError:
                self.close_connection = True

    def _drain_body(self) -> None:
        """Read and discard the body (unrouted requests keep framing sane)."""
        length = self._content_length()
        if length:
            wire.BoundedReader(self.rfile, length).drain()
        self._body_read = True

    def _reply(
        self, status: int, payload: dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        try:
            data = json.dumps(payload, allow_nan=False).encode("utf-8")
        except ValueError:
            # A non-finite float slipped past the typed checks. Plain
            # json.dumps would emit bare NaN/Infinity tokens — which are
            # not JSON and explode in strict parsers — so degrade to a
            # typed error instead of ever sending an unparseable body.
            status, headers = 500, None
            data = json.dumps(
                {
                    "error": {
                        "type": "PredictionError",
                        "message": (
                            "response contains non-finite floats that strict "
                            "JSON cannot represent; use the binary transport "
                            f"(Accept: {wire.CONTENT_TYPE}) to receive them "
                            "bit-exact"
                        ),
                    }
                }
            ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(
        self, status: int, text: str, *, content_type: str = "text/plain"
    ) -> None:
        """Plain-text reply (the Prometheus exposition surface)."""
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_binary(
        self,
        meta: dict,
        arrays: Dict[str, np.ndarray],
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Stream a binary message as a chunked 200 response."""
        self._streamed = True
        self.send_response(200)
        self.send_header("Content-Type", wire.CONTENT_TYPE)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        wire.write_chunked(
            self.wfile, wire.iter_message(meta, arrays), deadline=deadline
        )

    def _safe_error(self, exc: BaseException) -> None:
        """Report ``exc`` to the client without ever corrupting the stream.

        Once a chunked binary response has started, its status line is
        gone — the only honest signal left is killing the connection so
        the client sees truncation (a typed wire error) instead of a
        silently short prediction. An error raised *before* the body
        was consumed (413, malformed Content-Length) likewise closes
        the connection: unread body bytes would desync the next
        keep-alive request.
        """
        if getattr(self, "_streamed", False):
            self.close_connection = True
            return
        if not getattr(self, "_body_read", False):
            self.close_connection = True
        self._reply_error(exc)

    def _reply_error(self, exc: BaseException) -> None:
        error = {"type": type(exc).__name__, "message": str(exc)}
        headers = None
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            # Load shedding / open breakers tell clients *when* to come
            # back — both in the JSON (typed clients) and as the
            # standard header (generic HTTP clients).
            error["retry_after"] = float(retry_after)
            headers = {"Retry-After": f"{max(0.0, float(retry_after)):.3f}"}
        self._reply(status_for_exception(exc), {"error": error}, headers)

    def _reply_no_route(self) -> None:
        # 404, but as ServerError: a routing mistake must not look like a
        # missing *model* to clients that react to ModelNotFoundError.
        self._reply(
            404,
            {"error": {"type": "ServerError", "message": f"no route {self.path!r}"}},
        )

    # ------------------------------------------------------------------ routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server: "ServingServer" = self.server.owner  # type: ignore[attr-defined]
        try:
            if self.path == "/healthz":
                self._reply(200, server.health())
            elif self.path == "/v1/models":
                self._reply(200, server.models())
            elif self.path.startswith("/v1/metrics"):
                split = urllib.parse.urlsplit(self.path)
                if split.path != "/v1/metrics":
                    self._reply_no_route()
                    return
                query = urllib.parse.parse_qs(split.query)
                fmt = query.get("format", ["json"])[0]
                if fmt == "prometheus":
                    self._reply_text(
                        200,
                        server.metrics_prometheus(),
                        content_type="text/plain; version=0.0.4; charset=utf-8",
                    )
                elif fmt == "json":
                    self._reply(200, server.metrics())
                else:
                    raise ValueError(
                        f"unknown metrics format {fmt!r} (expected 'json' or "
                        "'prometheus')"
                    )
            elif self.path.startswith("/v1/trace"):
                split = urllib.parse.urlsplit(self.path)
                parts = [urllib.parse.unquote(p) for p in split.path.split("/") if p]
                if parts[:2] != ["v1", "trace"] or len(parts) != 3:
                    self._reply_no_route()
                else:
                    self._reply(200, server.trace_request(parts[2]))
            elif self.path.startswith("/v1/plan"):
                split = urllib.parse.urlsplit(self.path)
                if split.path != "/v1/plan":
                    self._reply_no_route()
                    return
                query = urllib.parse.parse_qs(split.query)
                self._reply(200, server.plan_request(query))
            elif self.path.startswith("/v1/jobs"):
                split = urllib.parse.urlsplit(self.path)
                parts = [urllib.parse.unquote(p) for p in split.path.split("/") if p]
                # Exact segment match: '/v1/jobsx' must 404, not list jobs.
                if parts[:2] != ["v1", "jobs"]:
                    self._reply_no_route()
                elif len(parts) == 2:
                    self._reply(200, {"jobs": server.jobs_request()})
                elif len(parts) == 3:
                    query = urllib.parse.parse_qs(split.query)
                    include_trace = query.get("trace", ["1"])[0] not in ("0", "false")
                    self._reply(
                        200, server.job_request(parts[2], include_trace=include_trace)
                    )
                else:
                    self._reply_no_route()
            else:
                self._reply_no_route()
        except ConnectionError:  # client went away mid-reply: drop quietly
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to the client
            self._reply_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        server: "ServingServer" = self.server.owner  # type: ignore[attr-defined]
        try:
            # The deadline header is parsed at the very edge — before
            # the body is read — so streamed body reads already run
            # under the client's budget, and it wins over the body's
            # ``deadline`` field (proxies can impose a budget without
            # re-encoding the payload).
            deadline = Deadline.from_header(self.headers.get("X-Repro-Deadline"))
            if self.path == "/v1/predict":
                if not _telemetry.enabled():
                    self._predict_route(server, deadline)
                    return
                # Trace ingress, parsed at the same edge as the deadline:
                # continue the client's trace when the header parses,
                # start a fresh one otherwise, so server-side spans are
                # always connected under a single router span.
                ctx = _trace_context.from_header(
                    self.headers.get(_trace_context.TRACE_HEADER)
                )
                with _trace_context.activate(ctx or _trace_context.new_trace()):
                    with _telemetry.span("router.predict"):
                        self._predict_route(server, deadline)
                return
            if self.path == "/v1/fit":
                self._reply(200, server.fit_request(self._body()))
                return
            # Split on raw '/', then decode each segment: a model id with
            # an encoded '/' (%2F) stays one segment and routes correctly.
            parts = [urllib.parse.unquote(p) for p in self.path.split("/") if p]
            if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "models":
                if len(parts) == 3:
                    if self._is_binary_request():
                        # Register-by-upload: the body IS the bundle.
                        meta, arrays = self._read_binary(deadline)
                        self._reply(
                            200,
                            server.register_upload_request(parts[2], meta, arrays),
                        )
                    else:
                        self._reply(200, server.register_request(parts[2], self._body()))
                    return
                if len(parts) == 4 and parts[3] == "reload":
                    self._reply(200, server.reload_request(parts[2], self._body()))
                    return
                if len(parts) == 4 and parts[3] == "policy":
                    self._reply(200, server.policy_request(parts[2], self._body()))
                    return
            self._drain_body()
            self._reply_no_route()
        except ConnectionError:  # client went away mid-reply: drop quietly
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to the client
            self._safe_error(exc)

    def _predict_route(self, server: "ServingServer", deadline: Optional[Deadline]) -> None:
        """``POST /v1/predict`` with per-side transport negotiation:
        Content-Type picks the request decoder, Accept picks the
        response encoder, and the two compose freely."""
        if self._is_binary_request():
            meta, arrays = self._read_binary(deadline)
            body = dict(meta)
            body.update(arrays)
        else:
            body = self._body()
        if self._wants_binary():
            out = server.predict_arrays_request(body, deadline=deadline)
            prediction = out.pop("prediction")
            self._reply_binary(out, {"prediction": prediction}, deadline)
        else:
            self._reply(200, server.predict_request(body, deadline=deadline))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, owner: "ServingServer") -> None:
        self.owner = owner
        super().__init__(address, handler)


class ServingServer:
    """HTTP front-end over ``num_workers`` model-serving processes.

    Parameters
    ----------
    models:
        ``{model_id: bundle_path}`` registered on the owning worker of
        each id before startup. More models can be registered later via
        :meth:`register_request` / ``POST /v1/models/<id>``.
    num_workers:
        Worker processes (default: configured ``serving_workers``).
        Model ids are sharded onto workers by the same stable hash the
        registry uses, so placement is reproducible everywhere.
    host, port:
        Bind address. ``port=0`` picks a free ephemeral port (read it
        back from :attr:`port` / :attr:`url` after :meth:`start`).
    registry_options, service_options:
        Keyword dicts forwarded to each worker's :class:`ModelRegistry`
        and :class:`PredictionService` — batching windows, LRU budget,
        adaptive-window mode, shard runtimes, ... Validated here, at
        construction, by building throwaway instances, so a typo or a
        nonsense knob (``serving_max_batch=0``) fails in the parent
        process instead of crashing workers at first request.
    start_method:
        :mod:`multiprocessing` start method (default: ``fork`` where
        available, else ``spawn``).
    request_timeout:
        Seconds the router waits for a worker's answer before failing
        the HTTP request with :class:`ServerError`.
    enable_fitting:
        Mount the fitting service (``POST /v1/fit`` + ``GET
        /v1/jobs``). On by default; off makes those routes fail with
        :class:`ConfigurationError`.
    jobs_dir:
        Directory the fit-job ledger (:class:`~repro.fitting.JobStore`)
        lives in. Jobs in it are durable: a restarted server resumes
        interrupted fits from their checkpoints, and published refit
        bundles keep serving across restarts. Default: a fresh
        temporary directory, removed at :meth:`stop` — refit bundles
        published from it are rolled back to each model's last
        externally-registered bundle on the next start. Pass a real
        path for durability.
    fit_options:
        Keyword dict forwarded to the
        :class:`~repro.fitting.FitOrchestrator` (``max_workers``,
        ``checkpoint_every``, ``max_restarts``, ``start_method``).
        Validated here, at construction, like the other option dicts.
    max_worker_restarts:
        Times the router respawns a *serving* worker process that died
        (per worker) before ``/healthz`` degrades permanently. The
        request that observed the death is retried once on the fresh
        worker.
    max_inflight:
        Server-wide cap on concurrently in-flight predict requests
        (default: configured ``serving_max_inflight``). Requests beyond
        the cap are shed immediately with 503 + ``Retry-After``
        (:class:`~repro.exceptions.LoadShedError`) instead of queueing
        without bound; admin and fit routes are never shed.
    max_body:
        Byte cap on a single request body (default: configured
        ``serving_max_body``). Larger declared bodies are answered 413
        (:class:`~repro.exceptions.PayloadTooLargeError`) before a
        single body byte is read.
    upload_dir:
        Directory binary register-by-upload bundles are persisted in.
        Default: a fresh temporary directory removed at :meth:`stop`
        (models registered from it roll back to their last external
        bundle, like ephemeral ``jobs_dir`` refits). Pass a real path
        to keep uploaded bundles across restarts.
    calibration_profile:
        Source of the ``GET /v1/plan`` planner's machine constants: a
        :class:`~repro.perfmodel.autotune.CalibrationProfile`, or a
        path to one persisted by ``python -m repro.perfmodel.autotune
        --out ...``. Default ``None`` resolves lazily on the first plan
        request via :func:`repro.perfmodel.planner.default_profile`
        (the configured ``autotune_profile`` path, else a quick
        in-process calibration cached for the server's lifetime).

    Examples
    --------
    >>> with ServingServer({"soil": "fits/soil.bundle"}) as server:  # doctest: +SKIP
    ...     client = ServingClient(server.url)
    ...     client.predict("soil", targets)
    """

    def __init__(
        self,
        models: Optional[Dict[str, Union[str, Path]]] = None,
        *,
        num_workers: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry_options: Optional[dict] = None,
        service_options: Optional[dict] = None,
        start_method: Optional[str] = None,
        request_timeout: float = 120.0,
        enable_fitting: bool = True,
        jobs_dir: Optional[Union[str, Path]] = None,
        fit_options: Optional[dict] = None,
        max_worker_restarts: int = 2,
        max_inflight: Optional[int] = None,
        max_body: Optional[int] = None,
        upload_dir: Optional[Union[str, Path]] = None,
        calibration_profile: Optional[Union[str, Path, "CalibrationProfile"]] = None,
    ) -> None:
        cfg = get_config()
        self.num_workers = cfg.serving_workers if num_workers is None else int(num_workers)
        if self.num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {self.num_workers}")
        if request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        if max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        self.max_body = cfg.serving_max_body if max_body is None else int(max_body)
        if self.max_body < 1024:
            raise ConfigurationError(
                f"max_body must be >= 1024 bytes, got {self.max_body}"
            )
        self.host = host
        self._requested_port = int(port)
        self.request_timeout = float(request_timeout)
        self.registry_options = dict(registry_options or {})
        self.service_options = dict(service_options or {})
        # Fail fast on bad options: both constructors validate their
        # knobs, and a worker is the wrong place to discover a typo.
        with ModelRegistry(**self.registry_options) as probe:
            PredictionService(probe, **self.service_options)
        self.enable_fitting = bool(enable_fitting)
        self.fit_options = FitOrchestrator.validate_options(fit_options)
        self._jobs_dir = None if jobs_dir is None else Path(jobs_dir)
        self._jobs_dir_owned = False
        self._upload_dir = None if upload_dir is None else Path(upload_dir)
        self._upload_dir_owned = False
        self._upload_ids = itertools.count()
        self._fit_store: Optional[JobStore] = None
        self._orchestrator: Optional[FitOrchestrator] = None
        self._models = {str(mid): str(Path(p)) for mid, p in (models or {}).items()}
        # Last path per model registered from *outside* an ephemeral
        # jobs_dir — the rollback target when stop() deletes the ledger
        # a refit bundle was published from.
        self._external_paths = dict(self._models)
        self._policies: Dict[str, dict] = {}  # runtime-set, survives respawns
        if start_method is None:
            start_method = os.environ.get("REPRO_SERVING_START_METHOD")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: List[_WorkerHandle] = []
        self._http: Optional[_Server] = None
        self._http_thread: Optional[threading.Thread] = None
        self._started = False
        self.max_worker_restarts = int(max_worker_restarts)
        self.n_worker_restarts = 0
        self._restarts_by_worker: Dict[int, int] = {}
        self._respawn_lock = threading.Lock()
        # Resilience plumbing, resolved against this thread's config now
        # (handles are later created on HTTP handler threads whose
        # thread-local config is the default): the admission gate sheds
        # predict load past the in-flight cap, the per-worker breakers
        # fail fast on hung workers, and the retry policy is the single
        # statement of "dead worker → respawn → retry exactly once".
        self._gate = AdmissionGate(max_inflight=max_inflight)
        self._breaker_options = {
            "failure_threshold": cfg.breaker_threshold,
            "recovery_time": cfg.breaker_recovery,
        }
        self._worker_retry = RetryPolicy(
            max_attempts=2, base_delay=0.0, jitter=0.0, retry_on=(ServerError,)
        )
        # Telemetry settings resolved once, against this thread's
        # config, and shipped in every worker's spawn config — a
        # respawn on a handler thread must arm the fresh worker the
        # same way the original was armed.
        self._telemetry_settings = _telemetry.settings()
        # Planner state for GET /v1/plan: resolved lazily on the first
        # plan request so servers that never plan pay nothing.
        self._calibration_profile = calibration_profile
        self._planner = None
        self._planner_lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle
    def _worker_config(self, worker_id: int) -> dict:
        """The spawn-time config of one worker: its shard's models plus
        the option dicts. Also what a *respawned* worker receives, so
        models registered at runtime survive a worker crash."""
        models = {
            mid: path
            for mid, path in self._models.items()
            if self.worker_for(mid) == worker_id
        }
        return {
            "models": models,
            "policies": {
                mid: policy
                for mid, policy in self._policies.items()
                if self.worker_for(mid) == worker_id
            },
            "registry": self.registry_options,
            "service": self.service_options,
            "telemetry": self._telemetry_settings,
        }

    def start(self, *, ready_timeout: float = 60.0) -> "ServingServer":
        """Spawn workers, wait for their handshakes, and bind the HTTP port."""
        if self._started:
            return self
        for worker_id in range(self.num_workers):
            self._workers.append(
                _WorkerHandle(
                    self._ctx,
                    worker_id,
                    self._worker_config(worker_id),
                    self._breaker_options,
                )
            )
        for handle in self._workers:
            ready = handle.ready.wait(ready_timeout)
            if not ready or not handle.alive:
                worker_id = handle.worker_id
                self.stop()
                raise ServerError(
                    f"worker {worker_id} "
                    + ("died during startup" if ready else
                       f"failed to start within {ready_timeout}s")
                )
        if self._upload_dir is None:
            self._upload_dir = Path(tempfile.mkdtemp(prefix="repro-uploads-"))
            self._upload_dir_owned = True
        else:
            self._upload_dir.mkdir(parents=True, exist_ok=True)
        if self.enable_fitting:
            if self._jobs_dir is None:
                self._jobs_dir = Path(tempfile.mkdtemp(prefix="repro-fit-jobs-"))
                self._jobs_dir_owned = True
            self._fit_store = JobStore(self._jobs_dir)
            self._orchestrator = FitOrchestrator(
                self._fit_store,
                on_complete=self._serve_fit_result,
                **self.fit_options,
            ).start()
        self._http = _Server((self.host, self._requested_port), _Handler, self)
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serving-http", daemon=True
        )
        self._http_thread.start()
        self._restarts_by_worker = {}
        self.n_worker_restarts = 0
        self._started = True
        return self

    def stop(self) -> None:
        """Stop the HTTP listener, the fit orchestrator, then every
        worker process (idempotent)."""
        self._started = False
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None
        if self._http_thread is not None:
            self._http_thread.join(10.0)
            self._http_thread = None
        if self._orchestrator is not None:
            self._orchestrator.stop()
            self._orchestrator = None
            self._fit_store = None
        if self._jobs_dir_owned and self._jobs_dir is not None:
            # The ephemeral ledger is about to vanish — models whose
            # registered path points into it (refits published while
            # running) must not survive into the next start() as paths
            # to nowhere. Durable deployments pass jobs_dir= and keep
            # their refit bundles across restarts.
            self._discard_ephemeral_dir(self._jobs_dir)
            self._jobs_dir = None
            self._jobs_dir_owned = False
        if self._upload_dir_owned and self._upload_dir is not None:
            # Same rule for the binary register-by-upload staging dir:
            # bundles uploaded over the wire are only as durable as the
            # directory they were saved into.
            self._discard_ephemeral_dir(self._upload_dir)
            self._upload_dir = None
            self._upload_dir_owned = False
        workers, self._workers = self._workers, []
        for handle in workers:
            handle.stop()

    def _discard_ephemeral_dir(self, root: Path) -> None:
        """Delete an owned scratch dir, rolling every model whose
        registered path points into it back to its last external bundle
        (or dropping it when there is none)."""
        for mid, path in list(self._models.items()):
            if _path_within(path, root):
                external = self._external_paths.get(mid)
                if external is None:
                    del self._models[mid]
                else:
                    self._models[mid] = external
        shutil.rmtree(root, ignore_errors=True)

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # --------------------------------------------------------------- routing
    def worker_for(self, model_id: str) -> int:
        """The worker index owning ``model_id`` (stable hash sharding)."""
        return _stable_shard(model_id, self.num_workers)

    def _handle(self, model_id: str) -> _WorkerHandle:
        if not self._started:
            raise ServiceClosedError("server is not running (use start() or 'with')")
        return self._workers[self.worker_for(model_id)]

    def _respawn(self, worker_id: int, *, ready_timeout: float = 60.0) -> _WorkerHandle:
        """Replace a dead worker process with a fresh one (same shard).

        The new worker re-registers every model currently sharded onto
        it (including ones registered after startup — the router's map
        is the source of truth), so it rehydrates engines from bundles
        on demand. Serialized by a lock: concurrent requests that all
        observed the same death trigger exactly one respawn.
        """
        with self._respawn_lock:
            handle = self._workers[worker_id]
            if handle.alive:
                return handle  # another thread already respawned it
            if not self._started:
                raise ServerError(f"worker {worker_id} is not running")
            used = self._restarts_by_worker.get(worker_id, 0)
            if used >= self.max_worker_restarts:
                raise ServerError(
                    f"worker {worker_id} died and exhausted its "
                    f"{self.max_worker_restarts} restart(s)"
                )
            logger.warning(
                "serving worker %d died; respawning (restart %d/%d)",
                worker_id, used + 1, self.max_worker_restarts,
            )
            fresh = _WorkerHandle(
                self._ctx, worker_id, self._worker_config(worker_id), self._breaker_options
            )
            if not fresh.ready.wait(ready_timeout) or not fresh.alive:
                fresh.stop()
                raise ServerError(f"worker {worker_id} failed to restart")
            handle.stop(timeout=0.1)  # reap the corpse, fail its stragglers
            self._workers[worker_id] = fresh
            self._restarts_by_worker[worker_id] = used + 1
            self.n_worker_restarts += 1
            return fresh

    def _request(
        self, model_id: str, op: str, payload: dict, deadline: Optional[Deadline] = None
    ):
        """One worker op with crash recovery: when the owning worker is
        found dead — before the send or while the request was in flight
        — it is respawned and the request retried (``_worker_retry``:
        exactly once). Typed per-request failures and timeouts pass
        through untouched (a hung worker may still be executing;
        re-running would double-execute).

        A ``deadline`` shrinks with every hop: each (re)send carries the
        seconds *remaining* (queue/respawn time already spent is gone)
        and clamps the pipe wait, so a respawned-and-retried request can
        never outlive the budget its client set.

        Transport outcomes feed the worker's circuit breaker: after
        ``breaker_threshold`` consecutive :class:`ServerError` failures
        (a hung-but-alive worker), requests fail fast with
        :class:`CircuitOpenError` instead of each waiting out the full
        pipe timeout. Respawned workers start with a fresh breaker.
        """
        handle = self._handle(model_id)
        attempt = 0
        while True:
            if deadline is not None:
                deadline.check(op)
                payload = dict(payload, deadline=deadline.remaining)
            timeout = (
                self.request_timeout
                if deadline is None
                else max(1e-3, deadline.clamp(self.request_timeout))
            )
            if not handle.breaker.allow():
                raise CircuitOpenError(
                    f"worker {handle.worker_id} circuit breaker is open",
                    retry_after=handle.breaker.retry_after,
                )
            try:
                result = handle.request(op, payload, timeout=timeout)
            except ServerError as exc:
                handle.breaker.record_failure()
                dead = not handle.alive and self._started
                if not dead or not self._worker_retry.should_retry(exc, attempt):
                    raise
                handle = self._respawn(self.worker_for(model_id))
                attempt += 1
                continue
            except BaseException:
                # Typed per-request failure produced *by* the worker:
                # the transport is healthy.
                handle.breaker.record_success()
                raise
            handle.breaker.record_success()
            return result

    # ------------------------------------------------------------ operations
    def predict_arrays_request(
        self,
        body: dict,
        *,
        budget: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> dict:
        """Route one predict body to its worker; arrays stay arrays.

        The transport-neutral core: ``body`` may hold targets/z as
        lists (JSON) or ndarrays (binary), and the returned
        ``prediction`` is the worker's float64 array untouched — the
        binary transport streams it bit-exact, :meth:`predict_request`
        finite-checks and listifies it for JSON.

        An absolute :class:`Deadline` wins over ``budget`` (seconds)
        wins over the body's ``deadline`` field; whichever is set is
        resolved here, at the edge — every layer below (pipe wait,
        worker queue, engine executor) re-derives the time remaining
        from it rather than granting itself a fresh timeout.
        """
        with self._gate.admit():
            try:
                model_id = str(body["model_id"])
                targets = np.asarray(body["targets"], dtype=np.float64)
            except KeyError as exc:
                raise ValueError(
                    f"predict body is missing required key {exc}"
                ) from None
            z = body.get("z")
            if deadline is None:
                if budget is None:
                    budget = body.get("deadline")
                deadline = Deadline.after(None if budget is None else float(budget))
            payload = {
                "model_id": model_id,
                "targets": targets,
                "z": None if z is None else np.asarray(z, dtype=np.float64),
                "deadline": None,  # filled per send from the Deadline
                "priority": int(body.get("priority", 0)),
            }
            if _telemetry.enabled():
                ctx = _trace_context.current()
                if ctx is not None:
                    # The ids travel; the worker's spans stay worker-side
                    # and are re-joined by trace_request().
                    payload["trace"] = _trace_context.to_wire(ctx)
            result = self._request(model_id, "predict", payload, deadline=deadline)
            return {
                "model_id": model_id,
                "prediction": np.asarray(result["prediction"], dtype=np.float64),
                "degraded": bool(result["degraded"]),
                "worker": self.worker_for(model_id),
            }

    def predict_request(
        self,
        body: dict,
        *,
        budget: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> dict:
        """JSON-shaped predict: :meth:`predict_arrays_request` plus the
        strict-JSON contract. A non-finite prediction raises a typed
        :class:`PredictionError` here instead of being serialized into
        bare ``NaN``/``Infinity`` tokens no strict parser accepts."""
        out = self.predict_arrays_request(body, budget=budget, deadline=deadline)
        prediction = out["prediction"]
        finite = np.isfinite(prediction)
        if not finite.all():
            bad = int(prediction.size - np.count_nonzero(finite))
            raise PredictionError(
                f"model {out['model_id']!r} produced {bad} non-finite "
                f"prediction value(s) out of {prediction.size}; strict JSON "
                "cannot represent NaN/inf — use the binary transport "
                f"(Accept: {wire.CONTENT_TYPE}) to receive them bit-exact"
            )
        return dict(out, prediction=prediction.tolist())

    def register_request(self, model_id: str, body: dict) -> dict:
        try:
            path = str(body["path"])
        except KeyError as exc:
            raise ValueError(f"register body is missing required key {exc}") from None
        result = self._request(model_id, "register", {"model_id": model_id, "path": path})
        # Commit to the router's map only after the worker accepted, so a
        # failed registration never survives into the next start().
        self._commit_model_path(model_id, path)
        result["worker"] = self.worker_for(model_id)
        return result

    def register_upload_request(
        self, model_id: str, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> dict:
        """Register a model from an uploaded binary bundle payload.

        The decoded wire message is the bundle's own serialization
        (:meth:`~repro.serving.store.ModelBundle.to_payload`), so the
        upload is validated by the same code path as an on-disk load,
        persisted into the server's upload directory with the store's
        commit-marker discipline, and only then registered on the
        owning worker. A worker that refuses the registration deletes
        the staged bundle again — no half-written registry state.
        """
        if not self._started:
            raise ServiceClosedError("server is not running (use start() or 'with')")
        bundle = ModelBundle.from_payload(meta, arrays)
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in model_id)
        path = Path(self._upload_dir) / f"{safe or 'model'}-{next(self._upload_ids)}.bundle"
        bundle.save(path)
        try:
            result = self._request(
                model_id, "register", {"model_id": model_id, "path": str(path)}
            )
        except BaseException:
            shutil.rmtree(path, ignore_errors=True)
            raise
        self._commit_model_path(model_id, str(path))
        result["worker"] = self.worker_for(model_id)
        result["path"] = str(path)
        result["n"] = bundle.n
        return result

    def reload_request(self, model_id: str, body: dict) -> dict:
        path = body.get("path")
        result = self._request(model_id, "reload", {"model_id": model_id, "path": path})
        # Same commit-on-success rule as the worker's registry: a failed
        # reload keeps the last good path for future restarts.
        if path is not None:
            self._commit_model_path(model_id, str(path))
        result["worker"] = self.worker_for(model_id)
        return result

    def _commit_model_path(self, model_id: str, path: str) -> None:
        """Record a successfully registered/reloaded bundle path, also
        remembering it as the rollback target unless it lives inside an
        ephemeral jobs_dir that :meth:`stop` will delete."""
        self._models[model_id] = path
        ephemeral = (
            self._jobs_dir_owned
            and self._jobs_dir is not None
            and _path_within(path, self._jobs_dir)
        ) or (
            self._upload_dir_owned
            and self._upload_dir is not None
            and _path_within(path, self._upload_dir)
        )
        if not ephemeral:
            self._external_paths[model_id] = path

    def policy_request(self, model_id: str, body: dict) -> dict:
        policy = {
            "batch_window": body.get("batch_window"),
            "max_batch": body.get("max_batch"),
        }
        result = self._request(model_id, "policy", dict(policy, model_id=model_id))
        # Commit-on-success so a respawned worker gets the policy back;
        # merge per knob, matching PredictionService.set_policy.
        previous = self._policies.get(model_id, {})
        self._policies[model_id] = {
            knob: previous.get(knob) if value is None else value
            for knob, value in policy.items()
        }
        result["worker"] = self.worker_for(model_id)
        return result

    # ----------------------------------------------------------- fit service
    def _check_fitting(self) -> FitOrchestrator:
        if not self._started:
            raise ServiceClosedError("server is not running (use start() or 'with')")
        if not self.enable_fitting or self._orchestrator is None:
            raise ConfigurationError("the fitting service is disabled on this server")
        return self._orchestrator

    def fit_request(self, body: dict) -> dict:
        """Submit a fit job from its HTTP body; returns immediately.

        ``from_model`` resolves an already-served model id to its
        registered bundle — the refit shape: its data (unless new
        ``locations``/``z`` are inline), its substrate, and (by
        default) a warm start from its fitted theta. The job's
        ``model_id`` defaults to ``from_model``, so the finished fit
        hot-reloads the same served id with zero downtime.
        """
        orchestrator = self._check_fitting()
        body = dict(body)
        from_model = body.pop("from_model", None)
        bundle_path = body.pop("bundle_path", None)
        if from_model is not None:
            registered = self._models.get(str(from_model))
            if registered is None:
                raise ModelNotFoundError(
                    f"model {from_model!r} is not registered on this server"
                )
            if bundle_path is not None:
                raise FittingError("pass either from_model or bundle_path, not both")
            bundle_path = registered
            body.setdefault("model_id", str(from_model))
        locations = body.pop("locations", None)
        z = body.pop("z", None)
        known = {
            "model_id", "model", "metric", "variant", "acc", "tile_size",
            "compression_method", "use_morton", "maxiter", "ftol", "xtol",
            "n_starts", "seed", "x0", "bounds", "warm_start",
            "include_factor", "include_distance_cache",
        }
        unknown = sorted(set(body) - known)
        if unknown:
            raise FittingError(f"unknown fit request fields {unknown}")
        model_spec = body.pop("model", None)
        spec = FitJobSpec(
            locations=None if locations is None else np.asarray(locations, dtype=np.float64),
            z=None if z is None else np.asarray(z, dtype=np.float64),
            bundle_path=None if bundle_path is None else str(bundle_path),
            model_spec=model_spec,
            warm_start=bool(body.pop("warm_start", bundle_path is not None)),
            **body,
        )
        job_id = orchestrator.submit(spec)
        return {"job_id": job_id, "status": "queued", "model_id": spec.model_id}

    def job_request(self, job_id: str, *, include_trace: bool = True) -> dict:
        """One job's record; ``include_trace=False`` skips the (growing)
        per-iteration trace — what status pollers should use."""
        self._check_fitting()
        return self._fit_store.record(job_id, include_trace=include_trace)

    def jobs_request(self) -> List[dict]:
        """State summaries of every job in the ledger."""
        self._check_fitting()
        return self._fit_store.list_jobs()

    def _serve_fit_result(self, record: dict) -> None:
        """Orchestrator ``on_complete`` hook: publish a finished fit.

        Registers the job's bundle under its target model id — or
        hot-reloads it when the id is already served — then marks the
        job ``served``. Failures land on the job as ``serve_error``;
        the fit itself stays ``done`` (its bundle is on disk either
        way).
        """
        job_id = record["job_id"]
        model_id = record.get("model_id")
        bundle_path = record.get("bundle_path")
        if not model_id or bundle_path is None:
            return
        store = self._fit_store
        try:
            if not self._started:
                raise ServiceClosedError("server stopped before the fit was published")
            if model_id in self._models:
                self.reload_request(model_id, {"path": bundle_path})
            else:
                self.register_request(model_id, {"path": bundle_path})
        except BaseException as exc:  # noqa: BLE001 - recorded on the job
            if store is not None:
                store.update(job_id, served=False, serve_error=str(exc))
            return
        if store is not None:
            store.update(job_id, served=True)

    def models(self) -> dict:
        """Model ids known to each worker, plus degradation state.

        One dead or unresponsive worker degrades the answer instead of
        failing it: its shard is listed under ``dead_workers`` and the
        response carries ``degraded: true`` while the live workers'
        models are still reported.
        """
        out: Dict[str, List[str]] = {}
        dead: List[int] = []
        for handle in self._workers:
            if not handle.alive:
                dead.append(handle.worker_id)
                continue
            try:
                out[str(handle.worker_id)] = handle.request(
                    "models", timeout=self.request_timeout
                )
            except ServerError:
                dead.append(handle.worker_id)
        return {"models": out, "degraded": bool(dead), "dead_workers": dead}

    def metrics(self) -> dict:
        """Per-worker metrics + fleet-wide counter aggregates.

        A dead worker is reported with ``"dead": true`` and its last
        observed counters (if any), so aggregates stay monotonic across
        a crash instead of silently shrinking between polls — and the
        whole response carries ``degraded: true`` with the dead workers
        listed, rather than failing because one shard is down.
        """
        workers = {}
        totals: Dict[str, int] = {}
        dead: List[int] = []
        for handle in self._workers:
            snap = None
            if handle.alive:
                try:
                    snap = handle.request("metrics", timeout=self.request_timeout)
                    handle.last_metrics = snap
                except ServerError:
                    pass
            if snap is None:
                dead.append(handle.worker_id)
                if handle.last_metrics is not None:
                    snap = dict(handle.last_metrics, dead=True)
                else:
                    workers[str(handle.worker_id)] = {"dead": True}
                    continue
            workers[str(handle.worker_id)] = snap
            for name, value in snap["service"]["counters"].items():
                totals[name] = totals.get(name, 0) + int(value)
        return {
            "workers": workers,
            "aggregate": {"counters": totals},
            "admission": self._gate.snapshot(),
            "worker_breakers": {
                str(h.worker_id): h.breaker.snapshot() for h in self._workers
            },
            "degraded": bool(dead),
            "dead_workers": dead,
        }

    def metrics_prometheus(self) -> str:
        """Fleet metrics in Prometheus text exposition format 0.0.4.

        The router's own registry snapshot is merged with every live
        worker's (counters/gauges sum; histograms sum bucket-wise), so
        one scrape sees the whole fleet. With telemetry disabled this
        renders the (empty) router registry — a valid, boring
        exposition rather than an error, so scrapers can probe before
        arming.
        """
        snapshots = [_registry_mod.get_registry().snapshot()]
        for snap in self.metrics()["workers"].values():
            telem = snap.get("telemetry") if isinstance(snap, dict) else None
            if telem:
                snapshots.append(telem)
        return render_prometheus(_registry_mod.MetricsRegistry.merge(snapshots))

    def trace_request(self, trace_id: str) -> dict:
        """Assemble one trace's span tree across router + all workers.

        Spans never travel with requests — each process keeps its own
        ring — so this is the join point: the router's recorder plus a
        ``trace`` op to every live worker, deduped and nested by
        :func:`~repro.telemetry.export.assemble_trace`. An unknown (or
        evicted) trace id raises :class:`TraceNotFoundError` → 404.
        """
        if not self._started:
            raise ServiceClosedError("server is not running (use start() or 'with')")
        spans: List[dict] = []
        recorder = _telemetry.get_recorder()
        if recorder is not None:
            spans.extend(recorder.for_trace(trace_id))
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                result = handle.request(
                    "trace", {"trace_id": trace_id}, timeout=self.request_timeout
                )
            except ServerError:
                continue  # a dead shard degrades the trace, not the route
            spans.extend(result["spans"])
        if not spans:
            raise TraceNotFoundError(
                f"no spans recorded for trace {trace_id!r} (telemetry off, "
                "id unknown, or evicted from the bounded span ring)"
            )
        return assemble_trace(trace_id, spans)

    def _get_planner(self):
        """The lazily built :class:`~repro.perfmodel.planner.Planner`.

        Resolution order: the ``calibration_profile`` constructor
        argument (a profile object or a path to a persisted one), else
        :func:`~repro.perfmodel.planner.default_profile` (configured
        ``autotune_profile`` path, or a quick in-process calibration
        cached for the process lifetime). Router-side only — planning
        never touches a worker.
        """
        from ..perfmodel.autotune import CalibrationProfile
        from ..perfmodel.planner import Planner, default_profile

        with self._planner_lock:
            if self._planner is None:
                source = self._calibration_profile
                if source is None:
                    profile = default_profile()
                elif isinstance(source, CalibrationProfile):
                    profile = source
                else:
                    profile = CalibrationProfile.load(source)
                self._planner = Planner(profile)
            return self._planner

    def plan_request(self, query: Dict[str, List[str]]) -> dict:
        """Answer ``GET /v1/plan`` from parsed query parameters.

        Router-side — no worker round-trip. ``n`` is required;
        ``m`` (prediction points, default 100), ``substrate``
        (``full-block``/``full-tile``/``tlr``, default: search all
        feasible) and ``accuracy`` (TLR tolerance, default: ladder
        search) are optional. Malformed parameters raise
        :class:`PlanError` → 400; an unreadable calibration profile
        raises :class:`CalibrationError` → 500.
        """
        if not self._started:
            raise ServiceClosedError("server is not running (use start() or 'with')")

        def _scalar(key: str) -> Optional[str]:
            values = query.get(key)
            if not values:
                return None
            return values[-1]

        raw_n = _scalar("n")
        if raw_n is None:
            raise PlanError(
                "missing required query parameter 'n' (problem size, e.g. "
                "GET /v1/plan?n=900)"
            )
        try:
            n = int(raw_n)
        except ValueError:
            raise PlanError(f"query parameter 'n' must be an integer, got {raw_n!r}")
        m = 100
        raw_m = _scalar("m")
        if raw_m is not None:
            try:
                m = int(raw_m)
            except ValueError:
                raise PlanError(
                    f"query parameter 'm' must be an integer, got {raw_m!r}"
                )
        accuracy = None
        raw_acc = _scalar("accuracy")
        if raw_acc is not None:
            try:
                accuracy = float(raw_acc)
            except ValueError:
                raise PlanError(
                    f"query parameter 'accuracy' must be a float, got {raw_acc!r}"
                )
        substrate = _scalar("substrate")
        planner = self._get_planner()
        return planner.plan(n, m=m, substrate=substrate, accuracy=accuracy).to_dict()

    def health(self) -> dict:
        alive = [handle.alive for handle in self._workers]
        healthy = self._started and all(alive)
        health = {
            "workers": self.num_workers,
            "alive": alive,
            "worker_restarts": self.n_worker_restarts,
        }
        if self.enable_fitting and self._orchestrator is not None:
            fitting = self._orchestrator.running
            health["fitting"] = fitting
            # A dead fit scheduler is an outage of the fitting surface:
            # it must degrade /healthz, not hide behind healthy workers.
            healthy = healthy and fitting
        health["status"] = "ok" if healthy else "degraded"
        return health

    # -------------------------------------------------------------- plumbing
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._http is None:
            return self._requested_port
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._started else "stopped"
        return (
            f"ServingServer({state}, workers={self.num_workers}, "
            f"models={len(self._models)}, url={self.url!r})"
        )
