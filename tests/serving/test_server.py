"""End-to-end tests for the multi-process HTTP serving layer.

The headline assertion: a prediction served over HTTP — JSON in, router
thread, pickle over a worker pipe, asyncio micro-batcher, engine call
in a worker *process*, and all the way back — is **bit-identical**
(0.0 absolute error) to calling ``PredictionEngine.predict`` in this
process, for all three substrates, including the adopted-factor path
where the worker never factorizes at all.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import (
    ConfigurationError,
    ModelNotFoundError,
    ServiceClosedError,
)
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.serving import ModelBundle, ServingClient, ServingServer
from repro.serving.registry import _stable_shard

N, NB, ACC = 144, 36, 1e-9
VARIANTS = ("full-block", "full-tile", "tlr")


def _make_bundle(variant, theta=(1.0, 0.1, 0.5), with_factor=True):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant, tile_size=NB, acc=ACC
    )
    if with_factor:
        # Persist the exact factor: the serving worker adopts it and the
        # first remote predict skips generation *and* factorization.
        bundle.factor = bundle.build_engine().factor()
    return bundle


@pytest.fixture(scope="module")
def bundle_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("bundles")
    paths = {}
    for variant in VARIANTS:
        paths[variant] = _make_bundle(variant).save(root / f"{variant}.bundle")
    return paths


@pytest.fixture(scope="module")
def server(bundle_paths):
    with ServingServer(
        dict(bundle_paths),
        num_workers=2,
        service_options={"batch_window": 0.01, "max_batch": 16},
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with ServingClient(server.url) as cli:
        yield cli


@pytest.fixture(scope="module")
def targets():
    return np.ascontiguousarray(np.random.default_rng(5).random((11, 2)))


# --------------------------------------------------------------------------
# Parity: HTTP-served == in-process, bit for bit.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_http_prediction_bit_identical_across_processes(
    bundle_paths, client, targets, variant
):
    engine = PredictionEngine.from_bundle(bundle_paths[variant])
    reference = engine.predict(targets)
    assert engine.n_factorizations == 0  # the adopted-factor path
    got = client.predict(variant, targets)
    np.testing.assert_array_equal(got, reference)


@pytest.mark.parametrize("variant", VARIANTS)
def test_http_explicit_z_bit_identical(bundle_paths, client, targets, variant):
    engine = PredictionEngine.from_bundle(bundle_paths[variant])
    z = 0.5 * engine.z + 1.0
    reference = engine.predict(targets, z=z)
    got = client.predict(variant, targets, z=z)
    np.testing.assert_array_equal(got, reference)


def test_http_concurrent_clients_all_bit_identical(bundle_paths, server, targets):
    """Many threads, each its own keep-alive connection, hitting all models
    at once: every answer must still be bit-identical to in-process."""
    references = {
        v: PredictionEngine.from_bundle(p).predict(targets)
        for v, p in bundle_paths.items()
    }
    jobs = [v for v in VARIANTS for _ in range(6)]

    def one(variant):
        with ServingClient(server.url) as cli:
            return variant, cli.predict(variant, targets)

    with concurrent.futures.ThreadPoolExecutor(max_workers=9) as pool:
        results = list(pool.map(one, jobs))
    assert len(results) == len(jobs)
    for variant, got in results:
        np.testing.assert_array_equal(got, references[variant])


# --------------------------------------------------------------------------
# Routing, admin surface, error mapping.
# --------------------------------------------------------------------------


def test_sharding_is_stable_and_owns_models(server, client):
    models = client.models()
    for variant in VARIANTS:
        expected = _stable_shard(variant, server.num_workers)
        assert server.worker_for(variant) == expected
        assert variant in models[str(expected)]


def test_health_reports_all_workers_alive(client, server):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == server.num_workers
    assert health["alive"] == [True] * server.num_workers


def test_metrics_counters_reconcile_with_client_counts(server, targets):
    with ServingClient(server.url) as cli:
        before = cli.metrics()["aggregate"]["counters"]
        n = 5
        for _ in range(n):
            cli.predict("full-block", targets)
        after = cli.metrics()["aggregate"]["counters"]
    assert after["requests"] - before.get("requests", 0) == n
    assert after["completed"] - before.get("completed", 0) == n
    assert after.get("errors", 0) == before.get("errors", 0)


def test_register_after_start_and_policy(server, client, targets, tmp_path):
    path = _make_bundle("full-block", theta=(2.0, 0.15, 0.8)).save(
        tmp_path / "late.bundle"
    )
    client.register("late-model", str(path))
    reference = PredictionEngine.from_bundle(path).predict(targets)
    np.testing.assert_array_equal(client.predict("late-model", targets), reference)
    policy = client.set_policy("late-model", batch_window=0.0, max_batch=4)
    assert policy["batch_window"] == 0.0
    assert policy["max_batch"] == 4


def test_model_id_with_slash_routes_through_admin_endpoints(
    server, client, targets, tmp_path
):
    """Regression: ids that need percent-encoding ('soil/2024') must work
    through the path-addressed admin routes, not just body-addressed
    predict."""
    model_id = "soil/2024 v1"
    path_a = _make_bundle("full-block").save(tmp_path / "slash-a.bundle")
    path_b = _make_bundle("full-block", theta=(1.7, 0.2, 0.9)).save(
        tmp_path / "slash-b.bundle"
    )
    client.register(model_id, str(path_a))
    ref_a = PredictionEngine.from_bundle(path_a).predict(targets)
    np.testing.assert_array_equal(client.predict(model_id, targets), ref_a)
    client.reload(model_id, str(path_b))
    ref_b = PredictionEngine.from_bundle(path_b).predict(targets)
    np.testing.assert_array_equal(client.predict(model_id, targets), ref_b)
    policy = client.set_policy(model_id, max_batch=2)
    assert policy["max_batch"] == 2


def test_unknown_model_maps_to_typed_exception(client, targets):
    with pytest.raises(ModelNotFoundError):
        client.predict("no-such-model", targets)


def test_unknown_route_and_malformed_body(server):
    import http.client
    import json

    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("GET", "/nope")
        resp = conn.getresponse()
        assert resp.status == 404
        # Routing mistakes are transport errors, NOT a missing model.
        assert json.loads(resp.read())["error"]["type"] == "ServerError"
        conn.request(
            "POST",
            "/v1/predict",
            body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        resp.read()
        assert resp.status == 400
        conn.request(
            "POST",
            "/v1/predict",
            body=json.dumps({"targets": [[0.1, 0.2]]}).encode(),  # no model_id
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        resp.read()
        assert resp.status == 400
    finally:
        conn.close()


def test_client_accepts_messy_base_urls(server, targets):
    """Regression: trailing slashes and bare host:port must both work."""
    reference = None
    for url in (server.url, server.url + "/", f"{server.host}:{server.port}"):
        with ServingClient(url) as cli:
            got = cli.predict("full-block", targets)
        if reference is None:
            reference = got
        np.testing.assert_array_equal(got, reference)


def test_priority_and_deadline_cross_the_wire(client, targets):
    got = client.predict("full-block", targets, deadline=30.0, priority=1)
    assert got.shape == (targets.shape[0],)
    from repro.exceptions import DeadlineExceededError

    with pytest.raises(DeadlineExceededError):
        client.predict("full-block", targets, deadline=-1.0)


# --------------------------------------------------------------------------
# Construction-time validation and lifecycle.
# --------------------------------------------------------------------------


def test_bad_options_fail_in_parent_before_spawning(bundle_paths):
    with pytest.raises(ConfigurationError):
        ServingServer(dict(bundle_paths), service_options={"max_batch": 0})
    with pytest.raises(ConfigurationError):
        ServingServer(dict(bundle_paths), service_options={"batch_window": -0.5})
    with pytest.raises(ConfigurationError):
        ServingServer(dict(bundle_paths), registry_options={"max_models": 0})
    with pytest.raises(ConfigurationError):
        ServingServer(dict(bundle_paths), num_workers=0)
    with pytest.raises(ConfigurationError):
        ServingServer(dict(bundle_paths), request_timeout=0.0)


def test_stopped_server_rejects_and_stop_is_idempotent(bundle_paths, targets):
    server = ServingServer({"m": bundle_paths["full-block"]}, num_workers=1)
    with pytest.raises(ServiceClosedError):
        server.predict_request({"model_id": "m", "targets": targets.tolist()})
    server.start()
    try:
        out = server.predict_request({"model_id": "m", "targets": targets.tolist()})
        assert len(out["prediction"]) == targets.shape[0]
    finally:
        server.stop()
        server.stop()  # idempotent
    with pytest.raises(ServiceClosedError):
        server.predict_request({"model_id": "m", "targets": targets.tolist()})


def test_ephemeral_path_detection_is_separator_aware(tmp_path):
    """Regression: a sibling directory sharing an ephemeral dir's string
    prefix (``uploads-keep`` vs ``uploads``) is NOT inside it — its
    bundles are durable and must survive as rollback targets."""
    from repro.serving.server import _path_within

    root = tmp_path / "uploads"
    assert _path_within(root / "m.bundle", root)
    assert _path_within(root / "a" / "b.bundle", root)
    assert _path_within(root, root)
    assert not _path_within(str(root) + "-keep/m.bundle", root)
    assert not _path_within(tmp_path / "uploadsX" / "m.bundle", root)
    assert not _path_within(tmp_path, root)
