"""Task and access-mode primitives for the runtime.

A task is a codelet (plain Python callable) bound to a list of
``(DataHandle, AccessMode)`` pairs. The callable receives the handles'
*payloads* (not the handles) in declaration order, so codelets are
ordinary functions operating on numpy arrays / tile objects and can be
unit-tested without any runtime.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .handle import DataHandle

__all__ = ["AccessMode", "Task", "TaskState"]

_task_counter = itertools.count()


class AccessMode(enum.Enum):
    """How a task accesses a data handle (StarPU's R/W/RW).

    ``READ`` accesses may run concurrently; ``WRITE`` and ``READWRITE``
    accesses are exclusive and order against all other accesses of the
    same handle (read-after-write, write-after-read, write-after-write).
    """

    READ = "R"
    WRITE = "W"
    READWRITE = "RW"

    @property
    def writes(self) -> bool:
        """True when the mode modifies the handle's payload."""
        return self is not AccessMode.READ


class TaskState(enum.Enum):
    """Lifecycle of a task inside the runtime."""

    PENDING = "pending"  # inserted, dependencies unresolved
    READY = "ready"  # all dependencies satisfied, queued
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Task:
    """A unit of work over registered data.

    Parameters
    ----------
    fn:
        The codelet. Called as ``fn(*payloads, *args, **kwargs)`` where
        ``payloads`` are the current payloads of the accessed handles in
        declaration order.
    accesses:
        Sequence of ``(handle, mode)`` pairs.
    args, kwargs:
        Extra positional/keyword arguments forwarded to ``fn`` after the
        payloads (e.g. an accuracy threshold).
    name:
        Label used in traces; defaults to the codelet's ``__name__``.
    priority:
        Larger runs earlier under the ``priority`` ready-queue policy.
        Tile Cholesky assigns higher priority to critical-path (panel)
        tasks, mirroring Chameleon/HiCMA.
    """

    __slots__ = (
        "id",
        "fn",
        "accesses",
        "args",
        "kwargs",
        "name",
        "priority",
        "state",
        "deps",
        "dependents",
        "unresolved",
        "result",
        "error",
        "t_start",
        "t_end",
        "worker",
    )

    def __init__(
        self,
        fn: Callable[..., Any],
        accesses: Sequence[Tuple[DataHandle, AccessMode]],
        *,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
        priority: int = 0,
    ) -> None:
        self.id: int = next(_task_counter)
        self.fn = fn
        self.accesses: List[Tuple[DataHandle, AccessMode]] = list(accesses)
        for handle, mode in self.accesses:
            if not isinstance(handle, DataHandle):
                raise TypeError(f"expected DataHandle, got {type(handle).__name__}")
            if not isinstance(mode, AccessMode):
                raise TypeError(f"expected AccessMode, got {type(mode).__name__}")
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.name = name or getattr(fn, "__name__", "task")
        self.priority = int(priority)
        self.state = TaskState.PENDING
        self.deps: set[int] = set()
        self.dependents: List["Task"] = []
        self.unresolved = 0
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.t_start = 0.0
        self.t_end = 0.0
        self.worker = -1

    def payloads(self) -> List[Any]:
        """Current payloads of the accessed handles, in declaration order."""
        return [handle.get() for handle, _ in self.accesses]

    def execute(self) -> Any:
        """Run the codelet synchronously (used by the engines).

        Does not manage state transitions; the executor owns those.
        """
        return self.fn(*self.payloads(), *self.args, **self.kwargs)

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent executing (0 until finished)."""
        return max(0.0, self.t_end - self.t_start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task(#{self.id} {self.name!r} {self.state.value})"
