"""The covariance generation pipeline (distance caching + fused tasks).

The MLE hot loop evaluates ``theta -> loglik`` hundreds of times, and
every evaluation starts by *generating* ``Sigma(theta)`` tile by tile.
Two observations make this stage much cheaper than the seed
implementation's serial regenerate-everything loop:

1. **Locations are fixed for the whole fit.** A covariance tile is
   ``variance * correlation(distances) (+ nugget)``; only the
   correlation parameters change between evaluations. The
   :class:`TileDistanceCache` computes each tile's pairwise-distance
   block once (the GEMM + sqrt — or haversine trigonometry — that
   dominates generation) and every subsequent evaluation only applies
   the correlation function to the cached block. ExaGeoStatR makes the
   same locations-fixed observation to amortize generation cost.

2. **Generation is embarrassingly parallel and need not be a barrier.**
   The ExaGeoStat paper task-parallelizes generation on the same runtime
   that executes the factorization. :func:`insert_tile_generation_tasks`
   / :func:`insert_tlr_generation_tasks` insert one generate(+compress)
   task per tile into a :class:`~repro.runtime.Runtime` and hand back
   the data handles, so the Cholesky task graph submitted on the *same*
   handles depends on each tile's generation task individually — the
   factorization of early panels starts while late tiles are still being
   generated (sequential-task-flow, no global barrier).

Both pieces are value-preserving: cached-distance tiles are bit-identical
to directly generated ones (they share the
:func:`~repro.kernels.distance.pairwise_distance_block` code path), and
task-parallel generation produces identical matrices to the serial loop.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from ..config import get_config
from ..exceptions import ShapeError
from ..kernels.covariance import CovarianceModel
from ..kernels.distance import pairwise_distance, pairwise_distance_block
from ..runtime import AccessMode, Runtime
from ..runtime.handle import DataHandle
from ..utils.validation import check_locations
from .compression import LowRank, compress
from .tile_matrix import TileGrid, TileMatrix, materialize_tile
from .tlr_matrix import TLRMatrix

__all__ = [
    "TileDistanceCache",
    "CrossDistanceCache",
    "array_content_key",
    "insert_tile_generation_tasks",
    "insert_tlr_generation_tasks",
    "generate_tile_matrix",
    "generate_tlr_matrix",
    "generate_and_factor_tile_matrix",
    "generate_and_factor_tlr_matrix",
    "empty_tile_matrix",
    "empty_tlr_matrix",
]


def array_content_key(arr: np.ndarray) -> Tuple[Tuple[int, ...], bytes]:
    """Shape + content digest of an array, usable as a dict key.

    The keying scheme shared by :class:`CrossDistanceCache` and the
    serving micro-batcher's same-targets grouping — one definition so
    the two can never drift apart.
    """
    return (arr.shape, hashlib.sha1(arr.tobytes()).digest())


class TileDistanceCache:
    """Per-fit cache of tile distance blocks over fixed locations.

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations (fixed for the lifetime of the
        cache — one MLE fit).
    nb:
        Tile size; blocks are cached per ``(row_slice, col_slice)`` pair,
        so any tiling-compatible slices work (the grid is advisory).
    metric:
        Distance metric, as in :func:`~repro.kernels.distance.pairwise_distance`.

    Notes
    -----
    Memory: caching the lower triangle of an ``n x n`` problem costs
    ``~4 n^2`` bytes of float64 distance data (half the dense matrix).
    Disable via the ``cache_distances`` config knob when memory-bound.

    Thread safety: concurrent :meth:`block` calls are safe under the GIL.
    Distinct tiles never collide; duplicate keys at worst recompute the
    same values (a benign race — both arrays are identical and read-only
    by convention).
    """

    def __init__(self, locations: np.ndarray, nb: int, *, metric: str = "euclidean") -> None:
        self.locations = check_locations(locations, "locations")
        self.grid = TileGrid(self.locations.shape[0], nb)
        self.metric = metric
        self._blocks: Dict[Tuple[int, int, int, int], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def block(self, rows: slice, cols: slice) -> np.ndarray:
        """Distance block for ``locations[rows] x locations[cols]`` (cached).

        The returned array is shared across calls — callers must treat it
        as read-only (covariance application allocates fresh output).
        """
        key = (rows.start or 0, rows.stop, cols.start or 0, cols.stop)
        d = self._blocks.get(key)
        if d is None:
            self.misses += 1
            d = pairwise_distance_block(self.locations, rows, cols, metric=self.metric)
            self._blocks[key] = d
        else:
            self.hits += 1
        return d

    def generator(self, model: CovarianceModel) -> Callable[[slice, slice], np.ndarray]:
        """A tile generator closure applying ``model`` to cached distances.

        Drop-in replacement for ``lambda rs, cs: model.tile(locs, rs, cs)``
        with bit-identical output.
        """

        def generate(rows: slice, cols: slice) -> np.ndarray:
            return model.tile_from_distances(self.block(rows, cols), rows, cols)

        return generate

    def warm(self) -> "TileDistanceCache":
        """Precompute every lower-triangular block of the grid."""
        for i in range(self.grid.nt):
            for j in range(i + 1):
                self.block(self.grid.tile_slice(i), self.grid.tile_slice(j))
        return self

    def clear(self) -> None:
        """Drop all cached blocks (and hit/miss counters)."""
        self._blocks.clear()
        self.hits = 0
        self.misses = 0

    def export_blocks(self) -> Dict[Tuple[int, int, int, int], np.ndarray]:
        """Snapshot of the cached blocks, keyed ``(r0, r1, c0, c1)``.

        Used by :mod:`repro.serving.store` to persist the distance work
        of a fit alongside the fitted model; the arrays are shared (not
        copied) and must be treated as read-only.
        """
        return dict(self._blocks)

    def load_blocks(
        self, blocks: Mapping[Tuple[int, int, int, int], np.ndarray]
    ) -> int:
        """Rehydrate previously exported blocks into this cache.

        The serving counterpart of :meth:`export_blocks`: a cache built
        over the same locations and metric can be pre-seeded from a
        persisted bundle so a freshly loaded model pays no distance
        computation at all. Keys are ``(row_start, row_stop, col_start,
        col_stop)`` tuples; installing counts as neither hit nor miss.

        Returns the number of blocks installed.
        """
        count = 0
        for key, d in blocks.items():
            r0, r1, c0, c1 = (int(v) for v in key)
            arr = np.asarray(d, dtype=np.float64)
            expected = (r1 - r0, c1 - c0)
            if arr.shape != expected:
                raise ShapeError(
                    f"distance block {key} has shape {arr.shape}, expected {expected}"
                )
            self._blocks[(r0, r1, c0, c1)] = arr
            count += 1
        return count

    @property
    def n_blocks(self) -> int:
        """Number of cached distance blocks."""
        return len(self._blocks)

    @property
    def nbytes(self) -> int:
        """Bytes held by cached distance blocks."""
        return int(sum(b.nbytes for b in self._blocks.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TileDistanceCache(n={self.grid.n}, nb={self.grid.nb}, "
            f"blocks={self.n_blocks}, {self.nbytes / 1e6:.1f} MB)"
        )


class CrossDistanceCache:
    """Cache of cross-distance matrices ``d(targets, locations)``.

    The prediction operation (paper eq. (4)) builds the ``m x n``
    cross-covariance ``Sigma_12`` between the prediction targets and the
    fixed training locations on every call. Targets are routinely reused
    — repeated prediction over realizations of one fitted model, or a
    fixed evaluation grid — so this cache keys the (theta-independent)
    distance matrix by a content digest of the target coordinates, the
    cross analogue of :class:`TileDistanceCache`.

    Parameters
    ----------
    locations:
        ``(n, d)`` training locations (fixed for the cache's lifetime).
    metric:
        Distance metric, as in :func:`~repro.kernels.distance.pairwise_distance`.
    max_entries:
        Bound on retained target sets (least-recently-used eviction);
        each entry holds an ``m x n`` float64 matrix.
    """

    def __init__(
        self, locations: np.ndarray, *, metric: str = "euclidean", max_entries: int = 8
    ) -> None:
        self.locations = check_locations(locations, "locations")
        self.metric = metric
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple[Tuple[int, ...], bytes], np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(targets: np.ndarray) -> Tuple[Tuple[int, ...], bytes]:
        return array_content_key(targets)

    def matrix(self, targets: np.ndarray) -> np.ndarray:
        """Distance matrix ``targets x locations`` (cached by content).

        The returned array is shared across calls — callers must treat it
        as read-only (covariance application allocates fresh output).
        """
        t = check_locations(targets, "targets")
        key = self._key(t)
        d = self._entries.get(key)
        if d is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return d
        self.misses += 1
        d = pairwise_distance(t, self.locations, metric=self.metric)
        self._entries[key] = d
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return d

    def clear(self) -> None:
        """Drop all cached target sets (and hit/miss counters)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def n_entries(self) -> int:
        """Number of cached target sets."""
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes held by cached cross-distance matrices."""
        return int(sum(d.nbytes for d in self._entries.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CrossDistanceCache(n={self.locations.shape[0]}, "
            f"entries={self.n_entries}, {self.nbytes / 1e6:.1f} MB)"
        )


# --------------------------------------------------------------------------
# Fused (task-parallel) generation: tasks write pre-registered tile payloads
# so a factorization graph submitted on the same handles depends on each
# tile's generation task individually.
# --------------------------------------------------------------------------


def empty_tile_matrix(n: int, nb: int, *, symmetric_lower: bool = True) -> TileMatrix:
    """A :class:`TileMatrix` with uninitialized (empty) tile buffers.

    Generation tasks fill the buffers in place; until then the contents
    are undefined.
    """
    grid = TileGrid(n, nb)
    tm = TileMatrix(grid, symmetric_lower=symmetric_lower)
    for i in range(grid.nt):
        jmax = i + 1 if symmetric_lower else grid.nt
        for j in range(jmax):
            tm.set_tile(i, j, np.empty((grid.tile_size(i), grid.tile_size(j))))
    return tm


def empty_tlr_matrix(n: int, nb: int, acc: float) -> TLRMatrix:
    """A :class:`TLRMatrix` with empty diagonal buffers and rank-0 off-diagonals.

    Generation tasks fill diagonal tiles in place and *replace* the
    factors of the placeholder :class:`LowRank` blocks (rank changes are
    part of the LowRank contract, exactly as TLR GEMM recompression does).
    """
    grid = TileGrid(n, nb)
    tlr = TLRMatrix(grid, acc)
    for i in range(grid.nt):
        tlr.diag[i] = np.empty((grid.tile_size(i), grid.tile_size(i)))
        for j in range(i):
            m, k = grid.tile_size(i), grid.tile_size(j)
            tlr.low[(i, j)] = LowRank(np.zeros((m, 0)), np.zeros((0, k)))
    return tlr


def _fill_dense_codelet(
    out: np.ndarray,
    generate: Callable[[slice, slice], np.ndarray],
    rows: slice,
    cols: slice,
    i: int,
    j: int,
) -> None:
    """Codelet: generate tile ``(i, j)`` into the pre-registered buffer."""
    out[...] = materialize_tile(generate(rows, cols), out.shape, i, j)


def _fill_lowrank_codelet(
    lr: LowRank,
    generate: Callable[[slice, slice], np.ndarray],
    rows: slice,
    cols: slice,
    i: int,
    j: int,
    acc: float,
    method: str,
    rule: str,
    seed: Optional[int],
) -> None:
    """Codelet: generate + compress tile ``(i, j)`` into the LowRank payload.

    ``method``/``rule``/``seed`` are resolved by the submitting thread —
    workers must not consult the thread-local config.
    """
    dense = materialize_tile(generate(rows, cols), lr.shape, i, j)
    kwargs = {} if seed is None else {"seed": seed}
    c = compress(dense, acc, method=method, rule=rule, **kwargs)
    lr.set_factors(c.u, c.v)


def _fill_lowrank_batch_codelet(*packed: object) -> None:
    """Codelet: generate + compress several tiles in one runtime task.

    The leading payloads are the batch's :class:`LowRank` blocks (in the
    order of ``specs``); the single trailing argument carries everything
    else, so the variable payload count stays unambiguous. Per-tile
    arithmetic is identical to :func:`_fill_lowrank_codelet` — batching
    only amortizes per-task runtime overhead when tiles are small.
    """
    lrs = packed[:-1]
    generate, specs, acc, method, rule, seed = packed[-1]  # type: ignore[misc]
    kwargs = {} if seed is None else {"seed": seed}
    for lr, (rows, cols, i, j) in zip(lrs, specs):
        dense = materialize_tile(generate(rows, cols), lr.shape, i, j)
        c = compress(dense, acc, method=method, rule=rule, **kwargs)
        lr.set_factors(c.u, c.v)


def insert_tile_generation_tasks(
    runtime: Runtime,
    tiles: TileMatrix,
    generate: Callable[[slice, slice], np.ndarray],
) -> Dict[Tuple[int, int], DataHandle]:
    """Insert one generation task per stored tile of ``tiles``.

    Returns the ``(i, j) -> DataHandle`` map to pass to
    :func:`~repro.linalg.tile_cholesky.tile_cholesky` so factorization
    tasks depend on each tile's generation task (no barrier). The caller
    owns synchronization: the tiles are valid only after the runtime's
    ``wait_all`` (which the fused Cholesky performs).

    Generation tasks carry priorities above the factorization's panel
    tasks, decreasing with the tile's column — the order in which the
    right-looking Cholesky first consumes them.
    """
    grid = tiles.grid
    nt = grid.nt
    handles: Dict[Tuple[int, int], DataHandle] = {}
    for i, j, tile in tiles.iter_stored():
        handles[(i, j)] = runtime.register(tile, name=f"A[{i},{j}]")
    for i, j, _ in tiles.iter_stored():
        runtime.insert_task(
            _fill_dense_codelet,
            [(handles[(i, j)], AccessMode.READWRITE)],
            args=(generate, grid.tile_slice(i), grid.tile_slice(j), i, j),
            name=f"gen({i},{j})",
            priority=4 * (nt - j),
        )
    return handles


def insert_tlr_generation_tasks(
    runtime: Runtime,
    tlr: TLRMatrix,
    generate: Callable[[slice, slice], np.ndarray],
    *,
    method: str,
    rule: str,
    compression_batch: Optional[int] = None,
) -> Tuple[Dict[int, DataHandle], Dict[Tuple[int, int], DataHandle]]:
    """Insert generate(+compress) tasks for every tile of ``tlr``.

    Returns ``(diag_handles, low_handles)`` for
    :func:`~repro.linalg.tlr_cholesky.tlr_cholesky`, fusing generation
    and compression into the factorization task graph. ``method`` and
    ``rule`` must be pre-resolved (workers do not consult the
    thread-local config).

    ``compression_batch`` groups that many off-diagonal tiles' SVDs into
    one task (default: configured ``compression_batch``, resolved on the
    submitting thread). When ``nb`` is small relative to ``nt`` each
    per-tile compression is cheap and per-task overhead dominates;
    batching amortizes it. Tiles are grouped in column-major order — the
    order the right-looking Cholesky first consumes them — and values
    are identical for any batch size.
    """
    grid = tlr.grid
    nt = grid.nt
    batch = (
        get_config().compression_batch
        if compression_batch is None
        else max(1, int(compression_batch))
    )
    # The adaptive randomized compressor seeds itself from the config when
    # unseeded; resolve that here so worker threads never read their own
    # (default-initialized) thread-local config.
    seed = get_config().rng_seed if method == "rsvd" else None
    dh: Dict[int, DataHandle] = {
        k: runtime.register(tlr.diag[k], name=f"D[{k}]") for k in range(nt)
    }
    lh: Dict[Tuple[int, int], DataHandle] = {
        key: runtime.register(lr, name=f"L[{key[0]},{key[1]}]") for key, lr in tlr.low.items()
    }
    for k in range(nt):
        runtime.insert_task(
            _fill_dense_codelet,
            [(dh[k], AccessMode.READWRITE)],
            args=(generate, grid.tile_slice(k), grid.tile_slice(k), k, k),
            name=f"gen({k},{k})",
            priority=4 * (nt - k),
        )
    if batch <= 1:
        for (i, j) in sorted(tlr.low):
            runtime.insert_task(
                _fill_lowrank_codelet,
                [(lh[(i, j)], AccessMode.READWRITE)],
                args=(
                    generate,
                    grid.tile_slice(i),
                    grid.tile_slice(j),
                    i,
                    j,
                    tlr.acc,
                    method,
                    rule,
                    seed,
                ),
                name=f"gen({i},{j})",
                priority=4 * (nt - j),
            )
        return dh, lh
    keys = sorted(tlr.low, key=lambda ij: (ij[1], ij[0]))  # column-major
    for start in range(0, len(keys), batch):
        group = keys[start : start + batch]
        specs = [
            (grid.tile_slice(i), grid.tile_slice(j), i, j) for (i, j) in group
        ]
        runtime.insert_task(
            _fill_lowrank_batch_codelet,
            [(lh[key], AccessMode.READWRITE) for key in group],
            args=((generate, specs, tlr.acc, method, rule, seed),),
            name=f"genb({group[0][0]},{group[0][1]})x{len(group)}",
            priority=4 * (nt - group[0][1]),
        )
    return dh, lh


def generate_and_factor_tile_matrix(
    n: int,
    nb: int,
    generate: Callable[[slice, slice], np.ndarray],
    *,
    runtime: Optional[Runtime] = None,
    fused: bool = False,
    times: Optional["StageTimes"] = None,
) -> TileMatrix:
    """Generate a symmetric tile matrix and Cholesky-factor it in place.

    The generation+factorization protocol shared by the MLE hot loop
    (:class:`~repro.mle.loglik.LikelihoodEvaluator`) and the prediction
    path (:class:`~repro.mle.prediction_engine.PredictionEngine`):
    with ``fused`` (and a runtime), generation tasks are inserted via
    :func:`insert_tile_generation_tasks` and the factorization's task
    graph depends on them per tile; otherwise generation is a serial
    loop and the factorization runs serially or on the runtime.

    ``times`` optionally accumulates the ``generation`` /
    ``factorization`` stage split (in fused mode the ``generation``
    stage is task-submission time only — the generation work itself
    overlaps the factorization).
    """
    from ..utils.timer import StageTimes  # local: utils must not import linalg
    from .tile_cholesky import tile_cholesky  # local: avoid import cycle

    times = StageTimes() if times is None else times
    if fused and runtime is not None:
        with times.stage("generation"):
            tiles = empty_tile_matrix(n, nb, symmetric_lower=True)
            handles = insert_tile_generation_tasks(runtime, tiles, generate)
        with times.stage("factorization"):
            tile_cholesky(tiles, runtime=runtime, handles=handles)
    else:
        with times.stage("generation"):
            tiles = TileMatrix.from_generator(n, nb, generate, symmetric_lower=True)
        with times.stage("factorization"):
            tile_cholesky(tiles, runtime=runtime)
    return tiles


def generate_and_factor_tlr_matrix(
    n: int,
    nb: int,
    generate: Callable[[slice, slice], np.ndarray],
    acc: float,
    *,
    method: str,
    rule: str,
    runtime: Optional[Runtime] = None,
    fused: bool = False,
    times: Optional["StageTimes"] = None,
    compression_batch: Optional[int] = None,
) -> TLRMatrix:
    """Generate+compress a TLR matrix and Cholesky-factor it in place.

    The TLR analogue of :func:`generate_and_factor_tile_matrix` (fused
    mode additionally folds per-tile compression into the task graph,
    ``compression_batch`` tiles per task). ``method``/``rule`` must be
    pre-resolved — workers do not consult the thread-local config.
    """
    from ..utils.timer import StageTimes  # local: utils must not import linalg
    from .tlr_cholesky import tlr_cholesky  # local: avoid import cycle

    times = StageTimes() if times is None else times
    if fused and runtime is not None:
        with times.stage("generation"):
            tlr = empty_tlr_matrix(n, nb, acc)
            handles = insert_tlr_generation_tasks(
                runtime,
                tlr,
                generate,
                method=method,
                rule=rule,
                compression_batch=compression_batch,
            )
        with times.stage("factorization"):
            tlr_cholesky(tlr, runtime=runtime, handles=handles)
    else:
        with times.stage("generation"):
            tlr = TLRMatrix.from_generator(
                n, nb, generate, acc=acc, method=method, rule=rule
            )
        with times.stage("factorization"):
            tlr_cholesky(tlr, runtime=runtime)
    return tlr


def generate_tile_matrix(
    n: int,
    nb: int,
    generate: Callable[[slice, slice], np.ndarray],
    runtime: Runtime,
    *,
    symmetric_lower: bool = False,
) -> TileMatrix:
    """Task-parallel standalone generation of a dense :class:`TileMatrix`.

    One generation task per tile, then a barrier (``wait_all``); used by
    ``TileMatrix.from_generator(runtime=...)``. For barrier-free
    generation fused with a factorization, use
    :func:`insert_tile_generation_tasks` directly.
    """
    tm = empty_tile_matrix(n, nb, symmetric_lower=symmetric_lower)
    insert_tile_generation_tasks(runtime, tm, generate)
    try:
        runtime.wait_all()
    finally:
        runtime.tracker.reset()
    return tm


def generate_tlr_matrix(
    n: int,
    nb: int,
    generate: Callable[[slice, slice], np.ndarray],
    acc: float,
    runtime: Runtime,
    *,
    method: str,
    rule: str,
    compression_batch: Optional[int] = None,
) -> TLRMatrix:
    """Task-parallel standalone generation of a :class:`TLRMatrix`.

    One generate+compress task per ``compression_batch`` tiles, then a
    barrier; used by ``TLRMatrix.from_generator(runtime=...)``.
    ``method``/``rule`` must be pre-resolved.
    """
    tlr = empty_tlr_matrix(n, nb, acc)
    insert_tlr_generation_tasks(
        runtime, tlr, generate, method=method, rule=rule,
        compression_batch=compression_batch,
    )
    try:
        runtime.wait_all()
    finally:
        runtime.tracker.reset()
    return tlr
