"""Tests for the generation pipeline: distance cache + parallel/fused generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import use_config
from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import (
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
)
from repro.linalg.generation import (
    TileDistanceCache,
    empty_tile_matrix,
    empty_tlr_matrix,
    insert_tile_generation_tasks,
    insert_tlr_generation_tasks,
)
from repro.linalg.tile_cholesky import tile_cholesky
from repro.linalg.tile_matrix import TileGrid, TileMatrix
from repro.linalg.tlr_cholesky import tlr_cholesky
from repro.linalg.tlr_matrix import TLRMatrix
from repro.mle.loglik import LikelihoodEvaluator
from repro.runtime import Runtime

N, NB = 196, 49


@pytest.fixture(scope="module")
def locs():
    pts = generate_irregular_grid(N, seed=11)
    pts, _, _ = sort_locations(pts)
    return pts


@pytest.fixture(scope="module")
def gcd_locs(locs):
    # Scale the unit square into a (lon, lat) window for the GCD metric.
    return np.column_stack([locs[:, 0] * 10.0 - 100.0, locs[:, 1] * 10.0 + 30.0])


def _models(locs, gcd_locs):
    return [
        (locs, MaternCovariance(1.3, 0.12, 0.8)),
        (locs, ExponentialCovariance(0.9, 0.2, nugget=0.01)),
        (locs, GaussianCovariance(1.0, 0.15)),
        (gcd_locs, MaternCovariance(1.0, 3.0, 0.5, metric="gcd")),
    ]


class TestTileDistanceCache:
    def test_bit_identical_tiles_across_models_and_metrics(self, locs, gcd_locs):
        for x, model in _models(locs, gcd_locs):
            cache = TileDistanceCache(x, NB, metric=model.metric)
            gen = cache.generator(model)
            grid = cache.grid
            for i in range(grid.nt):
                for j in range(i + 1):
                    rs, cs = grid.tile_slice(i), grid.tile_slice(j)
                    direct = model.tile(x, rs, cs)
                    np.testing.assert_array_equal(gen(rs, cs), direct)

    def test_second_pass_hits_cache(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        cache = TileDistanceCache(locs, NB)
        gen = cache.generator(model)
        grid = cache.grid
        for i in range(grid.nt):
            for j in range(i + 1):
                gen(grid.tile_slice(i), grid.tile_slice(j))
        n_blocks = cache.n_blocks
        assert cache.misses == n_blocks and cache.hits == 0
        # A new theta reuses every block.
        gen2 = cache.generator(model.with_theta([2.0, 0.3, 1.0]))
        for i in range(grid.nt):
            for j in range(i + 1):
                gen2(grid.tile_slice(i), grid.tile_slice(j))
        assert cache.misses == n_blocks
        assert cache.hits == n_blocks
        assert cache.nbytes > 0

    def test_warm_and_clear(self, locs):
        cache = TileDistanceCache(locs, NB).warm()
        expected = cache.grid.nt * (cache.grid.nt + 1) // 2
        assert cache.n_blocks == expected
        cache.clear()
        assert cache.n_blocks == 0 and cache.nbytes == 0

    def test_full_matrix_from_distances_matches_matrix(self, locs):
        from repro.kernels.distance import pairwise_distance

        model = MaternCovariance(1.1, 0.2, 1.5, nugget=1e-3)
        d = pairwise_distance(locs)
        np.testing.assert_array_equal(model.matrix_from_distances(d), model.matrix(locs))


class TestParallelGeneration:
    def test_tile_matrix_serial_vs_threads_identical(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        serial = TileMatrix.from_generator(N, NB, gen, symmetric_lower=True)
        with Runtime(num_workers=4) as rt:
            parallel = TileMatrix.from_generator(
                N, NB, gen, symmetric_lower=True, runtime=rt
            )
        for i, j, tile in serial.iter_stored():
            np.testing.assert_array_equal(parallel.tile(i, j), tile)

    @pytest.mark.parametrize("engine", ["threads", "serial"])
    def test_tlr_serial_vs_runtime_identical(self, locs, engine):
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        serial = TLRMatrix.from_generator(N, NB, gen, acc=1e-8, method="svd")
        with Runtime(num_workers=4, engine=engine) as rt:
            parallel = TLRMatrix.from_generator(
                N, NB, gen, acc=1e-8, method="svd", runtime=rt
            )
        for k in range(serial.nt):
            np.testing.assert_array_equal(parallel.diag[k], serial.diag[k])
        assert set(parallel.low) == set(serial.low)
        for key, lr in serial.low.items():
            np.testing.assert_array_equal(parallel.low[key].u, lr.u)
            np.testing.assert_array_equal(parallel.low[key].v, lr.v)

    def test_tlr_rsvd_respects_configured_seed(self, locs):
        # rsvd seeds itself from the config; workers have their own
        # thread-local config, so the seed must be resolved at submission.
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        with use_config(rng_seed=777):
            serial = TLRMatrix.from_generator(N, NB, gen, acc=1e-6, method="rsvd")
            with Runtime(num_workers=4) as rt:
                parallel = TLRMatrix.from_generator(
                    N, NB, gen, acc=1e-6, method="rsvd", runtime=rt
                )
        for key, lr in serial.low.items():
            np.testing.assert_array_equal(parallel.low[key].u, lr.u)
            np.testing.assert_array_equal(parallel.low[key].v, lr.v)


class TestFusedGeneration:
    def test_fused_tile_cholesky_matches_serial(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        reference = TileMatrix.from_generator(N, NB, gen, symmetric_lower=True)
        tile_cholesky(reference)
        with Runtime(num_workers=4) as rt:
            fused = empty_tile_matrix(N, NB, symmetric_lower=True)
            handles = insert_tile_generation_tasks(rt, fused, gen)
            tile_cholesky(fused, runtime=rt, handles=handles)
        np.testing.assert_allclose(fused.to_dense(), reference.to_dense(), atol=1e-12)

    def test_fused_tlr_cholesky_matches_serial(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        reference = TLRMatrix.from_generator(N, NB, gen, acc=1e-9, method="svd")
        tlr_cholesky(reference)
        with Runtime(num_workers=4) as rt:
            fused = empty_tlr_matrix(N, NB, 1e-9)
            handles = insert_tlr_generation_tasks(
                rt, fused, gen, method="svd", rule="relative"
            )
            tlr_cholesky(fused, runtime=rt, handles=handles)
        np.testing.assert_allclose(fused.to_dense(), reference.to_dense(), atol=1e-10)

    def test_handles_require_runtime(self):
        from repro.exceptions import ShapeError

        tm = empty_tile_matrix(8, 4)
        with pytest.raises(ShapeError):
            tile_cholesky(tm, handles={})
        tlr = empty_tlr_matrix(8, 4, 1e-8)
        with pytest.raises(ShapeError):
            tlr_cholesky(tlr, handles=({}, {}))


class TestEvaluatorPipeline:
    @pytest.fixture(scope="class")
    def problem(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, model, seed=5)
        return locs, z, model

    @pytest.mark.parametrize("variant", ["full-block", "full-tile", "tlr"])
    def test_cached_loglik_identical_to_seed_path(self, problem, variant):
        locs, z, model = problem
        seed_ev = LikelihoodEvaluator(
            locs, z, model, variant=variant, acc=1e-9, tile_size=NB,
            cache_distances=False, parallel_generation=False,
        )
        cached = LikelihoodEvaluator(
            locs, z, model, variant=variant, acc=1e-9, tile_size=NB,
            cache_distances=True,
        )
        for theta_scale in (1.0, 1.3, 0.8):
            theta = model.theta * theta_scale
            assert cached(theta) == seed_ev(theta)

    @pytest.mark.parametrize("variant", ["full-tile", "tlr"])
    def test_fused_loglik_identical_to_seed_path(self, problem, variant):
        locs, z, model = problem
        seed_ev = LikelihoodEvaluator(
            locs, z, model, variant=variant, acc=1e-9, tile_size=NB,
            cache_distances=False, parallel_generation=False,
        )
        with Runtime(num_workers=4) as rt:
            fused = LikelihoodEvaluator(
                locs, z, model, variant=variant, acc=1e-9, tile_size=NB,
                runtime=rt, cache_distances=True, parallel_generation=True,
            )
            for theta_scale in (1.0, 1.2):
                theta = model.theta * theta_scale
                assert fused(theta) == seed_ev(theta)
            assert set(fused.times.stages) == {"generation", "factorization", "solve"}

    def test_config_knobs_respected(self, problem):
        locs, z, model = problem
        with use_config(cache_distances=False, parallel_generation=False):
            ev = LikelihoodEvaluator(locs, z, model, variant="tlr", tile_size=NB)
        assert ev.distance_cache is None and not ev.parallel_generation
        with use_config(cache_distances=True, parallel_generation=True):
            ev = LikelihoodEvaluator(locs, z, model, variant="tlr", tile_size=NB)
        assert ev.distance_cache is not None and ev.parallel_generation

    def test_penalty_path_survives_fusion(self):
        # Duplicate locations -> exactly singular covariance for any theta.
        from repro.mle.loglik import PENALTY_LOGLIK

        locs = np.array([[0.1, 0.1], [0.1, 0.1], [0.5, 0.5], [0.9, 0.9], [0.3, 0.7], [0.7, 0.3]])
        z = np.array([0.3, 0.3, -0.1, 0.2, 0.05, -0.2])
        model = MaternCovariance(1.0, 0.1, 0.5)
        with Runtime(num_workers=2) as rt:
            ev = LikelihoodEvaluator(
                locs, z, model, variant="full-tile", tile_size=3, runtime=rt
            )
            assert ev(model.theta) == PENALTY_LOGLIK
            assert ev.n_failures == 1


class TestCacheRehydration:
    """export_blocks/load_blocks: the serving-store persistence hooks."""

    def test_round_trip_blocks_identical_and_hit_only(self, locs):
        src = TileDistanceCache(locs, NB).warm()
        blocks = src.export_blocks()
        assert len(blocks) == src.n_blocks

        dst = TileDistanceCache(locs, NB)
        installed = dst.load_blocks(blocks)
        assert installed == src.n_blocks
        assert dst.misses == 0 and dst.hits == 0  # rehydration is neither
        grid = dst.grid
        for i in range(grid.nt):
            for j in range(i + 1):
                rs, cs = grid.tile_slice(i), grid.tile_slice(j)
                np.testing.assert_array_equal(dst.block(rs, cs), src.block(rs, cs))
        assert dst.misses == 0  # every block came from the rehydrated set

    def test_load_blocks_rejects_wrong_shape(self, locs):
        from repro.exceptions import ShapeError

        cache = TileDistanceCache(locs, NB)
        with pytest.raises(ShapeError):
            cache.load_blocks({(0, NB, 0, NB): np.zeros((NB, NB - 1))})


class TestBatchedCompression:
    """compression_batch: several tiles' SVDs per runtime task, same values."""

    @pytest.mark.parametrize("batch", [2, 4, 7, 64])
    def test_batched_generation_bit_identical(self, locs, batch):
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        serial = TLRMatrix.from_generator(N, NB, gen, acc=1e-8, method="svd")
        with Runtime(num_workers=4, trace=True) as rt:
            batched = empty_tlr_matrix(N, NB, 1e-8)
            insert_tlr_generation_tasks(
                rt, batched, gen, method="svd", rule="relative",
                compression_batch=batch,
            )
            rt.wait_all()
            names = [e.name for e in rt.trace.events]
        for k in range(serial.nt):
            np.testing.assert_array_equal(batched.diag[k], serial.diag[k])
        assert set(batched.low) == set(serial.low)
        for key, lr in serial.low.items():
            np.testing.assert_array_equal(batched.low[key].u, lr.u)
            np.testing.assert_array_equal(batched.low[key].v, lr.v)
        # Task-count amortization: ceil(n_offdiag / batch) batch tasks.
        n_batch_tasks = sum(1 for name in names if name.startswith("genb"))
        assert n_batch_tasks == -(-len(serial.low) // batch)

    def test_fused_cholesky_with_batching_matches_serial(self, locs):
        from repro.linalg.generation import generate_and_factor_tlr_matrix

        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        reference = TLRMatrix.from_generator(N, NB, gen, acc=1e-9, method="svd")
        tlr_cholesky(reference)
        with Runtime(num_workers=4) as rt:
            fused = generate_and_factor_tlr_matrix(
                N, NB, gen, 1e-9, method="svd", rule="relative",
                runtime=rt, fused=True, compression_batch=3,
            )
        np.testing.assert_allclose(fused.to_dense(), reference.to_dense(), atol=1e-10)

    def test_config_knob_reaches_task_insertion(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        gen = lambda rs, cs: model.tile(locs, rs, cs)  # noqa: E731
        with use_config(compression_batch=5):
            with Runtime(num_workers=2, trace=True) as rt:
                tlr = empty_tlr_matrix(N, NB, 1e-8)
                insert_tlr_generation_tasks(rt, tlr, gen, method="svd", rule="relative")
                rt.wait_all()
                names = [e.name for e in rt.trace.events]
        n_off = len(tlr.low)
        assert sum(1 for n in names if n.startswith("genb")) == -(-n_off // 5)

    def test_evaluator_loglik_identical_with_batching(self, locs):
        model = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, model, seed=5)
        seed_ev = LikelihoodEvaluator(
            locs, z, model, variant="tlr", acc=1e-9, tile_size=NB,
            cache_distances=False, parallel_generation=False,
        )
        with Runtime(num_workers=4) as rt:
            batched_ev = LikelihoodEvaluator(
                locs, z, model, variant="tlr", acc=1e-9, tile_size=NB,
                runtime=rt, cache_distances=True, parallel_generation=True,
                compression_batch=4,
            )
            for theta_scale in (1.0, 1.2):
                theta = model.theta * theta_scale
                assert batched_ev(theta) == seed_ev(theta)
