"""MetricsRegistry: counters, gauges, histograms, merge, façade."""

from __future__ import annotations

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.spans import configure


def test_counter_monotonic_and_typed():
    reg = MetricsRegistry()
    c = reg.counter("requests", help="total requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(TelemetryError):
        c.inc(-1)
    # get-or-create returns the same object
    assert reg.counter("requests") is c


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("inflight")
    g.set(3.0)
    g.inc()
    g.dec(2.0)
    assert g.value == 2.0


def test_histogram_buckets_and_overflow():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == [0.1, 1.0]
    assert snap["counts"] == [1, 2, 1]  # last slot = overflow (+Inf)
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(6.05)


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TelemetryError):
        reg.gauge("x")


def test_snapshot_and_merge_sum_everything():
    a, b = MetricsRegistry(), MetricsRegistry()
    for reg, n in ((a, 1), (b, 2)):
        reg.counter("req").inc(n)
        reg.gauge("load").set(float(n))
        reg.histogram("lat", buckets=(1.0,)).observe(0.5 * n)
    merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
    assert merged["counters"]["req"] == 3
    assert merged["gauges"]["load"] == 3.0
    h = merged["histograms"]["lat"]
    assert h["count"] == 2
    assert h["counts"][0] == 2  # both observations under the 1.0 bucket
    assert h["sum"] == pytest.approx(1.5)


def test_merge_mismatched_buckets_folds_to_counts():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    b.histogram("lat", buckets=(0.5,)).observe(0.05)
    merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
    h = merged["histograms"]["lat"]
    assert h["count"] == 2  # totals survive even when buckets can't align
    assert h["sum"] == pytest.approx(0.1)


def test_default_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


def test_service_metrics_facade_mirrors_when_armed():
    from repro.serving.metrics import ServiceMetrics

    configure(enabled=True)
    m = ServiceMetrics()
    m.inc("requests", 3)
    m.observe_latency(0.02)
    reg = get_registry()
    snap = reg.snapshot()
    assert snap["counters"]["service_requests"] == 3
    assert snap["histograms"]["service_latency_seconds"]["count"] == 1
    # the plain snapshot() surface is unchanged
    assert m.snapshot()["counters"]["requests"] == 3


def test_service_metrics_facade_silent_when_disabled():
    from repro.serving.metrics import ServiceMetrics

    m = ServiceMetrics()
    m.inc("requests")
    m.observe_latency(0.01)
    snap = get_registry().snapshot()
    assert snap["counters"] == {}
    assert snap["histograms"] == {}
