"""Tests for the Monte-Carlo harness (Figures 6-7 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mle.montecarlo import (
    MonteCarloResult,
    run_monte_carlo,
    summarize_boxplot,
    technique_label,
)


class TestTechniqueLabels:
    def test_labels(self):
        assert technique_label("tlr", 1e-9) == "TLR-acc(1e-09)"
        assert technique_label("full-tile", None) == "Full-tile"
        assert technique_label("full-block", None) == "Full-block"


class TestSummarizeBoxplot:
    def test_five_number_summary(self):
        stats = summarize_boxplot(np.arange(1, 101, dtype=float))
        assert stats["min"] == 1.0 and stats["max"] == 100.0
        assert stats["median"] == pytest.approx(50.5)
        assert stats["q1"] == pytest.approx(25.75)
        assert stats["q3"] == pytest.approx(75.25)
        assert stats["mean"] == pytest.approx(50.5)


class TestRunMonteCarlo:
    @pytest.fixture(scope="class")
    def tiny_result(self) -> MonteCarloResult:
        return run_monte_carlo(
            (1.0, 0.1, 0.5),
            n=100,
            n_replicates=2,
            n_predict=10,
            techniques=(("full-block", None),),
            maxiter=30,
            seed=5,
        )

    def test_result_shapes(self, tiny_result):
        est = tiny_result.estimates["Full-block"]
        assert est.shape == (2, 3)
        assert tiny_result.mse["Full-block"].shape == (2,)
        assert tiny_result.logliks["Full-block"].shape == (2,)

    def test_estimates_positive(self, tiny_result):
        assert np.all(tiny_result.estimates["Full-block"] > 0)

    def test_mse_positive_and_finite(self, tiny_result):
        mse = tiny_result.mse["Full-block"]
        assert np.all(np.isfinite(mse)) and np.all(mse >= 0)

    def test_reproducible_with_seed(self):
        kwargs = dict(
            n=64,
            n_replicates=2,
            n_predict=5,
            techniques=(("full-block", None),),
            maxiter=15,
            seed=9,
        )
        a = run_monte_carlo((1.0, 0.1, 0.5), **kwargs)
        b = run_monte_carlo((1.0, 0.1, 0.5), **kwargs)
        np.testing.assert_array_equal(
            a.estimates["Full-block"], b.estimates["Full-block"]
        )
        np.testing.assert_array_equal(a.mse["Full-block"], b.mse["Full-block"])

    def test_multiple_techniques_share_data(self):
        res = run_monte_carlo(
            (1.0, 0.1, 0.5),
            n=81,
            n_replicates=1,
            n_predict=5,
            techniques=(("full-block", None), ("tlr", 1e-10)),
            tile_size=27,
            maxiter=25,
            seed=3,
        )
        # Same data + near-exact TLR: estimates should be very close.
        fb = res.estimates["Full-block"][0]
        tl = res.estimates["TLR-acc(1e-10)"][0]
        np.testing.assert_allclose(fb, tl, rtol=0.25)
