"""Telemetry tests arm/disarm process-global state; keep it hermetic."""

from __future__ import annotations

import pytest

from repro.telemetry import reset_registry, reset_telemetry


@pytest.fixture(autouse=True)
def _pristine_telemetry():
    """Every test starts and ends with telemetry unresolved and the
    metrics registry empty, so armed tests cannot leak into the rest of
    the suite (the switch is process-global by design)."""
    reset_telemetry()
    reset_registry()
    yield
    reset_telemetry()
    reset_registry()
