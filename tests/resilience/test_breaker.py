"""Circuit breakers and admission control: state machine + shedding."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError, LoadShedError
from repro.resilience import AdmissionGate, BreakerPool, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


def _breaker(clock, threshold=3, recovery=5.0, **kw):
    return CircuitBreaker(
        failure_threshold=threshold, recovery_time=recovery, clock=clock, **kw
    )


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------


def test_closed_breaker_admits_everything(clock):
    brk = _breaker(clock)
    assert brk.state == "closed"
    assert all(brk.allow() for _ in range(10))
    assert brk.retry_after == 0.0


def test_trips_open_at_the_failure_threshold(clock):
    brk = _breaker(clock, threshold=3)
    brk.record_failure()
    brk.record_failure()
    assert brk.state == "closed"  # 2 of 3
    brk.record_failure()
    assert brk.state == "open"
    assert not brk.allow()
    assert brk.n_opens == 1


def test_success_resets_the_consecutive_failure_count(clock):
    brk = _breaker(clock, threshold=3)
    for _ in range(5):
        brk.record_failure()
        brk.record_failure()
        brk.record_success()  # failures are consecutive, not cumulative
    assert brk.state == "closed"
    assert brk.n_opens == 0


def test_retry_after_counts_down_the_recovery_window(clock):
    brk = _breaker(clock, threshold=1, recovery=5.0)
    brk.record_failure()
    assert brk.retry_after == 5.0
    clock.advance(2.0)
    assert brk.retry_after == 3.0


def test_open_becomes_half_open_after_recovery_time(clock):
    brk = _breaker(clock, threshold=1, recovery=5.0)
    brk.record_failure()
    clock.advance(4.9)
    assert not brk.allow()  # still open
    clock.advance(0.2)
    assert brk.state == "half-open"
    assert brk.allow()  # the probe


def test_half_open_admits_only_the_probe_quota(clock):
    brk = _breaker(clock, threshold=1, recovery=1.0, half_open_max=2)
    brk.record_failure()
    clock.advance(1.0)
    assert brk.allow()
    assert brk.allow()
    assert not brk.allow()  # quota of 2 spent, outcome still pending


def test_probe_success_recloses(clock):
    brk = _breaker(clock, threshold=1, recovery=1.0)
    brk.record_failure()
    clock.advance(1.0)
    assert brk.allow()
    brk.record_success()
    assert brk.state == "closed"
    assert all(brk.allow() for _ in range(5))


def test_probe_failure_reopens_immediately(clock):
    brk = _breaker(clock, threshold=3, recovery=1.0)
    for _ in range(3):
        brk.record_failure()
    clock.advance(1.0)
    assert brk.allow()
    brk.record_failure()  # one probe failure suffices — not threshold-many
    assert brk.state == "open"
    assert brk.n_opens == 2
    assert not brk.allow()


def test_snapshot_reports_state_and_cumulative_counters(clock):
    brk = _breaker(clock, threshold=1, recovery=1.0)
    brk.record_failure()
    clock.advance(1.0)
    brk.allow()
    brk.record_success()
    assert brk.snapshot() == {
        "state": "closed",
        "n_opens": 1,
        "n_failures": 1,
        "n_successes": 1,
    }


def test_defaults_come_from_config(clock):
    from repro.config import get_config

    brk = CircuitBreaker(clock=clock)
    assert brk.failure_threshold == get_config().breaker_threshold
    assert brk.recovery_time == get_config().breaker_recovery


def test_invalid_settings_rejected(clock):
    with pytest.raises(ConfigurationError):
        CircuitBreaker(failure_threshold=0, clock=clock)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(recovery_time=0.0, clock=clock)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(half_open_max=0, clock=clock)


# ---------------------------------------------------------------------------
# BreakerPool
# ---------------------------------------------------------------------------


def test_pool_creates_one_breaker_per_key_lazily(clock):
    pool = BreakerPool(failure_threshold=1, recovery_time=9.0, clock=clock)
    assert pool.snapshot() == {}
    a = pool.get("model-a")
    assert pool.get("model-a") is a  # stable identity per key
    assert a.failure_threshold == 1 and a.recovery_time == 9.0
    a.record_failure()
    snap = pool.snapshot()
    assert snap["model-a"]["state"] == "open"
    assert pool.get("model-b").state == "closed"  # keys are independent


# ---------------------------------------------------------------------------
# AdmissionGate
# ---------------------------------------------------------------------------


def test_gate_sheds_beyond_the_inflight_cap():
    gate = AdmissionGate(max_inflight=2, retry_after=0.5)
    first, second = gate.admit(), gate.admit()
    with pytest.raises(LoadShedError) as excinfo:
        gate.admit()
    assert excinfo.value.retry_after == 0.5
    first.__exit__(None, None, None)
    with gate.admit():  # a released slot readmits
        pass
    second.__exit__(None, None, None)
    assert gate.snapshot() == {
        "inflight": 0,
        "max_inflight": 2,
        "n_shed": 1,
        "n_admitted": 3,
    }


def test_gate_releases_on_exception():
    gate = AdmissionGate(max_inflight=1)
    with pytest.raises(RuntimeError):
        with gate.admit():
            raise RuntimeError("handler blew up")
    assert gate.inflight == 0
    with gate.admit():  # the slot came back
        pass


def test_gate_is_thread_safe_under_contention():
    gate = AdmissionGate(max_inflight=4)
    peak, lock = [0], threading.Lock()
    barrier = threading.Barrier(16)

    def worker():
        barrier.wait()
        for _ in range(200):
            if gate.try_acquire():
                with lock:
                    peak[0] = max(peak[0], gate.inflight)
                gate.release()

    threads = [threading.Thread(target=worker) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert gate.inflight == 0
    assert 1 <= peak[0] <= 4  # the cap held under contention
    snap = gate.snapshot()
    assert snap["n_admitted"] + snap["n_shed"] == 16 * 200


def test_gate_invalid_settings_rejected():
    with pytest.raises(ConfigurationError):
        AdmissionGate(max_inflight=0)
    with pytest.raises(ConfigurationError):
        AdmissionGate(retry_after=-1.0)
