"""Matrix-vector / matrix-multivector products with a symmetric TLR matrix.

Used by iterative diagnostics and accuracy tests: ``y = Sigma_TLR @ x``
evaluates the compressed operator without densifying it, at
``O(n nb + n k)`` cost per column.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .tlr_matrix import TLRMatrix

__all__ = ["tlr_symmetric_matvec"]


def tlr_symmetric_matvec(a: TLRMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``a @ x`` where ``a`` is a symmetric TLR matrix.

    Parameters
    ----------
    a:
        TLR matrix (pre-factorization layout: dense diagonal + low-rank
        strictly-lower tiles mirrored implicitly).
    x:
        ``(n,)`` or ``(n, m)`` input.

    Returns
    -------
    Product with the same shape as ``x``.
    """
    g = a.grid
    if x.shape[0] != g.n:
        raise ShapeError(f"input leading dimension {x.shape[0]} != {g.n}")
    xb = g.partition(np.asarray(x, dtype=np.float64))
    yb = [np.zeros_like(b) for b in xb]
    for i in range(g.nt):
        yb[i] += a.diag[i] @ xb[i]
    for (i, j), lr in a.low.items():
        if lr.rank == 0:
            continue
        yb[i] += lr.u @ (lr.v @ xb[j])  # lower block (i, j)
        yb[j] += lr.v.T @ (lr.u.T @ xb[i])  # mirrored upper block (j, i)
    return g.unpartition(yb)
