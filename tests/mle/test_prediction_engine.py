"""Parity harness for the PredictionEngine across all substrates.

Every configuration of the engine — (full-block | full-tile | tlr) x
(distance cache on/off) x (task-parallel generation on/off) — must
reproduce the *seed path*: the pre-engine implementation that
regenerated every covariance block serially and from scratch on each
call. The seed path is replicated verbatim in :func:`seed_predict` /
:func:`seed_conditional_variance` below so the engine refactor is
checked against an independent reference, not against itself.

Dense substrates must be bit-identical; TLR uses the deterministic SVD
compressor at a tight accuracy, so it is also held to near-bitwise
agreement with its own seed path (and to ``acc``-level agreement with
the dense answer). The suite also covers the engine-only behaviors:
multi-RHS batching vs. looped single-RHS solves, factorization reuse
across predict calls, and factor adoption after a fit.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.exceptions import ConfigurationError, NotPositiveDefiniteError
from repro.kernels import MaternCovariance
from repro.kernels.distance import pairwise_distance
from repro.linalg.blocklapack import block_cholesky, block_cholesky_solve
from repro.linalg.tile_cholesky import tile_cholesky
from repro.linalg.tile_matrix import TileMatrix
from repro.linalg.tile_solve import tile_cholesky_solve
from repro.linalg.tlr_cholesky import tlr_cholesky
from repro.linalg.tlr_matrix import TLRMatrix
from repro.linalg.tlr_solve import tlr_cholesky_solve
from repro.mle import (
    FitResult,
    MLEstimator,
    PredictionEngine,
    conditional_variance,
    predict,
)
from repro.runtime import Runtime

N, M, NB, ACC = 192, 20, 48, 1e-10
VARIANTS = ("full-block", "full-tile", "tlr")


# --------------------------------------------------------------------------
# Seed-path references: the original prediction.py code, kept verbatim.
# --------------------------------------------------------------------------


def seed_predict(locations, z, new_locations, model, variant, acc=ACC, tile_size=NB):
    """The pre-engine ``predict``: serial regenerate-everything kriging."""
    n = locations.shape[0]
    if variant == "full-block":
        sigma = model.matrix(locations)
        factor = block_cholesky(sigma, overwrite=True)
        alpha = np.asarray(block_cholesky_solve(factor, z))
    elif variant == "full-tile":
        tiles = TileMatrix.from_generator(
            n, tile_size, lambda rs, cs: model.tile(locations, rs, cs), symmetric_lower=True
        )
        tile_cholesky(tiles)
        alpha = tile_cholesky_solve(tiles, z)
    else:
        tlr = TLRMatrix.from_generator(
            n, tile_size, lambda rs, cs: model.tile(locations, rs, cs), acc=acc
        )
        tlr_cholesky(tlr)
        alpha = tlr_cholesky_solve(tlr, z)
    d12 = pairwise_distance(new_locations, locations, metric=model.metric)
    return model(d12) @ alpha


def seed_conditional_variance(locations, new_locations, model):
    """The pre-engine dense-only ``conditional_variance``."""
    sigma22 = model.matrix(locations)
    factor = block_cholesky(sigma22, overwrite=True)
    d12 = pairwise_distance(new_locations, locations, metric=model.metric)
    sigma12 = model(d12)
    half = sla.solve_triangular(factor, sigma12.T, lower=True, check_finite=False)
    var_marginal = float(model(np.zeros(1))[0]) + model.nugget
    reduction = np.einsum("ij,ij->j", half, half)
    return np.maximum(var_marginal - reduction, 0.0)


@pytest.fixture(scope="module")
def problem():
    locs = generate_irregular_grid(N + M, seed=5)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=6)
    return locs[:N], z[:N], locs[N:], model


def make_engine(problem, variant, cache, runtime=None, parallel=False, z="bound"):
    locs, zv, _, model = problem
    return PredictionEngine(
        locs,
        zv if z == "bound" else z,
        model,
        variant=variant,
        acc=ACC,
        tile_size=NB,
        runtime=runtime,
        cache_distances=cache,
        parallel_generation=parallel,
    )


def assert_variant_close(got, ref, variant):
    if variant == "tlr":
        # Deterministic SVD compression: same pipeline order -> same values;
        # tolerate last-bit drift from task-thread BLAS scheduling.
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)
    else:
        np.testing.assert_array_equal(got, ref)


# --------------------------------------------------------------------------
# Parity: every (variant, cache, parallel) cell vs. the seed path.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_predict_parity_vs_seed_path(problem, variant, cache, parallel):
    locs, z, xnew, model = problem
    ref = seed_predict(locs, z, xnew, model, variant)
    if parallel:
        with Runtime(num_workers=2) as rt:
            engine = make_engine(problem, variant, cache, runtime=rt, parallel=True)
            got = engine.predict(xnew)
            again = engine.predict(xnew)  # cached factor, same runtime
    else:
        engine = make_engine(problem, variant, cache)
        got = engine.predict(xnew)
        again = engine.predict(xnew)
    assert_variant_close(got, ref, variant)
    np.testing.assert_array_equal(got, again)
    assert engine.n_factorizations == 1


@pytest.mark.parametrize("variant", VARIANTS)
def test_functional_wrapper_matches_seed_path(problem, variant):
    """The refactored module-level predict() is value-preserving."""
    locs, z, xnew, model = problem
    ref = seed_predict(locs, z, xnew, model, variant)
    got = predict(locs, z, xnew, model, variant=variant, acc=ACC, tile_size=NB)
    assert_variant_close(got, ref, variant)


def test_tlr_within_acc_of_dense(problem):
    locs, z, xnew, model = problem
    dense = seed_predict(locs, z, xnew, model, "full-block")
    tlr = make_engine(problem, "tlr", True).predict(xnew)
    np.testing.assert_allclose(tlr, dense, atol=1e-5)


# --------------------------------------------------------------------------
# Batched multi-RHS prediction.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_multi_rhs_matches_looped_single_rhs(problem, variant):
    locs, z, xnew, model = problem
    rng = np.random.default_rng(11)
    batch = np.column_stack([z, z + 0.1 * rng.standard_normal(N), rng.standard_normal(N)])
    engine = make_engine(problem, variant, True)
    got = engine.predict(xnew, z=batch)
    assert got.shape == (M, batch.shape[1])
    singles = np.column_stack(
        [engine.predict(xnew, z=batch[:, j]) for j in range(batch.shape[1])]
    )
    np.testing.assert_allclose(got, singles, rtol=1e-12, atol=1e-12)
    assert engine.n_factorizations == 1  # one factorization served every RHS


def test_multiple_target_sets_one_factorization(problem):
    locs, z, xnew, model = problem
    engine = make_engine(problem, "full-tile", True)
    p1 = engine.predict(xnew)
    p2 = engine.predict(locs[:7])
    assert p1.shape == (M,) and p2.shape == (7,)
    assert engine.n_factorizations == 1
    # Kriging interpolates at training points.
    np.testing.assert_allclose(p2, z[:7], atol=1e-5)
    # Repeating a target set hits the cross-distance cache.
    hits_before = engine.cross_cache.hits
    p1_again = engine.predict(xnew)
    assert engine.cross_cache.hits == hits_before + 1
    np.testing.assert_array_equal(p1, p1_again)


# --------------------------------------------------------------------------
# fit -> predict reuse.
# --------------------------------------------------------------------------


def test_predict_after_fit_skips_generation(problem):
    locs, z, xnew, _ = problem
    est = MLEstimator(locs, z, variant="full-tile", tile_size=NB)
    fit = est.fit(maxiter=40)
    p1 = est.predict(fit, xnew)
    engine = est.predictor(fit)
    nfact = engine.n_factorizations
    gen_before = engine.times.stages.get("generation", 0.0)
    misses_before = engine.distance_cache.misses if engine.distance_cache else None
    p2 = est.predict(fit, xnew)
    assert engine.n_factorizations == nfact  # factor reused, not recomputed
    assert engine.times.stages.get("generation", 0.0) == gen_before
    if engine.distance_cache is not None:
        assert engine.distance_cache.misses == misses_before
    np.testing.assert_array_equal(p1, p2)
    # The engine shares the fit's distance cache object.
    if est.evaluator.distance_cache is not None:
        assert engine.distance_cache is est.evaluator.distance_cache


def test_factor_adoption_from_evaluator(problem):
    locs, z, xnew, model = problem
    est = MLEstimator(locs, z, variant="full-tile", tile_size=NB, use_morton=False)
    theta = np.array([1.0, 0.1, 0.5])
    ll = est.evaluator(theta)
    assert np.isfinite(ll)
    fit = FitResult(
        theta=theta, loglik=ll, optimizer=None, n_evals=1, time_total=0.0,
        time_per_iteration=0.0,
    )
    pred = est.predict(fit, xnew)
    engine = est.predictor(fit)
    # The evaluator's final factorization was adopted: the engine never
    # generated nor factorized Sigma_22 itself.
    assert engine.n_factorizations == 0
    assert "factorization" not in engine.times.stages
    ref = predict(locs, z, xnew, model.with_theta(theta), variant="full-tile", tile_size=NB)
    np.testing.assert_array_equal(pred, ref)


def test_estimator_predict_substrate_override_falls_back(problem):
    locs, z, xnew, model = problem
    est = MLEstimator(locs, z, variant="full-block", use_morton=False)
    theta = np.array([1.0, 0.1, 0.5])
    fit = FitResult(
        theta=theta, loglik=0.0, optimizer=None, n_evals=1, time_total=0.0,
        time_per_iteration=0.0,
    )
    via_engine = est.predict(fit, xnew)
    overridden = est.predict(fit, xnew, variant="full-tile", tile_size=NB)
    np.testing.assert_allclose(overridden, via_engine, atol=1e-8)


def test_z_override_respects_morton_reordering(problem):
    """A z= override follows the constructor's row order (regression).

    With use_morton=True the estimator permutes its training rows; an
    override equal to the constructor's z must yield the same
    predictions as the bound z.
    """
    locs, z, xnew, _ = problem
    rng = np.random.default_rng(13)
    shuffled = rng.permutation(N)  # ensure the Morton permutation is non-trivial
    est = MLEstimator(locs[shuffled], z[shuffled], variant="full-block", use_morton=True)
    assert est._perm is not None and not np.array_equal(est._perm, np.arange(N))
    theta = np.array([1.0, 0.1, 0.5])
    fit = FitResult(
        theta=theta, loglik=0.0, optimizer=None, n_evals=1, time_total=0.0,
        time_per_iteration=0.0,
    )
    bound = est.predict(fit, xnew)
    overridden = est.predict(fit, xnew, z=z[shuffled])
    np.testing.assert_array_equal(overridden, bound)


def test_set_model_metric_change_rebuilds_distance_caches(problem):
    locs, z, xnew, model = problem
    engine = make_engine(problem, "full-tile", True)
    engine.predict(xnew)
    gcd_model = MaternCovariance(1.0, 5.0, 0.5, metric="gcd")
    engine.set_model(gcd_model)
    assert engine.distance_cache.metric == "gcd"
    assert engine.cross_cache.metric == "gcd"
    got = engine.predict(xnew)
    fresh = PredictionEngine(
        locs, z, gcd_model, variant="full-tile", tile_size=NB, cache_distances=True
    ).predict(xnew)
    np.testing.assert_array_equal(got, fresh)


def test_theta_change_invalidates_factor(problem):
    locs, z, xnew, model = problem
    engine = make_engine(problem, "full-block", True)
    p1 = engine.predict(xnew)
    engine.set_model(model.with_theta(np.array([1.2, 0.12, 0.5])))
    p2 = engine.predict(xnew)
    assert engine.n_factorizations == 2
    assert not np.array_equal(p1, p2)
    # Distance caches survive the theta change: no new cross misses.
    assert engine.cross_cache.misses == 1


# --------------------------------------------------------------------------
# Conditional variance across substrates.
# --------------------------------------------------------------------------


def test_conditional_variance_dense_matches_seed_path(problem):
    locs, _, xnew, model = problem
    ref = seed_conditional_variance(locs, xnew, model)
    got = conditional_variance(locs, xnew, model)
    np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("variant", ["full-tile", "tlr"])
def test_conditional_variance_variants_agree_with_dense(problem, variant):
    locs, _, xnew, model = problem
    ref = seed_conditional_variance(locs, xnew, model)
    got = conditional_variance(
        locs, xnew, model, variant=variant, acc=ACC, tile_size=NB
    )
    np.testing.assert_allclose(got, ref, atol=1e-6)
    # Observed points have (near-)zero kriging variance on every substrate.
    at_obs = conditional_variance(
        locs, locs[:5], model, variant=variant, acc=ACC, tile_size=NB
    )
    np.testing.assert_allclose(at_obs, 0.0, atol=1e-6)


def test_conditional_variance_shares_predict_factorization(problem):
    locs, z, xnew, model = problem
    engine = make_engine(problem, "full-tile", True)
    engine.predict(xnew)
    var = engine.conditional_variance(xnew)
    assert var.shape == (M,)
    assert np.all(var >= 0.0)
    assert engine.n_factorizations == 1


# --------------------------------------------------------------------------
# Guards.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ["full-block", "full-tile"])
def test_not_positive_definite_raises(problem, variant):
    # Duplicated locations with zero nugget -> exactly singular Sigma_22.
    locs = np.array([[0.1, 0.2], [0.1, 0.2], [0.5, 0.5], [0.9, 0.4]])
    model = MaternCovariance(1.0, 0.1, 0.5)
    with pytest.raises(NotPositiveDefiniteError):
        conditional_variance(locs, np.array([[0.3, 0.3]]), model, variant=variant, tile_size=2)


def test_predict_without_observations_raises(problem):
    locs, _, xnew, model = problem
    engine = PredictionEngine(locs, None, model, variant="full-block")
    with pytest.raises(ConfigurationError):
        engine.predict(xnew)
    # But variance-only use works.
    assert engine.conditional_variance(xnew).shape == (M,)
