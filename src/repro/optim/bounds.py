"""Box-constraint helpers and Matérn starting values (paper §IV).

The paper notes that the three Matérn parameters are positive reals, that
empirical values from the data serve as starting points and bounds, and
that the smoothness rarely exceeds 1-2 in geophysical applications. These
helpers encode exactly that prior knowledge.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import as_float_array

__all__ = ["clip_to_bounds", "default_matern_bounds", "empirical_start"]

Bounds = Tuple[np.ndarray, np.ndarray]


def clip_to_bounds(x: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Project ``x`` onto the box ``[lower, upper]`` (returns a copy).

    This is NLopt's treatment of bound constraints inside NELDERMEAD:
    trial points are clamped to the box before evaluation.
    """
    return np.minimum(np.maximum(x, lower), upper)


def validate_bounds(lower: Sequence[float], upper: Sequence[float]) -> Bounds:
    """Validate and normalize a bounds pair into float arrays."""
    lo = as_float_array(lower, "lower")
    hi = as_float_array(upper, "upper")
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ShapeError(f"bounds must be 1-D of equal length, got {lo.shape} and {hi.shape}")
    if np.any(lo >= hi):
        raise ShapeError("each lower bound must be strictly below its upper bound")
    return lo, hi


def default_matern_bounds(
    values: np.ndarray | None = None, *, max_range: float = 5.0
) -> Bounds:
    """Default optimization box for ``theta = (variance, range, smoothness)``.

    Parameters
    ----------
    values:
        Optional observations; when given, the variance bounds are scaled
        around the sample variance (the paper's "empirical values ...
        provide bounds for the optimization").
    max_range:
        Upper bound for the spatial range in the data's distance units
        (unit square: ~5; GCD degrees: pass something like 60).
    """
    if values is not None and len(values) > 1:
        sample_var = float(np.var(np.asarray(values, dtype=np.float64)))
        var_lo, var_hi = max(1e-6, 0.01 * sample_var), max(1.0, 100.0 * sample_var)
    else:
        var_lo, var_hi = 1e-6, 100.0
    lower = np.array([var_lo, 1e-4, 0.1], dtype=np.float64)
    upper = np.array([var_hi, max_range, 5.0], dtype=np.float64)
    return lower, upper


def empirical_start(values: np.ndarray | None, lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Starting vector: sample variance + geometric mid-box for the rest.

    Geometric (log-space) midpoints respect the orders-of-magnitude span
    of the range parameter better than arithmetic midpoints.
    """
    start = np.sqrt(lower * upper)  # log-space midpoint, elementwise
    if values is not None and len(values) > 1:
        sample_var = float(np.var(np.asarray(values, dtype=np.float64)))
        start = start.copy()
        start[0] = float(np.clip(sample_var, lower[0], upper[0]))
    return start
