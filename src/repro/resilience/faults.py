"""Deterministic fault injection: seeded plans over named sites.

Chaos testing the serving + fitting stack needs failures that are
*reproducible*: "the worker dies on the third pipe message" must mean
the same thing on every run and every machine, or a failing soak test
cannot be bisected. This module provides that determinism:

* Production code is instrumented with :func:`fault_point` calls at
  **named sites** (``store.load``, ``registry.rehydrate``,
  ``worker.pipe``, ``fit.leg``, ``engine.predict``, ``runtime.task``,
  ``wire.stream`` — the binary transport's streamed-response chunk
  loop, for dropping a connection mid-stream).
  Unarmed, a fault point is two module-global reads — no measurable
  cost on any request path.
* A :class:`FaultPlan` is a seeded list of :class:`FaultRule`\\ s, each
  binding a site to an action — ``raise`` a typed exception, ``delay``
  the caller, ``corrupt`` a byte of the file the site is about to read,
  or ``kill`` the calling process with SIGKILL — on a deterministic
  window of hits (``after`` skipped, ``count`` fired).
* :func:`arm` installs a plan process-wide; with ``propagate=True`` it
  is also exported through the ``REPRO_FAULT_PLAN`` environment
  variable, so worker processes (fork *or* spawn) arm themselves
  lazily on their first fault point.
* Hit counting is per-process by default. For plans that must count
  across processes — "kill the fit leg once, then let the respawn
  through" needs the respawned process to see hit 2, not hit 1 — give
  the plan a ``state_dir``: counters live in ``flock``-serialized
  files, shared by every process of the run, and every fired fault is
  journaled to ``fired.jsonl`` for the soak harness's reconciliation.

Nothing here is imported by default application flows beyond the
``fault_point`` no-op; a library user who never arms a plan pays only
the unarmed fast path.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import exceptions as _exceptions
from ..exceptions import ConfigurationError, InjectedFaultError
from ..telemetry import spans as _telemetry

__all__ = [
    "FaultRule",
    "FaultPlan",
    "arm",
    "disarm",
    "active_plan",
    "fault_point",
    "SITES",
    "PLAN_ENV",
]

#: The named injection sites threaded through the library. ``fault_point``
#: accepts any string, but plans naming unknown sites are rejected so a
#: typo cannot silently inject nothing.
SITES = (
    "store.load",
    "registry.rehydrate",
    "worker.pipe",
    "fit.leg",
    "engine.predict",
    "runtime.task",
    "wire.stream",
)

#: Environment variable carrying a JSON-serialized plan to child processes.
PLAN_ENV = "REPRO_FAULT_PLAN"

_ACTIONS = ("raise", "delay", "corrupt", "kill")

#: Exception classes a ``raise`` rule may name. Restricted to the library
#: hierarchy (plus OSError for I/O-shaped failures) so a plan cannot be
#: used to raise arbitrary classes.
_RAISABLE: Dict[str, type] = {
    name: obj
    for name, obj in vars(_exceptions).items()
    if isinstance(obj, type) and issubclass(obj, _exceptions.ReproError)
}
_RAISABLE["OSError"] = OSError


@dataclass
class FaultRule:
    """One site's fault: which action, on which window of hits.

    Attributes
    ----------
    site:
        One of :data:`SITES`.
    action:
        ``"raise"``, ``"delay"``, ``"corrupt"``, or ``"kill"``.
    after:
        Hits of the site that pass through before the rule starts
        firing (0 = fire on the first hit).
    count:
        Consecutive hits the rule fires on once triggered; later hits
        pass through again (so recovery is part of the same plan).
    delay:
        Seconds to sleep for ``"delay"``.
    exception:
        Class name for ``"raise"`` (a :class:`~repro.exceptions
        .ReproError` subclass or ``OSError``); default
        :class:`InjectedFaultError`.
    message:
        Text of the raised exception (default derived from the site).
    """

    site: str
    action: str
    after: int = 0
    count: int = 1
    delay: float = 0.0
    exception: str = "InjectedFaultError"
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known: {SITES}"
            )
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; known: {_ACTIONS}"
            )
        if int(self.after) < 0:
            raise ConfigurationError(f"after must be >= 0, got {self.after}")
        if int(self.count) < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.action == "delay" and float(self.delay) <= 0:
            raise ConfigurationError(
                f"delay rules need delay > 0 seconds, got {self.delay}"
            )
        if self.action == "raise" and self.exception not in _RAISABLE:
            raise ConfigurationError(
                f"unraisable exception {self.exception!r}; "
                f"known: {sorted(_RAISABLE)}"
            )
        self.after = int(self.after)
        self.count = int(self.count)
        self.delay = float(self.delay)

    def fires_on(self, hit: int) -> bool:
        """Whether this rule fires on the ``hit``-th (1-based) site hit."""
        return self.after < hit <= self.after + self.count

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "action": self.action,
            "after": self.after,
            "count": self.count,
            "delay": self.delay,
            "exception": self.exception,
            "message": self.message,
        }


@dataclass
class FaultPlan:
    """A seeded set of fault rules plus (optionally) shared hit state.

    Parameters
    ----------
    rules:
        The :class:`FaultRule` list (dicts are accepted and coerced).
    seed:
        Drives the deterministic choice of which byte a ``corrupt``
        action flips — same seed, same corruption, every run.
    state_dir:
        Directory for cross-process hit counters and the fired-fault
        journal. ``None`` keeps counters in this process's memory —
        fine for single-process tests, wrong for plans whose sites are
        hit from several processes (a respawned worker would restart
        the count and re-trigger "first hit" rules forever).
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0
    state_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        self.rules = [
            rule if isinstance(rule, FaultRule) else FaultRule(**rule)
            for rule in self.rules
        ]
        self.seed = int(self.seed)
        if self.state_dir is not None:
            self.state_dir = Path(self.state_dir)
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._local_hits: Dict[str, int] = {}
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)

    # ---------------------------------------------------------- serialization
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": None if self.state_dir is None else str(self.state_dir),
                "rules": [rule.to_dict() for rule in self.rules],
            }
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        data = json.loads(raw)
        return cls(
            rules=data.get("rules", []),
            seed=data.get("seed", 0),
            state_dir=data.get("state_dir"),
        )

    # -------------------------------------------------------------- counting
    def _next_hit(self, site: str) -> int:
        """Increment and return the site's (1-based) hit count.

        With a ``state_dir`` the count is global across processes: the
        counter file is read-modify-written under an exclusive
        ``flock``, so concurrent hits from different processes each get
        a distinct number.
        """
        if self.state_dir is None:
            hit = self._local_hits.get(site, 0) + 1
            self._local_hits[site] = hit
            return hit
        path = self.state_dir / f"{site}.hits"
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            raw = os.read(fd, 64).strip()
            hit = (int(raw) if raw else 0) + 1
            os.lseek(fd, 0, os.SEEK_SET)
            os.ftruncate(fd, 0)
            os.write(fd, str(hit).encode())
        finally:
            os.close(fd)  # releases the lock
        return hit

    def hits(self, site: str) -> int:
        """The site's current hit count (without incrementing)."""
        if self.state_dir is None:
            return self._local_hits.get(site, 0)
        path = self.state_dir / f"{site}.hits"
        try:
            raw = path.read_text().strip()
        except FileNotFoundError:
            return 0
        return int(raw) if raw else 0

    def _journal(self, site: str, hit: int, action: str) -> None:
        if self.state_dir is None:
            return
        line = json.dumps(
            {
                "site": site,
                "hit": hit,
                "action": action,
                "pid": os.getpid(),
                "t": time.time(),
            }
        )
        fd = os.open(self.state_dir / "fired.jsonl", os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, (line + "\n").encode())
        finally:
            os.close(fd)

    def fired(self) -> List[dict]:
        """Every journaled fault firing (needs a ``state_dir``)."""
        if self.state_dir is None:
            return []
        path = self.state_dir / "fired.jsonl"
        if not path.is_file():
            return []
        out = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:  # torn final line from a kill
                break
        return out

    # --------------------------------------------------------------- firing
    def visit(self, site: str, *, path: Optional[str] = None) -> None:
        """Count one hit of ``site`` and fire any matching rules."""
        rules = self._by_site.get(site)
        if not rules:
            return
        hit = self._next_hit(site)
        for rule in rules:
            if rule.fires_on(hit):
                self._fire(rule, site, hit, path)

    def _fire(self, rule: FaultRule, site: str, hit: int, path: Optional[str]) -> None:
        self._journal(site, hit, rule.action)
        # A firing is the single most useful thing to see on a request
        # trace during a chaos run: the span carries which site fired,
        # which action, and on which hit. No-op when telemetry is off.
        _telemetry.annotate("fault", f"{site}#{hit}:{rule.action}")
        if rule.action == "delay":
            time.sleep(rule.delay)
            return
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - unreachable
        if rule.action == "corrupt":
            if path is None:
                raise InjectedFaultError(
                    f"corrupt rule fired at {site!r} which carries no file path"
                )
            self._corrupt_file(Path(path), site, hit)
            return
        message = rule.message or f"injected fault at {site!r} (hit {hit})"
        raise _RAISABLE[rule.exception](message)

    def _corrupt_file(self, path: Path, site: str, hit: int) -> None:
        """Flip one seed-determined byte of ``path`` in place.

        The offset derives from (seed, site, hit) through sha256 — not
        ``hash()``, whose string hashing is randomized per process — so
        the same plan corrupts the same byte on every run.
        """
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise InjectedFaultError(
                f"corrupt rule at {site!r}: cannot stat {path}: {exc}"
            ) from exc
        if size == 0:
            return
        digest = hashlib.sha256(f"{self.seed}:{site}:{hit}".encode()).digest()
        offset = int.from_bytes(digest[:8], "big") % size
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
            fh.flush()
            os.fsync(fh.fileno())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, "
            f"state_dir={str(self.state_dir) if self.state_dir else None})"
        )


# ---------------------------------------------------------------------------
# Module-level arming. The fast path of fault_point when nothing is armed
# is two global reads — it sits on per-request and per-task code paths.
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
# True while the environment may hold a plan this process has not loaded
# yet (set at import for children, and by arm(propagate=True)).
_ENV_PENDING = PLAN_ENV in os.environ


def arm(plan: FaultPlan, *, propagate: bool = False) -> FaultPlan:
    """Install ``plan`` as this process's active fault plan.

    With ``propagate`` the plan is also exported via ``REPRO_FAULT_PLAN``
    so child processes — forked *or* spawned after this call — arm the
    same plan on their first :func:`fault_point`. Cross-process hit
    determinism additionally needs the plan to carry a ``state_dir``.
    """
    global _PLAN, _ENV_PENDING
    if propagate:
        os.environ[PLAN_ENV] = plan.to_json()
        _ENV_PENDING = True
    _PLAN = plan
    return plan


def disarm() -> None:
    """Remove the active plan (and its environment export), idempotently."""
    global _PLAN, _ENV_PENDING
    _PLAN = None
    _ENV_PENDING = False
    os.environ.pop(PLAN_ENV, None)


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, if any (without env lazy-loading)."""
    return _PLAN


def fault_point(site: str, *, path: Optional[str] = None) -> None:
    """Declare a named injection site; a no-op unless a plan is armed.

    ``path`` names the file a ``corrupt`` rule at this site would
    damage — pass it at sites that are about to read payload from disk.
    """
    global _PLAN, _ENV_PENDING
    plan = _PLAN
    if plan is None:
        if not _ENV_PENDING:
            return
        _ENV_PENDING = False
        raw = os.environ.get(PLAN_ENV)
        if not raw:
            return
        plan = _PLAN = FaultPlan.from_json(raw)
    plan.visit(site, path=path)
