"""Result container for the derivative-free optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["OptimizeResult"]


@dataclass
class OptimizeResult:
    """Outcome of a derivative-free minimization.

    Attributes
    ----------
    x:
        Best parameter vector found.
    fun:
        Objective value at ``x``.
    nfev:
        Number of objective evaluations.
    nit:
        Number of simplex iterations.
    converged:
        True when a tolerance criterion (not the iteration cap) stopped
        the search.
    message:
        Human-readable termination reason.
    history:
        Best objective value after each iteration (for convergence
        diagnostics and tests).
    """

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    converged: bool
    message: str
    history: List[float] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizeResult(fun={self.fun:.6g}, nfev={self.nfev}, nit={self.nit}, "
            f"converged={self.converged}, x={np.array2string(self.x, precision=5)})"
        )
