"""Unit tests for the framed binary wire codec (`repro.serving.wire`).

Everything here is pure codec — no HTTP, no server. The transport
contract proven end-to-end in ``test_transport.py`` rests on these
properties: bit-exact round-trips (including NaN/inf and Fortran
memory order), exact ``encoded_length``, incremental single-allocation
decode, and typed errors for every malformed-stream shape a dropped
connection or hostile peer can produce.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineExceededError,
    PayloadTooLargeError,
    WireFormatError,
)
from repro.resilience.policy import Deadline
from repro.serving import wire


def _roundtrip(meta, arrays=None, **kwargs):
    blob = wire.encode_message(meta, arrays)
    return wire.read_message(io.BytesIO(blob).read, **kwargs)


# --------------------------------------------------------------------------
# Round-trips
# --------------------------------------------------------------------------


def test_roundtrip_meta_only():
    meta, arrays = _roundtrip({"model_id": "m", "priority": 2})
    assert meta == {"model_id": "m", "priority": 2}
    assert arrays == {}


def test_roundtrip_arrays_bit_exact():
    rng = np.random.default_rng(0)
    sent = {
        "targets": rng.random((100, 2)),
        "z": rng.standard_normal(144),
        "idx": np.arange(7, dtype=np.int64),
    }
    meta, got = _roundtrip({"model_id": "m"}, sent)
    assert set(got) == set(sent)
    for name, arr in sent.items():
        assert got[name].dtype == arr.dtype
        assert got[name].shape == arr.shape
        np.testing.assert_array_equal(got[name], arr)


def test_roundtrip_nan_inf_bit_exact():
    """The values strict JSON cannot represent at all cross bit-exact."""
    sent = np.array([np.nan, np.inf, -np.inf, -0.0, 1e308, 5e-324])
    _, got = _roundtrip({}, {"p": sent})
    assert got["p"].tobytes() == sent.tobytes()


def test_roundtrip_preserves_fortran_order():
    """A LAPACK-style F-ordered factor must come back F-ordered:
    downstream BLAS picks code paths by memory layout, so a transpose
    copy would shift predictions by an ulp."""
    factor = np.asfortranarray(np.random.default_rng(1).random((12, 12)))
    _, got = _roundtrip({}, {"factor": factor})
    assert got["factor"].flags["F_CONTIGUOUS"]
    assert not got["factor"].flags["C_CONTIGUOUS"]
    np.testing.assert_array_equal(got["factor"], factor)


def test_roundtrip_noncontiguous_and_scalarish_inputs():
    base = np.random.default_rng(2).random((10, 6))
    sent = {
        "strided": base[::2, ::3],       # non-contiguous view
        "listy": [[1.0, 2.0], [3.0, 4.0]],
        "scalar": 7.5,                   # 0-d array on the wire
        "i32": np.arange(5, dtype=np.int32),
    }
    _, got = _roundtrip({}, sent)
    np.testing.assert_array_equal(got["strided"], base[::2, ::3])
    np.testing.assert_array_equal(got["listy"], np.asarray(sent["listy"]))
    assert got["scalar"].shape == ()
    assert float(got["scalar"]) == 7.5
    assert got["i32"].dtype == np.dtype("<i8")
    np.testing.assert_array_equal(got["i32"], np.arange(5))


def test_roundtrip_empty_array():
    _, got = _roundtrip({}, {"empty": np.empty((0, 2))})
    assert got["empty"].shape == (0, 2)


def test_encoded_length_is_exact():
    rng = np.random.default_rng(3)
    cases = [
        ({"a": 1}, None),
        ({}, {"x": rng.random(1000)}),
        ({"m": "id"}, {"x": rng.random((50, 3)),
                       "f": np.asfortranarray(rng.random((8, 8)))}),
    ]
    for meta, arrays in cases:
        blob = wire.encode_message(meta, arrays)
        assert wire.encoded_length(meta, arrays) == len(blob)


def test_meta_rejects_non_finite_floats():
    with pytest.raises(WireFormatError, match="non-finite"):
        wire.encode_message({"bad": float("nan")})


# --------------------------------------------------------------------------
# Streaming behavior
# --------------------------------------------------------------------------


def test_iter_message_chunks_are_bounded():
    payload = np.random.default_rng(4).random(100_000)  # 800 kB
    chunks = list(wire.iter_message({}, {"p": payload}, chunk_size=4096))
    # Frame heads+headers ride with small chunks; payload slices obey the cap.
    assert max(len(c) for c in chunks) <= 4096 + 256
    assert b"".join(bytes(c) for c in chunks) == wire.encode_message({}, {"p": payload})


def test_read_message_survives_tiny_reads():
    """A peer dribbling one byte at a time still decodes correctly."""
    sent = np.random.default_rng(5).random((17, 3))
    blob = wire.encode_message({"m": "x"}, {"t": sent})
    stream = io.BytesIO(blob)

    def dribble(n):
        return stream.read(min(n, 1))

    meta, got = wire.read_message(dribble)
    assert meta == {"m": "x"}
    np.testing.assert_array_equal(got["t"], sent)


def test_read_message_deadline_checked_mid_stream():
    blob = wire.encode_message({}, {"p": np.zeros(100_000)})
    expired = Deadline.after(-1.0)
    with pytest.raises(DeadlineExceededError):
        wire.read_message(io.BytesIO(blob).read, deadline=expired, chunk_size=4096)


def test_write_chunked_roundtrips_through_chunked_reader():
    sent = np.random.default_rng(6).random((200, 4))
    body = io.BytesIO()
    wire.write_chunked(body, wire.iter_message({"ok": True}, {"t": sent},
                                              chunk_size=1024))
    body.seek(0)
    reader = wire.ChunkedReader(io.BufferedReader(io.BytesIO(body.getvalue())))
    meta, got = wire.read_message(reader.read)
    assert meta == {"ok": True}
    np.testing.assert_array_equal(got["t"], sent)
    reader.drain()
    assert reader.read(1) == b""  # positioned past the terminal chunk


def test_chunked_eof_in_trailer_section_is_truncation():
    """Regression: a connection dropped between the 0-size chunk line
    and the final CRLF must report truncation, not a complete body."""
    fp = io.BufferedReader(io.BytesIO(b"4\r\nDATA\r\n0\r\n"))
    reader = wire.ChunkedReader(fp)
    assert reader.read(4) == b"DATA"
    with pytest.raises(WireFormatError, match="truncated"):
        reader.read(1)


def test_chunked_eof_mid_line_is_truncation():
    fp = io.BufferedReader(io.BytesIO(b"4\r\nDATA\r\n1f"))  # size line cut off
    reader = wire.ChunkedReader(fp)
    assert reader.read(4) == b"DATA"
    with pytest.raises(WireFormatError, match="truncated"):
        reader.read(1)


def test_chunked_overlong_size_line_is_typed():
    """Regression: ``readline(_MAX_LINE)`` silently truncates, so an
    over-long chunk-size line must be rejected — its remainder would
    otherwise parse as the next framing line."""
    fp = io.BufferedReader(io.BytesIO(b"1" * (wire._MAX_LINE + 16) + b"\r\n"))
    with pytest.raises(WireFormatError, match="line cap"):
        wire.ChunkedReader(fp).read(1)


def test_chunked_overlong_trailer_line_is_typed():
    blob = b"0\r\n" + b"x-trailer: " + b"v" * (wire._MAX_LINE + 16) + b"\r\n\r\n"
    with pytest.raises(WireFormatError, match="line cap"):
        wire.ChunkedReader(io.BufferedReader(io.BytesIO(blob))).read(1)


def test_bounded_reader_stops_at_its_length():
    fp = io.BytesIO(b"abcdefghij" + b"NEXT-REQUEST")
    reader = wire.BoundedReader(fp, 10)
    assert reader.read(4) == b"abcd"
    reader.drain()
    assert reader.read(100) == b""
    assert fp.read(4) == b"NEXT"  # the next pipelined request is untouched


# --------------------------------------------------------------------------
# Transparent deflate compression
# --------------------------------------------------------------------------


def _grid_targets(k):
    xs = np.linspace(0.0, 1.0, k)
    gx, gy = np.meshgrid(xs, xs, indexing="ij")
    return np.column_stack([gx.ravel(), gy.ravel()])


def test_structured_payload_compresses_and_roundtrips_bit_exact():
    """Map-grid coordinates (the bulk kriging-output workload) must ship
    deflate-compressed — several times smaller — and still bit-exact."""
    grid = _grid_targets(120)
    plain = wire.encoded_length({}, {"targets": grid}, compress=False)
    packed = wire.encoded_length({}, {"targets": grid})
    assert packed < plain / 4
    _, got = _roundtrip({}, {"targets": grid})
    assert got["targets"].tobytes() == grid.tobytes()


def test_incompressible_payload_ships_raw():
    """Random mantissas don't deflate: the probe must decline, keeping
    the wire within a hair of the raw payload."""
    noise = np.random.default_rng(8).random(50_000)
    packed = wire.encoded_length({}, {"z": noise})
    assert packed <= noise.nbytes + 512


def test_compress_false_forces_raw():
    grid = _grid_targets(64)
    assert wire.encoded_length({}, {"t": grid}, compress=False) >= grid.nbytes


def test_plan_message_is_reusable():
    """``chunks()`` must be re-iterable — the retry path rebuilds the
    streamed body from the same plan."""
    plan = wire.plan_message({"m": 1}, {"t": _grid_targets(40)})
    first = b"".join(bytes(c) for c in plan.chunks())
    second = b"".join(bytes(c) for c in plan.chunks())
    assert first == second
    assert len(first) == plan.length


def test_truncated_compressed_payload_is_typed():
    blob = wire.encode_message({}, {"t": _grid_targets(64)})
    with pytest.raises(WireFormatError, match="truncated"):
        wire.read_message(io.BytesIO(blob[: len(blob) - 40]).read)


def test_decompression_bomb_dies_at_first_excess_byte():
    """A deflate payload inflating past its declared shape must fail
    typed — and before filling anything beyond the declared buffer."""
    import zlib

    bomb = zlib.compress(b"\x00" * 1_000_000, 1)
    header = json.dumps({"name": "t", "dtype": "<f8", "shape": [2],
                         "order": "C", "encoding": "deflate"}).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), len(bomb)) + header + bomb
    with pytest.raises(WireFormatError, match="inflates past"):
        wire.read_message(io.BytesIO(meta + frame).read)


def test_deflate_declared_size_counts_against_budget():
    """A tiny compressed payload must not buy a giant allocation: the
    *decompressed* size is charged against max_bytes up front."""
    import zlib

    payload = zlib.compress(b"\x00" * 80_000, 1)  # a few hundred bytes
    header = json.dumps({"name": "t", "dtype": "<f8", "shape": [10_000],
                         "order": "C", "encoding": "deflate"}).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), len(payload)) + header + payload
    with pytest.raises(PayloadTooLargeError):
        wire.read_message(io.BytesIO(meta + frame).read, max_bytes=8192)


def test_trailing_garbage_after_deflate_stream_is_typed():
    """Regression: bytes left over after the deflate stream ends (they
    land in ``unused_data``, not ``unconsumed_tail``) are corruption and
    must fail typed — not decode as a valid frame."""
    import zlib

    payload = zlib.compress(b"\x00" * 16, 1) + b"JUNK"
    header = json.dumps({"name": "t", "dtype": "<f8", "shape": [2],
                         "order": "C", "encoding": "deflate"}).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), len(payload)) + header + payload
    with pytest.raises(WireFormatError, match="trailing"):
        wire.read_message(io.BytesIO(meta + frame).read)


def test_unterminated_deflate_stream_is_typed():
    """A payload that fills its declared size without ever reaching the
    deflate end-of-stream marker is truncated/corrupt, not complete."""
    import zlib

    comp = zlib.compressobj(1)
    payload = comp.compress(b"\x00" * 16) + comp.flush(zlib.Z_SYNC_FLUSH)
    header = json.dumps({"name": "t", "dtype": "<f8", "shape": [2],
                         "order": "C", "encoding": "deflate"}).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), len(payload)) + header + payload
    with pytest.raises(WireFormatError, match="corrupt or truncated"):
        wire.read_message(io.BytesIO(meta + frame).read)


def test_unknown_encoding_is_rejected():
    header = json.dumps({"name": "t", "dtype": "<f8", "shape": [1],
                         "order": "C", "encoding": "lzma"}).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), 8) + header + b"\x00" * 8
    with pytest.raises(WireFormatError, match="encoding"):
        wire.read_message(io.BytesIO(meta + frame).read)


# --------------------------------------------------------------------------
# Malformed streams -> typed errors
# --------------------------------------------------------------------------


def _frames(blob):
    """Split an encoded message into its raw frames for tampering."""
    frames, offset = [], 0
    while offset < len(blob):
        head = blob[offset : offset + wire._HEAD.size]
        _, _, _, _, hlen, plen = wire._HEAD.unpack(head)
        end = offset + wire._HEAD.size + hlen + plen
        frames.append(blob[offset:end])
        offset = end
    return frames


def test_truncated_stream_is_typed():
    blob = wire.encode_message({"m": 1}, {"t": np.zeros(1000)})
    for cut in (3, wire._HEAD.size + 2, len(blob) // 2, len(blob) - 1):
        with pytest.raises(WireFormatError, match="truncated"):
            wire.read_message(io.BytesIO(blob[:cut]).read)


def test_bad_magic_is_typed():
    blob = b"JUNK" + wire.encode_message({})[4:]
    with pytest.raises(WireFormatError, match="magic"):
        wire.read_message(io.BytesIO(blob).read)


def test_future_version_is_rejected():
    blob = bytearray(wire.encode_message({}))
    blob[4] = wire.WIRE_VERSION + 1
    with pytest.raises(WireFormatError, match="version"):
        wire.read_message(io.BytesIO(bytes(blob)).read)


def test_array_before_meta_is_rejected():
    frames = _frames(wire.encode_message({}, {"t": np.zeros(3)}))
    blob = frames[1] + frames[0] + frames[2]  # ARRAY, META, END
    with pytest.raises(WireFormatError, match="before the META"):
        wire.read_message(io.BytesIO(blob).read)


def test_duplicate_array_is_rejected():
    frames = _frames(wire.encode_message({}, {"t": np.zeros(3)}))
    blob = frames[0] + frames[1] + frames[1] + frames[2]
    with pytest.raises(WireFormatError, match="duplicate"):
        wire.read_message(io.BytesIO(blob).read)


def test_shape_payload_mismatch_is_rejected():
    header = json.dumps(
        {"name": "t", "dtype": "<f8", "shape": [100], "order": "C"}
    ).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]  # META frame only
    lying = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), 8) + header + b"\x00" * 8
    with pytest.raises(WireFormatError, match="declares shape"):
        wire.read_message(io.BytesIO(meta + lying).read)


def test_unsupported_dtype_and_order_are_rejected():
    for patch, match in (({"dtype": "<f4"}, "dtype"), ({"order": "K"}, "order")):
        fields = {"name": "t", "dtype": "<f8", "shape": [1], "order": "C"}
        fields.update(patch)
        header = json.dumps(fields).encode()
        meta = wire.encode_message({})[: -wire._HEAD.size]
        frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                                len(header), 8) + header + b"\x00" * 8
        with pytest.raises(WireFormatError, match=match):
            wire.read_message(io.BytesIO(meta + frame).read)


def test_hostile_declared_length_fails_before_allocation():
    """A header declaring an absurd payload must trip the budget from its
    *declared* size — before ``np.empty`` ever sees it."""
    header = json.dumps(
        {"name": "t", "dtype": "<f8", "shape": [1 << 50], "order": "C"}
    ).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), (1 << 50) * 8) + header
    with pytest.raises(PayloadTooLargeError):
        wire.read_message(io.BytesIO(meta + frame).read, max_bytes=1 << 20)


def test_max_bytes_budget_caps_honest_streams_too():
    # Random payload: ships raw, so the budget sees the full 80 kB.
    blob = wire.encode_message({}, {"t": np.random.default_rng(9).random(10_000)})
    with pytest.raises(PayloadTooLargeError):
        wire.read_message(io.BytesIO(blob).read, max_bytes=1024)
    # A budget that fits decodes fine.
    wire.read_message(io.BytesIO(blob).read, max_bytes=len(blob) + 1024)


def test_unknown_header_keys_are_ignored():
    """Within a wire version, readers must skip keys they don't know."""
    header = json.dumps({"name": "t", "dtype": "<f8", "shape": [2],
                         "order": "C", "future_hint": 42}).encode()
    meta = wire.encode_message({})[: -wire._HEAD.size]
    end = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("E"), 0, 0, 0)
    payload = struct.pack("<2d", 1.0, 2.0)
    frame = wire._HEAD.pack(wire.MAGIC, wire.WIRE_VERSION, ord("A"), 0,
                            len(header), 16) + header + payload
    _, got = wire.read_message(io.BytesIO(meta + frame + end).read)
    np.testing.assert_array_equal(got["t"], [1.0, 2.0])


# --------------------------------------------------------------------------
# HTTP head parsing (the pipelining client's response parser)
# --------------------------------------------------------------------------


def test_parse_http_head():
    raw = (b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
           b"X-Thing: a b\r\n\r\nBODY")
    fp = io.BufferedReader(io.BytesIO(raw))
    status, headers = wire.parse_http_head(fp)
    assert status == 200
    assert headers["content-type"] == "application/json"
    assert headers["x-thing"] == "a b"
    assert fp.read() == b"BODY"


def test_parse_http_head_rejects_garbage():
    with pytest.raises(WireFormatError):
        wire.parse_http_head(io.BufferedReader(io.BytesIO(b"NOT-HTTP\r\n\r\n")))
    with pytest.raises(WireFormatError, match="closed"):
        wire.parse_http_head(io.BufferedReader(io.BytesIO(b"")))
