"""Calibration + planner: determinism, persistence, search invariants.

The profile is the planner's single input, so the important contracts
are byte-level: same seed and fake clock → identical profile JSON, a
saved profile plans exactly like the in-memory one it came from, and
every failure mode surfaces as a typed error instead of a garbage plan.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import MaternCovariance, use_config
from repro.data import generate_irregular_grid
from repro.exceptions import CalibrationError, PlanError
from repro.mle import MLEstimator
from repro.perfmodel.autotune import (
    CalibrationProfile,
    autotune,
    fit_constants,
    run_probes,
    samples_from_spans,
)
from repro.perfmodel.planner import (
    Plan,
    Planner,
    plan,
    planned_tile_size,
    predict_workload,
    set_default_profile,
    task_counts,
)
from repro.telemetry import spans as _telemetry

_HOST = {"hostname": "testhost", "machine": "x86_64", "cpu_count": 8, "mem_gb": 16.0}


class FakeClock:
    """Deterministic monotonic clock: every call advances by a fixed step."""

    def __init__(self, step: float = 1e-3) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _profile(**kw) -> CalibrationProfile:
    kw.setdefault("sizes", (32, 48))
    kw.setdefault("repeats", 1)
    kw.setdefault("seed", 0)
    kw.setdefault("clock", FakeClock())
    kw.setdefault("created", 0.0)
    kw.setdefault("host", _HOST)
    return autotune(**kw)


@pytest.fixture(autouse=True)
def _clear_default_profile():
    set_default_profile(None)
    yield
    set_default_profile(None)


# ---------------------------------------------------------- determinism
def test_same_seed_and_clock_give_byte_identical_profiles():
    a = _profile(clock=FakeClock())
    b = _profile(clock=FakeClock())
    assert a.to_json() == b.to_json()
    assert json.loads(a.to_json())["version"] == 1


def test_different_seed_changes_probe_record():
    a = _profile(clock=FakeClock())
    b = _profile(seed=1, clock=FakeClock())
    assert a.to_json() != b.to_json()
    assert a.seed == 0 and b.seed == 1


def test_saved_profile_plans_identically_to_fresh_fit(tmp_path):
    fresh = _profile()
    path = fresh.save(tmp_path / "profile.json")
    loaded = CalibrationProfile.load(path)
    assert loaded.to_json() == fresh.to_json()
    p1 = Planner(fresh).plan(600, substrate="full-tile")
    p2 = Planner(loaded).plan(600, substrate="full-tile")
    assert p1.to_dict()["config"] == p2.to_dict()["config"]
    assert p1.objective_s == pytest.approx(p2.objective_s)


# ---------------------------------------------------------- persistence
def test_save_is_atomic_no_tmp_file_left(tmp_path):
    profile = _profile()
    path = profile.save(tmp_path / "profile.json")
    assert path.is_file()
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == []


def test_load_missing_file_raises_calibration_error(tmp_path):
    with pytest.raises(CalibrationError):
        CalibrationProfile.load(tmp_path / "nope.json")


def test_load_malformed_json_raises_calibration_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{torn", encoding="utf-8")
    with pytest.raises(CalibrationError):
        CalibrationProfile.load(bad)


def test_version_mismatch_raises_calibration_error():
    d = _profile().to_dict()
    d["version"] = 999
    with pytest.raises(CalibrationError, match="version"):
        CalibrationProfile.from_dict(d)


def test_staleness_stamp():
    profile = _profile(created=1000.0)
    assert profile.age_s(now=1500.0) == pytest.approx(500.0)
    assert not profile.is_stale(now=1500.0)
    assert profile.is_stale(now=1000.0 + profile.max_age_s + 1.0)


# ---------------------------------------------------------- fitting
def test_fit_constants_are_positive_and_complete():
    constants = _profile().constants
    for key in (
        "dense_gflops",
        "lr_gflops",
        "gen_gflops",
        "copy_bw_gbs",
        "task_overhead_s",
    ):
        assert constants[key] >= 0.0
        assert np.isfinite(constants[key])
    assert constants["dense_gflops"] > 0.0


def test_fit_constants_rejects_missing_kernel_class():
    samples = [s for s in run_probes(sizes=(32,), repeats=1, clock=FakeClock())
               if s.kernel not in ("gemm", "potrf")]
    with pytest.raises(CalibrationError):
        fit_constants(samples)


def test_probe_spans_round_trip_through_telemetry_sink(tmp_path):
    _telemetry.reset_telemetry()
    _telemetry.configure(enabled=True, sink_dir=str(tmp_path))
    try:
        direct = run_probes(sizes=(32,), repeats=1, clock=FakeClock())
    finally:
        _telemetry.reset_telemetry()
    from repro.perfmodel.calibrate import load_spans

    recovered = samples_from_spans(load_spans(tmp_path))
    assert len(recovered) == len(direct)
    assert {s.kernel for s in recovered} == {s.kernel for s in direct}
    by_key = {(s.kernel, s.size): s for s in direct}
    for s in recovered:
        ref = by_key[(s.kernel, s.size)]
        assert s.work == pytest.approx(ref.work)


def test_samples_from_spans_without_probes_raises():
    with pytest.raises(CalibrationError):
        samples_from_spans([{"name": "stage:solve", "duration": 0.1}])


# ---------------------------------------------------------- planner
def test_plan_invariants():
    profile = _profile()
    p = Planner(profile).plan(900)
    assert isinstance(p, Plan)
    assert p.variant in ("full-block", "full-tile", "tlr")
    assert 1 <= p.tile_size <= 900
    assert p.serving_workers >= 1
    assert 1 <= p.compression_batch <= 64
    assert 0.0005 <= p.batch_window <= 0.05
    assert p.objective_s > 0.0
    d = p.to_dict()
    fit_phases = d["predicted"]["fit_iteration"]["phases"]
    assert d["predicted"]["fit_iteration"]["total_s"] == pytest.approx(
        sum(fit_phases.values())
    )
    assert d["search"]["candidates"]  # the scan is reported, not hidden


def test_plan_substrate_and_accuracy_pinning():
    planner = Planner(_profile())
    p = planner.plan(600, substrate="tlr", accuracy=1e-5)
    assert p.variant == "tlr"
    assert p.accuracy == pytest.approx(1e-5)


def test_plan_rejects_bad_inputs():
    planner = Planner(_profile())
    with pytest.raises(PlanError):
        planner.plan(1)
    with pytest.raises(PlanError):
        planner.plan(600, m=-1)
    with pytest.raises(PlanError):
        planner.plan(600, substrate="quantum")
    with pytest.raises(PlanError):
        planner.plan(600, accuracy=2.0)


def test_plan_all_oom_raises_plan_error():
    base = _profile()
    tiny_host = dict(base.host, mem_gb=1e-9)
    starved = CalibrationProfile.from_dict(
        {**base.to_dict(), "host": tiny_host,
         "machine": {**base.to_dict()["machine"], "mem_gb": 1e-9}}
    )
    with pytest.raises(PlanError, match="[Oo]ut of memory|feasible"):
        Planner(starved).plan(5000)


def test_predict_workload_phase_totals():
    profile = _profile()
    out = predict_workload(profile, 800, variant="full-tile", nb=128, acc=None, m=50)
    assert out["fit_iteration"]["total_s"] == pytest.approx(
        sum(out["fit_iteration"]["phases"].values())
    )
    assert out["predict"]["total_s"] > 0.0
    assert out["matrix_bytes"] > 0 and out["mem_bytes"] >= out["matrix_bytes"]


def test_task_counts_positive_and_scale_with_nt():
    small = task_counts(512, 128, "full-tile")
    large = task_counts(2048, 128, "full-tile")
    for phase in ("generation", "factorization", "solve"):
        assert small[phase] > 0
        assert large[phase] > small[phase]


# ---------------------------------------------------------- config hooks
def test_planned_tile_size_uses_default_profile():
    set_default_profile(_profile())
    nb = planned_tile_size(700, variant="full-tile")
    assert nb is not None and 1 <= nb <= 700


def test_module_level_plan_uses_injected_profile():
    p = plan(700, substrate="full-tile", profile=_profile())
    assert p.variant == "full-tile"


def test_estimator_adopts_planned_tile_size_when_auto_tune_on():
    set_default_profile(_profile())
    locs = generate_irregular_grid(300, seed=3)
    z = np.zeros(300)
    model = MaternCovariance(1.0, 0.1, 0.5)
    expected = planned_tile_size(300, variant="full-tile")
    assert expected is not None
    with use_config(auto_tune=True):
        est = MLEstimator(locs, z, model=model, variant="full-tile")
        assert est.evaluator.tile_size == expected
    # Off by default: the static config tile size wins.
    from repro import get_config

    est = MLEstimator(locs, z, model=model, variant="full-tile")
    assert est.evaluator.tile_size == get_config().tile_size


def test_estimator_explicit_tile_size_beats_planner():
    set_default_profile(_profile())
    locs = generate_irregular_grid(300, seed=3)
    model = MaternCovariance(1.0, 0.1, 0.5)
    with use_config(auto_tune=True):
        est = MLEstimator(locs, np.zeros(300), model=model,
                          variant="full-tile", tile_size=75)
        assert est.evaluator.tile_size == 75


def test_default_profile_loads_configured_path(tmp_path):
    path = _profile().save(tmp_path / "prof.json")
    from repro.perfmodel.planner import default_profile

    with use_config(autotune_profile=str(path)):
        prof = default_profile(refresh=True)
        assert prof.host["hostname"] == "testhost"
    set_default_profile(None)
