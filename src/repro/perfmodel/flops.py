"""Exact flop and byte counters for the tile / TLR kernels.

These formulas count the floating-point operations and the memory
traffic of precisely the algorithms implemented in :mod:`repro.linalg`,
so the performance model's inputs are not hand-waved: the same kernel
loop structure that runs at Python scale is what gets costed at paper
scale. Multiply-add counts as two flops throughout.

Byte counts assume each operand is streamed once per kernel invocation
(tiles are contiguous buffers sized to cache blocks, the design premise
of tile algorithms).
"""

from __future__ import annotations

__all__ = [
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "gemm_flops",
    "lr_trsm_flops",
    "lr_syrk_flops",
    "lr_gemm_flops",
    "generation_flops",
    "compression_flops",
    "dense_tile_bytes",
    "lr_tile_bytes",
]

#: Estimated flops per covariance-matrix element (distance + Matérn with
#: Bessel evaluation); used for the generation stage cost.
KERNEL_EVAL_FLOPS = 60.0


def potrf_flops(nb: int) -> float:
    """Cholesky of an ``nb x nb`` tile: ``nb^3/3 + nb^2/2 + nb/6``."""
    return nb**3 / 3.0 + nb**2 / 2.0 + nb / 6.0


def trsm_flops(nb: int, m: int | None = None) -> float:
    """Triangular solve of an ``m x nb`` block against an ``nb x nb`` factor.

    Defaults to the square panel case ``m = nb`` used by the tile
    Cholesky; the multi-RHS solves of prediction pass ``m`` explicitly.
    """
    m = nb if m is None else m
    return 1.0 * m * nb * nb


def syrk_flops(nb: int, k: int | None = None) -> float:
    """Symmetric rank-k update of an ``nb x nb`` tile (``k`` defaults to nb)."""
    k = nb if k is None else k
    return 1.0 * nb * nb * k  # symmetric: half of 2*nb^2*k


def gemm_flops(m: int, k: int, n: int) -> float:
    """General ``(m x k) @ (k x n)`` multiply-accumulate: ``2 m k n``."""
    return 2.0 * m * k * n


def lr_trsm_flops(nb: int, k: int) -> float:
    """TLR TRSM touches only the ``k x nb`` V factor: ``k nb^2`` flops."""
    return 1.0 * k * nb * nb


def lr_syrk_flops(nb: int, k: int) -> float:
    """TLR SYRK ``D -= U (V V^T) U^T``: two skinny GEMMs plus a Gram matrix.

    ``V V^T``: ``2 k^2 nb``; ``U @ W``: ``2 nb k^2``; ``T @ U^T`` (symmetric
    output, half counted): ``nb^2 k``.
    """
    return 4.0 * k * k * nb + 1.0 * nb * nb * k


def lr_gemm_flops(nb: int, k_ij: int, k_ik: int, k_jk: int) -> float:
    """TLR GEMM + recompression for one trailing-update tile.

    Product: ``V_ik V_jk^T`` (``2 k_ik k_jk nb``) and ``W U_jk^T``
    (``2 k_ik k_jk nb``). Rounding of the concatenated rank
    ``K = k_ij + k_ik``: two thin QRs (``~4 nb K^2``), a ``K x K`` SVD
    (``~22 K^3``), and factor reassembly (``~4 nb K k_new``, bounded by
    ``4 nb K^2``).
    """
    kk = k_ij + k_ik
    product = 4.0 * k_ik * k_jk * nb
    rounding = 8.0 * nb * kk * kk + 22.0 * kk**3
    return product + rounding


def generation_flops(rows: int, cols: int) -> float:
    """Covariance tile generation: ``KERNEL_EVAL_FLOPS`` per element."""
    return KERNEL_EVAL_FLOPS * rows * cols


def compression_flops(nb: int, k: int) -> float:
    """Adaptive (RSVD/ACA-class) compression of an ``nb x nb`` tile to rank k.

    ``O(nb^2 k)`` with a modest constant (sketch multiply + QR + small
    SVD); HiCMA's production path uses exactly this class of method
    rather than the ``O(nb^3)`` full SVD.
    """
    return 6.0 * nb * nb * max(1, k)


def dense_tile_bytes(nb: int, m: int | None = None) -> float:
    """Bytes of a dense ``m x nb`` tile (float64)."""
    m = nb if m is None else m
    return 8.0 * m * nb


def lr_tile_bytes(nb: int, k: int) -> float:
    """Bytes of a rank-``k`` low-rank tile: the U and V factors."""
    return 8.0 * 2.0 * nb * k
