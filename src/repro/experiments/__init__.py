"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes ``run_*`` functions returning
:class:`~repro.experiments.common.ResultTable` objects; the benchmark
suite under ``benchmarks/`` wires them to pytest-benchmark and writes the
rendered tables under ``results/`` (override with ``REPRO_RESULTS_DIR``).

Scaling: measured experiments default to laptop-scale sizes; the
``REPRO_BENCH_SCALE=full`` environment variable raises them toward the
paper's (hours of compute). Paper-scale series always come from the
calibrated performance model (see DESIGN.md §4).
"""

from .common import ResultTable, results_dir, bench_scale
from . import fig1, fig2, fig3, fig4, fig5, fig6, fig7, table1, table2, speedup, ablation

__all__ = [
    "ResultTable",
    "results_dir",
    "bench_scale",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table2",
    "speedup",
    "ablation",
]
