"""Figure 5 bench — TLR prediction time (100 unknowns).

Paper-scale modeled series on Shaheen-2/256 nodes plus a measured
host-scale prediction benchmark across variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.experiments.common import bench_scale
from repro.experiments.fig5 import measured_series, model_series
from repro.kernels import MaternCovariance
from repro.mle import predict


def test_fig5_model_series(benchmark, outdir):
    """Paper-scale modeled prediction table."""
    table = benchmark.pedantic(model_series, rounds=1, iterations=1)
    table.save("fig5_model_shaheen_256nodes")
    assert len(table.rows) >= 1


def test_fig5_measured_host(benchmark, outdir):
    """Measured host-scale prediction table."""
    table = benchmark.pedantic(measured_series, rounds=1, iterations=1)
    table.save("fig5_measured_host")
    assert len(table.rows) >= 1


@pytest.mark.parametrize("variant,acc", [("full-block", None), ("tlr", 1e-7)])
def test_fig5_prediction_kernel(benchmark, variant, acc):
    """pytest-benchmark timing of one 100-unknown prediction."""
    n, m = (1024, 100) if bench_scale() == "quick" else (2500, 100)
    model = MaternCovariance(1.0, 0.1, 0.5)
    locs = generate_irregular_grid(n + m, seed=0)
    locs, _, _ = sort_locations(locs)
    z = sample_gaussian_field(locs, model, seed=1)
    rng = np.random.default_rng(2)
    hold = rng.choice(n + m, size=m, replace=False)
    mask = np.ones(n + m, dtype=bool)
    mask[hold] = False

    pred = benchmark(
        predict,
        locs[mask],
        z[mask],
        locs[hold],
        model,
        variant=variant,
        acc=acc,
        tile_size=128,
    )
    assert pred.shape == (m,)
