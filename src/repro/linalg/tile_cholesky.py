"""Task-based dense tile Cholesky (the paper's **Full-tile** variant).

Right-looking factorization over a lower-symmetric :class:`TileMatrix`:

    for k:  POTRF(A[k,k])
            TRSM(A[k,k], A[i,k])            for i > k
            SYRK(A[i,k], A[i,i])            for i > k
            GEMM(A[i,k], A[j,k], A[i,j])    for k < j < i

Tasks in iteration ``k`` are given priority ``nt - k`` scaled by kernel
criticality (POTRF > TRSM > updates), the standard look-ahead heuristic
used by Chameleon so panel tasks of later iterations are not starved.

The factorization can run serially (``runtime=None``) or through the
:class:`~repro.runtime.Runtime`, which is exactly how ExaGeoStat drives
Chameleon through StarPU.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import NotPositiveDefiniteError, ShapeError
from ..runtime import AccessMode, Runtime
from .tile_matrix import TileMatrix
from .tile_ops import gemm_codelet, potrf_codelet, syrk_codelet, trsm_codelet

__all__ = ["tile_cholesky", "logdet_from_tile_factor"]


def _serial_tile_cholesky(a: TileMatrix) -> None:
    nt = a.nt
    for k in range(nt):
        potrf_codelet(a.tile(k, k))
        lkk = a.tile(k, k)
        for i in range(k + 1, nt):
            trsm_codelet(lkk, a.tile(i, k))
        for i in range(k + 1, nt):
            aik = a.tile(i, k)
            syrk_codelet(aik, a.tile(i, i))
            for j in range(k + 1, i):
                gemm_codelet(aik, a.tile(j, k), a.tile(i, j))


def _parallel_tile_cholesky(
    a: TileMatrix,
    runtime: Runtime,
    handles: Optional[Dict[Tuple[int, int], object]] = None,
) -> None:
    nt = a.nt
    if handles is None:
        handles = {}
        for i, j, tile in a.iter_stored():
            handles[(i, j)] = runtime.register(tile, name=f"A[{i},{j}]")
    R, RW = AccessMode.READ, AccessMode.READWRITE
    for k in range(nt):
        base = nt - k
        runtime.insert_task(
            potrf_codelet,
            [(handles[(k, k)], RW)],
            name=f"potrf({k})",
            priority=3 * base,
        )
        for i in range(k + 1, nt):
            runtime.insert_task(
                trsm_codelet,
                [(handles[(k, k)], R), (handles[(i, k)], RW)],
                name=f"trsm({i},{k})",
                priority=2 * base,
            )
        for i in range(k + 1, nt):
            runtime.insert_task(
                syrk_codelet,
                [(handles[(i, k)], R), (handles[(i, i)], RW)],
                name=f"syrk({i},{k})",
                priority=base,
            )
            for j in range(k + 1, i):
                runtime.insert_task(
                    gemm_codelet,
                    [(handles[(i, k)], R), (handles[(j, k)], R), (handles[(i, j)], RW)],
                    name=f"gemm({i},{j},{k})",
                    priority=base,
                )
    try:
        runtime.wait_all()
    finally:
        # Drop the completed task graph so long-lived runtimes (one per MLE
        # fit, many factorizations) do not accumulate bookkeeping.
        runtime.tracker.reset()


def tile_cholesky(
    a: TileMatrix,
    runtime: Optional[Runtime] = None,
    *,
    handles: Optional[Dict[Tuple[int, int], object]] = None,
) -> TileMatrix:
    """Factor a lower-symmetric tile matrix in place: ``A = L L^T``.

    Parameters
    ----------
    a:
        SPD matrix as a ``symmetric_lower`` :class:`TileMatrix`. Mutated
        into its lower tile Cholesky factor.
    runtime:
        Optional task runtime; serial loop when omitted.
    handles:
        Pre-registered ``(i, j) -> DataHandle`` map for ``a``'s tiles
        (requires ``runtime``). Pass the handles returned by
        :func:`~repro.linalg.generation.insert_tile_generation_tasks` to
        fuse generation into this factorization's task graph: each
        factorization task then depends on its tile's generation task
        rather than on a global barrier.

    Returns
    -------
    The same object, now holding the factor.
    """
    if not a.symmetric_lower:
        raise ShapeError("tile_cholesky expects a symmetric_lower TileMatrix")
    if runtime is None:
        if handles is not None:
            raise ShapeError("handles require a runtime")
        _serial_tile_cholesky(a)
    else:
        _parallel_tile_cholesky(a, runtime, handles)
    return a


def logdet_from_tile_factor(factor: TileMatrix) -> float:
    """``log |A|`` from a tile Cholesky factor (sum over diagonal tiles).

    Raises
    ------
    NotPositiveDefiniteError
        If any diagonal entry of the factor is not strictly positive —
        taking ``log`` would otherwise silently turn the log-likelihood
        into NaN instead of triggering the evaluator's penalty path.
    """
    total = 0.0
    for k in range(factor.nt):
        diag = np.diagonal(factor.tile(k, k))
        if not np.all(diag > 0.0):
            raise NotPositiveDefiniteError(
                f"tile Cholesky factor has a non-positive diagonal in tile ({k},{k})"
            )
        total += float(np.sum(np.log(diag)))
    return 2.0 * total
