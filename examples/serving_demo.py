#!/usr/bin/env python
"""Fit → save → serve: the full serving-subsystem workflow.

The paper's workflow fits the Matérn model once and then predicts many
unknown measurements from it. This demo carries that workflow across a
process boundary the way a production deployment would:

1. **Fit** a Matérn model by TLR MLE on 600 training points.
2. **Save** the fit as a model bundle (``meta.json`` + ``arrays.npz``)
   — theta, kernel spec, Morton-ordered locations, observations, and
   the ``Sigma_22`` Cholesky factor.
3. **Serve**: a fresh :class:`~repro.serving.ModelRegistry` (which
   never saw the fit) loads the bundle lazily, and an asyncio
   :class:`~repro.serving.PredictionService` handles a swarm of
   concurrent clients, coalescing their requests into a handful of
   engine calls.
4. **Verify**: served predictions are bit-identical to calling
   ``MLEstimator.predict`` in the fitting process.

Run:  python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator
from repro.serving import ModelRegistry, PredictionService

N_TRAIN = 600
N_CLIENTS = 12
TARGETS_PER_CLIENT = 25


async def serve(bundle_path: Path, client_targets, references) -> None:
    """Spin up registry + service, run concurrent clients, report metrics."""
    with ModelRegistry(max_models=4) as registry:
        registry.register("matern-tlr", bundle_path)
        async with PredictionService(
            registry, batch_window=0.01, max_batch=32
        ) as service:

            async def client(idx: int) -> float:
                t0 = time.perf_counter()
                pred = await service.predict(
                    "matern-tlr", client_targets[idx], deadline=10.0
                )
                latency = time.perf_counter() - t0
                assert np.array_equal(pred, references[idx]), "serving must be bit-identical"
                return latency

            latencies = await asyncio.gather(*[client(i) for i in range(N_CLIENTS)])
            snapshot = service.metrics.snapshot()

    counters = snapshot["counters"]
    print(f"served {counters['completed']} requests from {N_CLIENTS} concurrent clients")
    print(
        f"engine calls: {counters['engine_calls']} "
        f"({counters.get('coalesced_requests', 0)} requests coalesced)"
    )
    print(
        f"client latency: median {sorted(latencies)[len(latencies) // 2] * 1e3:.1f} ms, "
        f"max {max(latencies) * 1e3:.1f} ms"
    )
    print("every prediction bit-identical to the fitting process: yes")


def main() -> None:
    rng = np.random.default_rng(7)
    locs, _, _ = sort_locations(generate_irregular_grid(N_TRAIN, seed=0))
    truth = MaternCovariance(1.0, 0.12, 0.5)
    z = sample_gaussian_field(locs, truth, seed=1)

    # -- 1. fit
    est = MLEstimator(locs, z, variant="tlr", acc=1e-7, tile_size=128)
    fit = est.fit(maxiter=60)
    print(f"fitted theta = {np.round(fit.theta, 4)}  ({fit.n_evals} evaluations)")

    # Per-client target grids, plus the in-process reference predictions.
    client_targets = [
        np.ascontiguousarray(rng.random((TARGETS_PER_CLIENT, 2)))
        for _ in range(N_CLIENTS)
    ]
    references = [est.predict(fit, t) for t in client_targets]

    with tempfile.TemporaryDirectory() as tmp:
        # -- 2. save: the bundle is all a serving worker ever needs
        bundle_path = est.save_fit(fit, Path(tmp) / "matern-tlr.bundle")
        size_kb = sum(f.stat().st_size for f in bundle_path.iterdir()) / 1024
        print(f"saved bundle to {bundle_path.name} ({size_kb:.0f} KiB)")

        # -- 3 & 4. serve from a registry that never saw the fit, verify
        asyncio.run(serve(bundle_path, client_targets, references))


if __name__ == "__main__":
    main()
