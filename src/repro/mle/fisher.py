"""Observed-information standard errors for the Matérn MLE.

After computing ``theta_hat``, its sampling uncertainty is estimated
from the observed Fisher information — the negative Hessian of the
log-likelihood at the optimum — inverted to an asymptotic covariance.
The Hessian is formed by central finite differences of the same
:class:`~repro.mle.loglik.LikelihoodEvaluator` used for the fit, so the
uncertainty respects the chosen substrate (full or TLR). This quantifies
the spread the paper visualizes with its Figure 6 boxplots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import OptimizationError
from ..utils.validation import as_float_array

__all__ = ["FisherInformation", "observed_information"]


@dataclass
class FisherInformation:
    """Observed information and derived uncertainty at ``theta_hat``.

    Attributes
    ----------
    theta:
        Evaluation point (the MLE).
    hessian:
        Central-difference Hessian of the log-likelihood.
    covariance:
        Inverse of the negative Hessian (asymptotic covariance of the
        MLE); ``None`` when the information matrix is not positive
        definite (flat or misspecified directions).
    """

    theta: np.ndarray
    hessian: np.ndarray
    covariance: np.ndarray | None

    @property
    def standard_errors(self) -> np.ndarray:
        """Asymptotic standard errors (NaN where covariance is invalid)."""
        if self.covariance is None:
            return np.full(self.theta.shape, np.nan)
        diag = np.diagonal(self.covariance).copy()
        diag[diag < 0] = np.nan
        return np.sqrt(diag)

    def confidence_interval(self, level: float = 0.95) -> np.ndarray:
        """``(p, 2)`` normal-approximation confidence intervals."""
        from scipy.stats import norm

        if not (0.0 < level < 1.0):
            raise OptimizationError(f"level must lie in (0, 1), got {level}")
        half = norm.ppf(0.5 + level / 2.0) * self.standard_errors
        return np.column_stack([self.theta - half, self.theta + half])


def observed_information(
    loglik: Callable[[np.ndarray], float],
    theta: Sequence[float],
    *,
    rel_step: float = 1e-4,
) -> FisherInformation:
    """Observed Fisher information by central finite differences.

    Parameters
    ----------
    loglik:
        Log-likelihood callable (e.g. a
        :class:`~repro.mle.loglik.LikelihoodEvaluator`).
    theta:
        Point of evaluation — the MLE. All entries must be positive
        (Matérn parameters); steps are relative to each entry.
    rel_step:
        Relative finite-difference step.

    Notes
    -----
    Uses the standard 4·p²-ish stencil: diagonal terms from the 3-point
    second difference, off-diagonal from the 4-point cross difference.
    Cost is ``2p² + 1`` likelihood evaluations for ``p`` parameters.
    """
    th = as_float_array(theta, "theta")
    p = th.size
    if np.any(th <= 0):
        raise OptimizationError("observed_information expects positive parameters")
    h = rel_step * np.abs(th)
    f0 = float(loglik(th))
    hess = np.empty((p, p))

    def f(offsets: dict[int, float]) -> float:
        x = th.copy()
        for idx, delta in offsets.items():
            x[idx] += delta
        return float(loglik(x))

    for i in range(p):
        fp = f({i: h[i]})
        fm = f({i: -h[i]})
        hess[i, i] = (fp - 2.0 * f0 + fm) / h[i] ** 2
        for j in range(i + 1, p):
            fpp = f({i: h[i], j: h[j]})
            fpm = f({i: h[i], j: -h[j]})
            fmp = f({i: -h[i], j: h[j]})
            fmm = f({i: -h[i], j: -h[j]})
            hess[i, j] = hess[j, i] = (fpp - fpm - fmp + fmm) / (4.0 * h[i] * h[j])

    info = -hess
    covariance: np.ndarray | None
    try:
        # Information must be SPD for a valid asymptotic covariance.
        chol = np.linalg.cholesky(info)
        inv_chol = np.linalg.inv(chol)
        covariance = inv_chol.T @ inv_chol
    except np.linalg.LinAlgError:
        covariance = None
    return FisherInformation(theta=th, hessian=hess, covariance=covariance)
