"""Tests for covariance model classes and tile generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.kernels import (
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
    PoweredExponentialCovariance,
    WhittleCovariance,
)


class TestMaternCovariance:
    def test_matrix_symmetric_psd(self, small_locations):
        cov = MaternCovariance(2.0, 0.1, 0.5)
        sigma = cov.matrix(small_locations)
        np.testing.assert_allclose(sigma, sigma.T, atol=1e-12)
        assert np.linalg.eigvalsh(sigma).min() > -1e-8
        np.testing.assert_allclose(np.diag(sigma), 2.0)

    def test_call_scales_by_variance(self):
        cov = MaternCovariance(3.0, 0.1, 0.5)
        assert float(cov(np.array(0.0))) == pytest.approx(3.0)

    def test_with_theta_returns_new_model(self):
        cov = MaternCovariance(1.0, 0.1, 0.5, metric="gcd", nugget=0.01)
        cov2 = cov.with_theta([2.0, 0.2, 1.0])
        assert cov2 is not cov
        assert cov2.variance == 2.0 and cov2.range_ == 0.2 and cov2.smoothness == 1.0
        assert cov2.metric == "gcd" and cov2.nugget == 0.01
        # Original untouched.
        assert cov.variance == 1.0

    def test_with_theta_wrong_length(self):
        with pytest.raises(ShapeError):
            MaternCovariance().with_theta([1.0, 0.1])

    def test_theta_roundtrip(self):
        cov = MaternCovariance(1.5, 0.25, 0.75)
        np.testing.assert_allclose(cov.theta, [1.5, 0.25, 0.75])

    def test_invalid_params(self):
        with pytest.raises(ShapeError):
            MaternCovariance(-1.0, 0.1, 0.5)
        with pytest.raises(ShapeError):
            MaternCovariance(1.0, 0.0, 0.5)


class TestTileGeneration:
    def test_tile_equals_matrix_block(self, small_locations):
        cov = MaternCovariance(1.0, 0.1, 0.5)
        sigma = cov.matrix(small_locations)
        tile = cov.tile(small_locations, slice(32, 96), slice(0, 32))
        np.testing.assert_allclose(tile, sigma[32:96, 0:32], atol=1e-12)

    def test_tile_with_nugget_diagonal_only(self, small_locations):
        cov = MaternCovariance(1.0, 0.1, 0.5, nugget=0.5)
        sigma = cov.matrix(small_locations)
        diag_tile = cov.tile(small_locations, slice(0, 64), slice(0, 64))
        np.testing.assert_allclose(diag_tile, sigma[:64, :64], atol=1e-12)
        off_tile = cov.tile(small_locations, slice(64, 128), slice(0, 64))
        np.testing.assert_allclose(off_tile, sigma[64:128, :64], atol=1e-12)

    def test_cross_covariance(self, small_locations, rng):
        cov = MaternCovariance(1.0, 0.1, 0.5, nugget=0.3)
        other = rng.random((10, 2))
        cross = cov.matrix(small_locations, other)
        assert cross.shape == (small_locations.shape[0], 10)
        # Nugget must not leak into cross-covariances.
        assert np.all(cross <= 1.0 + 1e-12)


class TestNamedFamilies:
    def test_exponential_is_matern_half(self, small_locations):
        e = ExponentialCovariance(1.3, 0.2)
        m = MaternCovariance(1.3, 0.2, 0.5)
        np.testing.assert_allclose(
            e.matrix(small_locations), m.matrix(small_locations), atol=1e-12
        )
        assert e.param_names == ("variance", "range_")
        np.testing.assert_allclose(e.theta, [1.3, 0.2])

    def test_whittle_is_matern_one(self, small_locations):
        w = WhittleCovariance(1.0, 0.15)
        m = MaternCovariance(1.0, 0.15, 1.0)
        np.testing.assert_allclose(
            w.matrix(small_locations), m.matrix(small_locations), atol=1e-12
        )

    def test_gaussian_model(self, small_locations):
        g = GaussianCovariance(2.0, 0.2)
        sigma = g.matrix(small_locations)
        np.testing.assert_allclose(np.diag(sigma), 2.0)
        assert np.linalg.eigvalsh(sigma).min() > -1e-6

    def test_powered_exponential(self):
        p1 = PoweredExponentialCovariance(1.0, 0.2, 1.0)
        e = ExponentialCovariance(1.0, 0.2)
        r = np.linspace(0, 1, 20)
        np.testing.assert_allclose(p1(r), e(r), atol=1e-12)
        with pytest.raises(ShapeError):
            PoweredExponentialCovariance(1.0, 0.2, 2.5)

    def test_two_param_with_theta(self):
        e = ExponentialCovariance(1.0, 0.1)
        e2 = e.with_theta([2.0, 0.3])
        assert isinstance(e2, ExponentialCovariance)
        assert e2.smoothness == 0.5
