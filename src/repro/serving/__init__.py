"""Serving subsystem: persisted fits, a model registry, and an async service.

The paper's end goal is prediction: ExaGeoStat fits the Matérn model
once, then kriges many unknown measurements from it (§III, Fig. 5).
This package turns the PR-2 :class:`~repro.mle.prediction_engine.
PredictionEngine` — fast but trapped inside the process that ran
``fit()`` — into a serving story:

* :mod:`repro.serving.store` — :class:`ModelBundle`, a ``meta.json`` +
  ``arrays.npz`` persistence format for fitted models (theta, kernel
  spec, Morton-ordered locations, observations, substrate config, and
  optionally the ``Sigma_22`` Cholesky factor and distance caches), so
  a fit survives restarts and ships to serving workers;
* :mod:`repro.serving.registry` — :class:`ModelRegistry`, a thread-safe
  LRU-bounded keeper of warm engines, sharding models across runtime
  worker pools;
* :mod:`repro.serving.service` — :class:`PredictionService`, an asyncio
  micro-batcher that coalesces concurrent predict requests for one
  model into single stacked-target / multi-RHS engine calls, with
  backpressure and per-request deadlines;
* :mod:`repro.serving.metrics` — :class:`ServiceMetrics`, the counter,
  latency, and arrival-rate surface the benchmarks report from;
* :mod:`repro.serving.wire` — the ``application/x-repro-npy`` framed
  binary format: raw little-endian float64 payloads, streamed in
  bounded chunks, bit-identical where strict JSON cannot even
  represent the values (NaN/inf) and several times smaller on the
  wire;
* :mod:`repro.serving.server` — :class:`ServingServer`, an HTTP
  front-end that spawns worker *processes* (each hosting a registry +
  service), shards model ids onto them with the registry's stable
  hash, and exposes predict / metrics / hot-reload endpoints over
  JSON or the negotiated binary transport, including model
  register-by-upload;
* :mod:`repro.serving.client` — :class:`ServingClient`, the matching
  stdlib HTTP client with typed error mapping, per-call transport
  selection, and pipelined keep-alive predicts.

Fit → save → serve (in process):

>>> est = MLEstimator(locs, z, variant="tlr")          # doctest: +SKIP
>>> fit = est.fit()                                    # doctest: +SKIP
>>> est.save_fit(fit, "fits/soil.bundle")              # doctest: +SKIP
>>> registry = ModelRegistry().register("soil", "fits/soil.bundle")  # doctest: +SKIP
>>> async with PredictionService(registry) as svc:     # doctest: +SKIP
...     pred = await svc.predict("soil", targets)

Over HTTP, across worker processes:

>>> with ServingServer({"soil": "fits/soil.bundle"}) as server:  # doctest: +SKIP
...     client = ServingClient(server.url)
...     pred = client.predict("soil", targets)         # bit-identical
...     client.reload("soil")                          # hot-swap the bundle
"""

from .client import ServingClient
from .metrics import ServiceMetrics
from .registry import ModelRegistry
from .server import ServingServer
from .service import BatchPolicy, PredictionService
from .store import ModelBundle, bundle_from_fit, load_model, save_model

__all__ = [
    "BatchPolicy",
    "ModelBundle",
    "ModelRegistry",
    "PredictionService",
    "ServiceMetrics",
    "ServingClient",
    "ServingServer",
    "bundle_from_fit",
    "load_model",
    "save_model",
]
