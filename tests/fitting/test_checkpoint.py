"""Checkpoint persistence: a resumed fit must equal the uninterrupted one.

The headline property: for ANY checkpoint iteration ``k`` of a fit,
``save_state`` → ``load_state`` → ``nelder_mead(state=...)`` reaches the
same theta, log-likelihood, history, and evaluation counts as the run
that was never interrupted — bit for bit. That is the contract the
orchestrator's kill-recovery is built on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CheckpointError
from repro.fitting.checkpoint import Checkpointer, load_state, save_state
from repro.optim.neldermead import nelder_mead


def rosenbrock(x):
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


LO, HI = [-2.0, -2.0], [2.0, 2.0]
NM_OPTS = dict(maxiter=200, ftol=1e-10, xtol=1e-10)


@pytest.fixture(scope="module")
def full_run():
    states = []
    res = nelder_mead(
        rosenbrock, [-0.5, 0.5], LO, HI, state_callback=states.append, **NM_OPTS
    )
    assert states
    return res, states


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0))
    def test_property_resume_through_disk_matches_uninterrupted(
        self, tmp_path_factory, full_run, frac
    ):
        """Persist the state at any fraction of the run, reload it from
        disk, resume — identical outcome to never having stopped."""
        full, states = full_run
        k = min(len(states) - 1, int(frac * len(states)))
        path = tmp_path_factory.mktemp("ckpt") / "state.npz"
        save_state(path, states[k])
        restored = load_state(path)
        np.testing.assert_array_equal(restored.simplex, states[k].simplex)
        np.testing.assert_array_equal(restored.fvals, states[k].fvals)
        assert restored.iteration == states[k].iteration
        assert restored.nfev == states[k].nfev
        resumed = nelder_mead(rosenbrock, None, LO, HI, state=restored, **NM_OPTS)
        np.testing.assert_array_equal(resumed.x, full.x)
        assert resumed.fun == full.fun
        assert resumed.nfev == full.nfev
        assert resumed.nit == full.nit
        assert len(resumed.history) == len(full.history)
        for a, b in zip(resumed.history, full.history):
            assert a.iteration == b.iteration and a.fun == b.fun
            np.testing.assert_array_equal(a.theta, b.theta)

    def test_history_survives_the_disk_round_trip(self, full_run, tmp_path):
        _, states = full_run
        state = states[min(10, len(states) - 1)]
        path = tmp_path / "state.npz"
        save_state(path, state)
        restored = load_state(path)
        assert len(restored.history) == len(state.history)
        for a, b in zip(restored.history, state.history):
            assert a.iteration == b.iteration and a.fun == b.fun
            np.testing.assert_array_equal(a.theta, b.theta)

    def test_missing_checkpoint_reads_as_none(self, tmp_path):
        assert load_state(tmp_path / "nope.npz") is None

    def test_truncated_checkpoint_raises_typed_error(self, full_run, tmp_path):
        _, states = full_run
        path = tmp_path / "state.npz"
        save_state(path, states[0])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_garbage_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "state.npz"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            load_state(path)

    def test_atomic_write_leaves_no_temp_files(self, full_run, tmp_path):
        _, states = full_run
        path = tmp_path / "state.npz"
        for state in states[:5]:
            save_state(path, state)
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]
        assert load_state(path).iteration == states[4].iteration


class TestCheckpointer:
    def test_every_n_policy(self, tmp_path):
        path = tmp_path / "c.npz"
        ckpt = Checkpointer(path, every=5)
        nelder_mead(
            rosenbrock, [-0.5, 0.5], LO, HI, maxiter=23, state_callback=ckpt
        )
        # Iterations 5, 10, 15, 20 are persisted (the simplex updates on
        # each of them for this objective).
        assert ckpt.n_saved == 4
        assert ckpt.last_iteration == 20
        assert load_state(path).iteration == 20

    def test_resume_replays_at_most_every_minus_one_iterations(self, tmp_path):
        full = nelder_mead(rosenbrock, [-0.5, 0.5], LO, HI, **NM_OPTS)
        ckpt = Checkpointer(tmp_path / "c.npz", every=7)
        nelder_mead(
            rosenbrock, [-0.5, 0.5], LO, HI, state_callback=ckpt, **NM_OPTS
        )
        resumed = nelder_mead(
            rosenbrock, None, LO, HI, state=ckpt.load(), **NM_OPTS
        )
        np.testing.assert_array_equal(resumed.x, full.x)
        assert resumed.fun == full.fun

    def test_interval_validated(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path / "c.npz", every=0)
