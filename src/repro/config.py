"""Global configuration for the :mod:`repro` library.

The paper's software stack exposes a handful of knobs that matter for both
performance and accuracy: the tile size ``nb``, the TLR accuracy threshold,
the compression method, and the number of worker threads used by the
runtime. This module centralizes their defaults and offers a context
manager for scoped overrides, so experiments can run hermetically.

Examples
--------
>>> from repro.config import get_config, use_config
>>> get_config().tile_size
250
>>> with use_config(tile_size=100, tlr_accuracy=1e-7):
...     get_config().tile_size
100
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from typing import Iterator

from .exceptions import ConfigurationError

__all__ = ["Config", "get_config", "set_config", "use_config", "reset_config"]


_VALID_COMPRESSION = ("svd", "rsvd", "aca")
_VALID_TRUNCATION = ("relative", "absolute")
_VALID_ENGINE = ("threads", "serial")


@dataclasses.dataclass
class Config:
    """Library-wide default parameters.

    Attributes
    ----------
    tile_size:
        Default tile size ``nb`` for tile and TLR algorithms. The paper
        tunes ``nb = 560`` for dense tiles and ``nb = 1900`` for TLR on
        Shaheen-2; at Python scale a smaller default keeps per-tile Python
        overhead amortized while leaving several tiles per matrix.
    tlr_accuracy:
        Default TLR accuracy threshold ``eps`` (the paper sweeps 1e-5,
        1e-7, 1e-9, 1e-12).
    compression_method:
        Per-tile compressor: ``"svd"`` (deterministic, reference),
        ``"rsvd"`` (adaptive randomized), or ``"aca"`` (adaptive cross
        approximation).
    truncation:
        ``"relative"`` keeps singular values above ``eps * sigma_1``;
        ``"absolute"`` keeps singular values above ``eps``.
    num_workers:
        Worker threads for the task runtime. ``0`` means "auto"
        (``os.cpu_count()``).
    runtime_engine:
        ``"threads"`` for the asynchronous pool, ``"serial"`` for
        deterministic in-order execution (debugging, tests).
    cache_distances:
        Reuse per-tile distance blocks across likelihood evaluations of
        one fit (locations are fixed while theta varies, so the
        ``pairwise_distance`` work is a one-time cost). Costs one extra
        copy of the lower-triangular distance data in memory; values are
        bit-identical to the uncached path. The same knob governs the
        prediction path: a
        :class:`~repro.mle.prediction_engine.PredictionEngine` caches
        ``Sigma_22`` distance blocks and ``Sigma_12`` cross-distance
        matrices across predict calls.
    parallel_generation:
        Generate (and, for TLR, compress) covariance tiles as runtime
        tasks fused into the factorization task graph instead of a
        serial loop with a barrier before the Cholesky. Only takes
        effect when an evaluator — or a prediction engine — is given a
        :class:`~repro.runtime.Runtime`.
    compression_batch:
        Number of TLR tiles compressed per runtime task in the fused
        generation path. With small tiles (``nb`` small relative to
        ``nt``) each per-tile SVD is cheap and per-task overhead
        dominates; batching several tiles into one task amortizes it.
        ``1`` (the default) keeps one task per tile. Values are
        identical for any batch size.
    cholesky_jitter:
        Diagonal regularization added by samplers (not by the MLE path)
        to keep synthetic covariance factorizations stable.
    rng_seed:
        Default seed used when an API that needs randomness is called
        without an explicit generator.
    serving_batch_window:
        Seconds the :class:`~repro.serving.service.PredictionService`
        micro-batcher waits after the first queued request to coalesce
        concurrent requests for the same model into one engine call.
        ``0`` dispatches immediately (no coalescing window).
    serving_max_batch:
        Upper bound on requests coalesced into one engine call.
    serving_queue_size:
        Per-model bound on queued requests; submissions beyond it are
        rejected with ``ServiceOverloadedError`` (backpressure).
    serving_max_models:
        Engines the :class:`~repro.serving.registry.ModelRegistry`
        keeps warm (least-recently-used eviction; evicted models are
        rehydrated from their bundles on the next request).
    serving_workers:
        Worker processes a :class:`~repro.serving.server.ServingServer`
        spawns; each hosts its own registry + service and owns the
        models hashed onto its shard.
    serving_adaptive_window:
        Learn each model's coalescing window from its recent arrival
        rate (recorded in :class:`~repro.serving.metrics.ServiceMetrics`)
        instead of using the fixed ``serving_batch_window``: the window
        approximates the time a batch takes to fill at the observed
        rate, capped at ``serving_max_window``. Models with no recent
        traffic fall back to ``serving_batch_window``.
    serving_max_window:
        Upper bound on the *learned* adaptive coalescing window, so a
        sparse arrival history can never hold requests open for long.
        Explicitly configured windows (the service default and
        per-model policies) are honored verbatim.
    fit_workers:
        Worker *processes* a
        :class:`~repro.fitting.orchestrator.FitOrchestrator` runs fit
        tasks on — the concurrency cap across all queued jobs and the
        fan-out width for a single job's multistart search.
    fit_checkpoint_every:
        Iterations between on-disk Nelder-Mead checkpoints of a running
        fit task. ``1`` checkpoints every iteration (cheapest possible
        resume, most I/O); larger values amortize the write.
    fit_max_restarts:
        Times the orchestrator respawns each fit task (one multistart
        leg) whose worker process died abnormally (killed, OOM) before
        declaring the job failed — counted per task, so one machine-wide
        event that kills every leg of a job once does not exhaust the
        budget. Restarts resume from the task's last checkpoint, so
        paid iterations are never re-fit from scratch.
    breaker_threshold:
        Consecutive infrastructure failures that trip a serving circuit
        breaker (per model in the service, per worker in the router)
        from closed to open. Typed per-request errors (bad shapes,
        unknown models, expired deadlines) do not count.
    breaker_recovery:
        Seconds an open circuit breaker waits before moving to
        half-open and admitting probe traffic.
    serving_max_inflight:
        Server-wide cap on concurrently in-flight HTTP requests; beyond
        it, requests are shed immediately with 503 + ``Retry-After``
        (``LoadShedError``) instead of queueing without bound.
    serving_max_body:
        Byte cap on a single HTTP request body (JSON or binary). The
        router rejects larger declared bodies with 413
        (``PayloadTooLargeError``) *before* reading them, and the
        :class:`~repro.serving.client.ServingClient` refuses to
        JSON-encode a body over the cap with a message pointing at the
        binary transport (``transport="binary"``), whose framed float64
        payload is several times smaller and streamed.
    telemetry_enabled:
        Arm the :mod:`~repro.telemetry` layer in this process: ``with
        span(...)`` blocks record into the bounded per-process ring,
        ``ServiceMetrics`` mirrors into the metrics registry, and a
        :class:`~repro.serving.server.ServingServer` propagates the
        setting to its worker processes (serving ``/v1/trace/<id>``
        and ``/v1/metrics?format=prometheus``). Off by default: the
        disabled hooks cost nanoseconds, like the fault-injection
        sites. ``REPRO_TELEMETRY=1`` in the environment overrides this
        knob — that is how spawned workers and fit legs inherit it.
    telemetry_max_spans:
        Bound on spans kept per process (the in-memory ring drops the
        oldest and counts drops; the optional JSONL sink stops writing
        past the bound). Also bounds the runtime's per-``Runtime``
        task-event ring when telemetry arms it implicitly.
    auto_tune:
        Opt-in self-tuning: when the caller leaves ``tile_size`` at its
        default, :class:`~repro.mle.estimator.MLEstimator` and bundle
        registration (:class:`~repro.serving.store.ModelBundle`) adopt
        the tile size planned by the calibrated performance model
        (:mod:`repro.perfmodel.planner`) for the problem's ``n`` and
        substrate instead of the static ``tile_size`` default. The plan
        comes from ``autotune_profile`` when set, else from a cached
        quick in-process calibration. Planning failures fall back
        silently to the static default — auto-tuning must never make a
        fit fail. Off by default.
    autotune_profile:
        Path of a persisted
        :class:`~repro.perfmodel.autotune.CalibrationProfile` to plan
        from (created with ``python -m repro.perfmodel.autotune --out
        ...``). Empty string (the default) means "calibrate this host
        in-process on first use and cache the result for the process
        lifetime". If the path does not exist yet it is created by
        running the quick probe suite and saved for reuse.
    """

    tile_size: int = 250
    tlr_accuracy: float = 1e-9
    compression_method: str = "svd"
    truncation: str = "relative"
    num_workers: int = 0
    runtime_engine: str = "threads"
    cache_distances: bool = True
    parallel_generation: bool = True
    compression_batch: int = 1
    cholesky_jitter: float = 1e-10
    rng_seed: int = 2018
    serving_batch_window: float = 0.002
    serving_max_batch: int = 64
    serving_queue_size: int = 256
    serving_max_models: int = 8
    serving_workers: int = 2
    serving_adaptive_window: bool = False
    serving_max_window: float = 0.05
    fit_workers: int = 2
    fit_checkpoint_every: int = 5
    fit_max_restarts: int = 2
    breaker_threshold: int = 5
    breaker_recovery: float = 2.0
    serving_max_inflight: int = 128
    serving_max_body: int = 64 * 1024 * 1024
    telemetry_enabled: bool = False
    telemetry_max_spans: int = 10_000
    auto_tune: bool = False
    autotune_profile: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any field is invalid."""
        if self.tile_size < 2:
            raise ConfigurationError(f"tile_size must be >= 2, got {self.tile_size}")
        if not (0.0 < self.tlr_accuracy < 1.0):
            raise ConfigurationError(
                f"tlr_accuracy must be in (0, 1), got {self.tlr_accuracy}"
            )
        if self.compression_method not in _VALID_COMPRESSION:
            raise ConfigurationError(
                f"compression_method must be one of {_VALID_COMPRESSION}, "
                f"got {self.compression_method!r}"
            )
        if self.truncation not in _VALID_TRUNCATION:
            raise ConfigurationError(
                f"truncation must be one of {_VALID_TRUNCATION}, got {self.truncation!r}"
            )
        if self.num_workers < 0:
            raise ConfigurationError(
                f"num_workers must be >= 0 (0 = auto), got {self.num_workers}"
            )
        if self.runtime_engine not in _VALID_ENGINE:
            raise ConfigurationError(
                f"runtime_engine must be one of {_VALID_ENGINE}, got {self.runtime_engine!r}"
            )
        if self.compression_batch < 1:
            raise ConfigurationError(
                f"compression_batch must be >= 1, got {self.compression_batch}"
            )
        if self.cholesky_jitter < 0:
            raise ConfigurationError("cholesky_jitter must be >= 0")
        if self.serving_batch_window < 0:
            raise ConfigurationError(
                f"serving_batch_window must be >= 0, got {self.serving_batch_window}"
            )
        if self.serving_max_batch < 1:
            raise ConfigurationError(
                f"serving_max_batch must be >= 1, got {self.serving_max_batch}"
            )
        if self.serving_queue_size < 1:
            raise ConfigurationError(
                f"serving_queue_size must be >= 1, got {self.serving_queue_size}"
            )
        if self.serving_max_models < 1:
            raise ConfigurationError(
                f"serving_max_models must be >= 1, got {self.serving_max_models}"
            )
        if self.serving_workers < 1:
            raise ConfigurationError(
                f"serving_workers must be >= 1, got {self.serving_workers}"
            )
        if self.serving_max_window < 0:
            raise ConfigurationError(
                f"serving_max_window must be >= 0, got {self.serving_max_window}"
            )
        if self.fit_workers < 1:
            raise ConfigurationError(
                f"fit_workers must be >= 1, got {self.fit_workers}"
            )
        if self.fit_checkpoint_every < 1:
            raise ConfigurationError(
                f"fit_checkpoint_every must be >= 1, got {self.fit_checkpoint_every}"
            )
        if self.fit_max_restarts < 0:
            raise ConfigurationError(
                f"fit_max_restarts must be >= 0, got {self.fit_max_restarts}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_recovery <= 0:
            raise ConfigurationError(
                f"breaker_recovery must be > 0, got {self.breaker_recovery}"
            )
        if self.serving_max_inflight < 1:
            raise ConfigurationError(
                f"serving_max_inflight must be >= 1, got {self.serving_max_inflight}"
            )
        if self.serving_max_body < 1024:
            raise ConfigurationError(
                f"serving_max_body must be >= 1024 bytes, got {self.serving_max_body}"
            )
        if self.telemetry_max_spans < 1:
            raise ConfigurationError(
                f"telemetry_max_spans must be >= 1, got {self.telemetry_max_spans}"
            )
        if not isinstance(self.auto_tune, bool):
            raise ConfigurationError(
                f"auto_tune must be a bool, got {self.auto_tune!r}"
            )
        if not isinstance(self.autotune_profile, str):
            raise ConfigurationError(
                "autotune_profile must be a path string ('' = in-process "
                f"calibration), got {self.autotune_profile!r}"
            )

    def resolved_workers(self) -> int:
        """Number of worker threads after resolving the ``0 = auto`` rule."""
        if self.num_workers > 0:
            return self.num_workers
        env = os.environ.get("REPRO_NUM_WORKERS")
        if env:
            return max(1, int(env))
        return max(1, os.cpu_count() or 1)

    def replace(self, **overrides: object) -> "Config":
        """Return a copy with ``overrides`` applied (validated)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


_state = threading.local()


def _default() -> Config:
    return Config()


def get_config() -> Config:
    """Return the active configuration for the current thread."""
    cfg = getattr(_state, "config", None)
    if cfg is None:
        cfg = _default()
        _state.config = cfg
    return cfg


def set_config(config: Config) -> None:
    """Install ``config`` as the active configuration for this thread."""
    config.validate()
    _state.config = config


def reset_config() -> None:
    """Restore the built-in defaults for this thread."""
    _state.config = _default()


@contextlib.contextmanager
def use_config(**overrides: object) -> Iterator[Config]:
    """Scoped configuration override.

    Parameters are any :class:`Config` field names; the previous
    configuration is restored on exit even if the body raises.
    """
    previous = get_config()
    updated = previous.replace(**overrides)
    set_config(updated)
    try:
        yield updated
    finally:
        set_config(previous)
