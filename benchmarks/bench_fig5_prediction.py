"""Figure 5 bench — TLR prediction time (100 unknowns).

Paper-scale modeled series on Shaheen-2/256 nodes plus a measured
host-scale prediction benchmark across variants.

Also benchmarks the *prediction engine pipeline* (cached distances +
fused task-parallel generation + factor reuse) against the seed
regenerate-everything path, mirroring
``bench_generation_pipeline.py``'s treatment of the MLE hot loop.
Run as a script to write ``BENCH_prediction.json``:

    PYTHONPATH=src python benchmarks/bench_fig5_prediction.py --n 900 --tile-size 150
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.experiments.common import bench_scale
from repro.experiments.fig5 import measured_series, model_series
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine, predict
from repro.runtime import Runtime


def test_fig5_model_series(benchmark, outdir):
    """Paper-scale modeled prediction table."""
    table = benchmark.pedantic(model_series, rounds=1, iterations=1)
    table.save("fig5_model_shaheen_256nodes")
    assert len(table.rows) >= 1


def test_fig5_measured_host(benchmark, outdir):
    """Measured host-scale prediction table."""
    table = benchmark.pedantic(measured_series, rounds=1, iterations=1)
    table.save("fig5_measured_host")
    assert len(table.rows) >= 1


@pytest.mark.parametrize("variant,acc", [("full-block", None), ("tlr", 1e-7)])
def test_fig5_prediction_kernel(benchmark, variant, acc):
    """pytest-benchmark timing of one 100-unknown prediction."""
    n, m = (1024, 100) if bench_scale() == "quick" else (2500, 100)
    model = MaternCovariance(1.0, 0.1, 0.5)
    locs = generate_irregular_grid(n + m, seed=0)
    locs, _, _ = sort_locations(locs)
    z = sample_gaussian_field(locs, model, seed=1)
    rng = np.random.default_rng(2)
    hold = rng.choice(n + m, size=m, replace=False)
    mask = np.ones(n + m, dtype=bool)
    mask[hold] = False

    pred = benchmark(
        predict,
        locs[mask],
        z[mask],
        locs[hold],
        model,
        variant=variant,
        acc=acc,
        tile_size=128,
    )
    assert pred.shape == (m,)


# --------------------------------------------------------------------------
# Prediction-engine pipeline: cached vs uncached generation stage.
# --------------------------------------------------------------------------


def _engine_stage_deltas(engine: PredictionEngine, fn) -> dict:
    """Run ``fn()`` and return the engine's per-stage time deltas."""
    before = dict(engine.times.stages)
    fn()
    after = engine.times.stages
    stages = {k: after.get(k, 0.0) - before.get(k, 0.0) for k in after}
    stages["total"] = sum(stages.values())
    return stages


def run_prediction_bench(
    n: int = 3600,
    m: int = 100,
    tile_size: int = 300,
    acc: float = 1e-9,
    n_predicts: int = 4,
    num_workers: Optional[int] = None,
    variant: str = "tlr",
) -> dict:
    """Repeated prediction against one fitted model, three configurations.

    * ``seed``            — a fresh uncached engine per call: the
      repository's original behavior (regenerate + refactor every time);
    * ``cached``          — one engine, distance caches + factor reuse,
      serial generation;
    * ``cached+parallel`` — one engine with a runtime, generation fused
      into the prediction Cholesky task graph.

    Each call predicts the same ``m`` targets from a different
    realization (multi-RHS-style workload); predictions are asserted
    identical across configurations (within TLR accuracy).
    """
    locs = generate_irregular_grid(n + m, seed=0)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    train, targets = locs[:n], locs[n:]
    rng = np.random.default_rng(3)
    base = sample_gaussian_field(locs, model, seed=1)[:n]
    zs = [base * (1.0 + 0.05 * k) + (0.01 * rng.standard_normal(n) if k else 0.0)
          for k in range(n_predicts)]

    common = dict(variant=variant, acc=acc, tile_size=tile_size)
    results: dict = {}

    def run_config(name: str, engine_factory) -> list:
        preds = []
        evals = []
        for k, zk in enumerate(zs):
            engine = engine_factory(k)
            stages = _engine_stage_deltas(
                engine, lambda: preds.append(engine.predict(targets, z=zk))
            )
            evals.append({"stages": stages})
        results[name] = {"predicts": evals}
        return preds

    # seed: fresh engine per call -> nothing amortizes.
    seed_preds = run_config(
        "seed",
        lambda k: PredictionEngine(
            train, None, model, cache_distances=False, parallel_generation=False, **common
        ),
    )

    cached_engine = PredictionEngine(
        train, None, model, cache_distances=True, parallel_generation=False, **common
    )
    cached_preds = run_config("cached", lambda k: cached_engine)

    with Runtime(num_workers=num_workers) as rt:
        fused_engine = PredictionEngine(
            train, None, model, runtime=rt,
            cache_distances=True, parallel_generation=True, **common
        )
        fused_preds = run_config("cached+parallel", lambda k: fused_engine)
        workers = rt.num_workers

    # ---------------------------------------------------------------- parity
    max_abs_err = 0.0
    for preds in (cached_preds, fused_preds):
        for p, ref in zip(preds, seed_preds):
            max_abs_err = max(max_abs_err, float(np.max(np.abs(p - ref))))

    # ------------------------------------------------------------- speedups
    def stage_after_first(config: str, stage: str) -> float:
        return sum(e["stages"].get(stage, 0.0) for e in results[config]["predicts"][1:])

    def total_after_first(config: str) -> float:
        return sum(e["stages"]["total"] for e in results[config]["predicts"][1:])

    gen_seed = stage_after_first("seed", "generation") + stage_after_first("seed", "cross")
    gen = {
        c: stage_after_first(c, "generation") + stage_after_first(c, "cross")
        for c in results
    }
    summary = {
        "n": n,
        "m": m,
        "tile_size": tile_size,
        "acc": acc,
        "variant": variant,
        "n_predicts": n_predicts,
        "num_workers": workers,
        "max_abs_prediction_err_vs_seed": max_abs_err,
        "generation_stage_seconds_predicts_2plus": gen,
        "factorization_stage_seconds_predicts_2plus": {
            c: stage_after_first(c, "factorization") for c in results
        },
        "total_seconds_predicts_2plus": {c: total_after_first(c) for c in results},
        "generation_speedup_cached_vs_seed": gen_seed / max(1e-12, gen["cached"]),
        "generation_speedup_cached_parallel_vs_seed": gen_seed
        / max(1e-12, gen["cached+parallel"]),
        "total_speedup_cached_vs_seed": total_after_first("seed")
        / max(1e-12, total_after_first("cached")),
        "total_speedup_cached_parallel_vs_seed": total_after_first("seed")
        / max(1e-12, total_after_first("cached+parallel")),
    }
    return {"summary": summary, "configs": results}


def write_prediction_report(report: dict, out: Optional[str] = None) -> Path:
    """Write the report JSON (default: ``results/BENCH_prediction.json``)."""
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_prediction.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_prediction_pipeline(outdir):
    """Benchmark-suite entry: small problem, parity + collapse assertions."""
    report = run_prediction_bench(n=900, m=64, tile_size=150, n_predicts=3)
    summary = report["summary"]
    assert summary["max_abs_prediction_err_vs_seed"] <= 1e-6
    # Predicts 2+ against a fitted model skip Sigma_22 generation entirely.
    assert summary["generation_speedup_cached_vs_seed"] >= 2.0
    write_prediction_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Prediction-engine pipeline benchmark (writes BENCH_prediction.json)"
    )
    parser.add_argument("--n", type=int, default=3600, help="training locations")
    parser.add_argument("--m", type=int, default=100, help="prediction targets")
    parser.add_argument("--tile-size", type=int, default=300, help="tile size nb")
    parser.add_argument("--acc", type=float, default=1e-9, help="TLR accuracy")
    parser.add_argument("--predicts", type=int, default=4, help="prediction calls per config")
    parser.add_argument("--workers", type=int, default=None, help="runtime worker threads")
    parser.add_argument("--variant", default="tlr", choices=("tlr", "full-tile", "full-block"))
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_prediction_bench(
        n=args.n,
        m=args.m,
        tile_size=args.tile_size,
        acc=args.acc,
        n_predicts=args.predicts,
        num_workers=args.workers,
        variant=args.variant,
    )
    path = write_prediction_report(report, args.out)
    s = report["summary"]
    print(f"wrote {path}")
    print(
        f"n={s['n']} m={s['m']} nb={s['tile_size']} variant={s['variant']} "
        f"workers={s['num_workers']} predicts={s['n_predicts']}"
    )
    print(f"max abs prediction error vs seed: {s['max_abs_prediction_err_vs_seed']:.2e}")
    for c, t in s["generation_stage_seconds_predicts_2plus"].items():
        print(f"  generation+cross (predicts 2+) {c:>16}: {t:8.3f} s")
    for c, t in s["factorization_stage_seconds_predicts_2plus"].items():
        print(f"  factorization    (predicts 2+) {c:>16}: {t:8.3f} s")
    print(
        "generation speedup (cached vs seed):          "
        f"{s['generation_speedup_cached_vs_seed']:.2f}x"
    )
    print(
        "generation speedup (cached+parallel vs seed): "
        f"{s['generation_speedup_cached_parallel_vs_seed']:.2f}x"
    )
    print(
        "total speedup (cached vs seed):               "
        f"{s['total_speedup_cached_vs_seed']:.2f}x"
    )
    print(
        "total speedup (cached+parallel vs seed):      "
        f"{s['total_speedup_cached_parallel_vs_seed']:.2f}x"
    )


if __name__ == "__main__":
    main()
