"""REPRO_LOG level parsing and trace-id log stamping."""

from __future__ import annotations

import logging

import pytest

from repro.telemetry import context as tctx
from repro.utils.logging import _parse_level, _TraceIdFilter


def test_valid_levels_parse():
    assert _parse_level("DEBUG") == logging.DEBUG
    assert _parse_level("info") == logging.INFO
    assert _parse_level("Warning") == logging.WARNING
    assert _parse_level("ERROR") == logging.ERROR


def test_module_attribute_is_not_a_level(capsys):
    # getattr(logging, "raiseExceptions") is True == level 1: the old
    # parser enabled *everything*. Must fall back to WARNING and say so.
    assert _parse_level("raiseExceptions") == logging.WARNING
    out = capsys.readouterr().out
    assert "raiseExceptions" in out
    assert "WARNING" in out


@pytest.mark.parametrize("bogus", ["os", "", "TRACE", "15"])
def test_unknown_levels_fall_back(bogus, capsys):
    assert _parse_level(bogus) == logging.WARNING
    assert "ignoring invalid REPRO_LOG" in capsys.readouterr().out


def _record():
    return logging.LogRecord("repro.t", logging.INFO, __file__, 1, "msg", (), None)


def test_trace_id_filter_stamps_dash_without_context():
    rec = _record()
    assert _TraceIdFilter().filter(rec) is True
    assert rec.trace_id == "-"


def test_trace_id_filter_stamps_active_trace():
    ctx = tctx.new_trace()
    with tctx.activate(ctx):
        rec = _record()
        _TraceIdFilter().filter(rec)
    assert rec.trace_id == ctx.trace_id
