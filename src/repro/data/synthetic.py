"""Synthetic spatial location generators (paper §VII).

The paper generates irregular locations over the unit square using

    ( (r - 0.5 + X_rl) / sqrt(n), (l - 0.5 + Y_rl) / sqrt(n) )

for ``r, l in {1..sqrt(n)}`` with ``X_rl, Y_rl ~ Uniform(-0.4, 0.4)``,
which perturbs a regular sqrt(n) x sqrt(n) grid so that *no two locations
are too close* (a property the MLE's covariance conditioning relies on)
while remaining irregular. Figure 2 of the paper displays a 400-point
example of this construction.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ShapeError
from ..utils.rng import SeedLike, as_generator

__all__ = ["generate_irregular_grid", "generate_uniform_locations"]


def generate_irregular_grid(
    n: int,
    seed: SeedLike = None,
    *,
    jitter: float = 0.4,
) -> np.ndarray:
    """Generate ``n`` irregular locations on the unit square (paper §VII).

    Parameters
    ----------
    n:
        Number of locations. Perfect squares reproduce the paper's
        construction exactly; other values build the next-larger perturbed
        grid and keep a uniformly random subset of ``n`` points.
    seed:
        RNG seed / generator.
    jitter:
        Half-width of the uniform perturbation (paper: 0.4). Must lie in
        ``[0, 0.5)`` so points from adjacent cells cannot coincide.

    Returns
    -------
    ``(n, 2)`` float array of locations in ``(0, 1)^2``, in row-major grid
    order (callers typically re-sort with :func:`repro.data.morton_order`).
    """
    if n < 1:
        raise ShapeError(f"n must be >= 1, got {n}")
    if not (0.0 <= jitter < 0.5):
        raise ShapeError(f"jitter must lie in [0, 0.5), got {jitter}")
    rng = as_generator(seed)
    side = math.isqrt(n)
    if side * side < n:
        side += 1
    m = side * side
    r = np.arange(1, side + 1, dtype=np.float64)
    grid_x, grid_y = np.meshgrid(r, r, indexing="ij")
    x_noise = rng.uniform(-jitter, jitter, size=(side, side))
    y_noise = rng.uniform(-jitter, jitter, size=(side, side))
    pts = np.empty((m, 2), dtype=np.float64)
    pts[:, 0] = ((grid_x - 0.5 + x_noise) / side).ravel()
    pts[:, 1] = ((grid_y - 0.5 + y_noise) / side).ravel()
    if m != n:
        keep = rng.choice(m, size=n, replace=False)
        keep.sort()
        pts = pts[keep]
    return pts


def generate_uniform_locations(
    n: int,
    seed: SeedLike = None,
    *,
    bbox: tuple = (0.0, 1.0, 0.0, 1.0),
) -> np.ndarray:
    """Generate ``n`` i.i.d. uniform locations in a bounding box.

    Used as a *contrast* generator in tests/ablations: purely uniform
    locations can produce near-coincident points, which stresses
    covariance conditioning — exactly what the paper's grid-perturbation
    scheme avoids.

    Parameters
    ----------
    bbox:
        ``(xmin, xmax, ymin, ymax)``.
    """
    if n < 1:
        raise ShapeError(f"n must be >= 1, got {n}")
    xmin, xmax, ymin, ymax = map(float, bbox)
    if not (xmax > xmin and ymax > ymin):
        raise ShapeError(f"invalid bbox {bbox}")
    rng = as_generator(seed)
    pts = np.empty((n, 2), dtype=np.float64)
    pts[:, 0] = rng.uniform(xmin, xmax, size=n)
    pts[:, 1] = rng.uniform(ymin, ymax, size=n)
    return pts
