"""Unified observability: trace context, spans, metrics, export.

The four disconnected timing systems this repo grew (the runtime's
:class:`~repro.runtime.trace.TraceRecorder`, serving's
:class:`~repro.serving.metrics.ServiceMetrics`, ``utils/timer.py``
stage times, and per-job loglik JSONL traces) now feed one layer:

* :mod:`~repro.telemetry.context` — ``TraceContext`` carried in a
  contextvar, across HTTP via ``X-Repro-Trace``, and across the
  router's worker pipes.
* :mod:`~repro.telemetry.spans` — ``with span("phase"):`` nested
  timing with a nanosecond-class disabled path; bounded per-process
  ring + optional JSONL sink.
* :mod:`~repro.telemetry.metrics` — counters/gauges/histograms with
  explicit buckets, merged across workers by the router.
* :mod:`~repro.telemetry.export` — Prometheus text exposition and
  cross-process span-tree assembly.

Telemetry is **off by default**; arm it with
:func:`~repro.telemetry.configure`, ``Config(telemetry_enabled=True)``,
or ``REPRO_TELEMETRY=1`` (how spawned workers and fit legs inherit
the setting). Answering "where did this slow predict spend its time"
is then one request: ``client.trace(trace_id)``.
"""

from .context import (
    TRACE_HEADER,
    TraceContext,
    activate,
    child_of,
    current,
    from_header,
    from_wire,
    new_trace,
    to_header,
    to_wire,
)
from .export import assemble_trace, lint_prometheus, render_prometheus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from .spans import (
    Span,
    SpanRecorder,
    adopt_trace_events,
    annotate,
    configure,
    enabled,
    get_recorder,
    record_span,
    reset_telemetry,
    span,
)

#: Top-level-friendly alias (``repro.configure_telemetry``): the bare
#: name ``configure`` is too generic outside this subpackage.
configure_telemetry = configure

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "activate",
    "adopt_trace_events",
    "annotate",
    "assemble_trace",
    "child_of",
    "configure",
    "configure_telemetry",
    "current",
    "enabled",
    "from_header",
    "from_wire",
    "get_recorder",
    "get_registry",
    "lint_prometheus",
    "new_trace",
    "record_span",
    "render_prometheus",
    "reset_registry",
    "reset_telemetry",
    "span",
    "to_header",
    "to_wire",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
]
