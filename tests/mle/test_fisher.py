"""Tests for observed-information standard errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.mle.fisher import observed_information


class TestObservedInformation:
    def test_gaussian_sample_variance_information(self):
        # iid N(0, v): loglik(v) = -n/2 log(2 pi v) - S/(2v) with
        # S = sum z_i^2. Observed information at the MLE v_hat = S/n is
        # n / (2 v_hat^2) — a closed form to validate against.
        rng = np.random.default_rng(0)
        z = rng.normal(0.0, 1.3, size=400)
        s = float(np.sum(z * z))
        n = z.size
        v_hat = s / n

        def loglik(theta):
            v = theta[0]
            return -0.5 * n * np.log(2 * np.pi * v) - s / (2 * v)

        info = observed_information(loglik, [v_hat])
        expected_info = n / (2 * v_hat**2)
        assert -info.hessian[0, 0] == pytest.approx(expected_info, rel=1e-3)
        assert info.standard_errors[0] == pytest.approx(
            np.sqrt(2.0 * v_hat**2 / n), rel=1e-3
        )

    def test_quadratic_loglik_exact_covariance(self):
        # loglik = -0.5 (theta-mu)' A (theta-mu): covariance = A^{-1}.
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        mu = np.array([1.0, 2.0])

        def loglik(theta):
            d = np.asarray(theta) - mu
            return float(-0.5 * d @ a @ d)

        info = observed_information(loglik, mu)
        np.testing.assert_allclose(info.covariance, np.linalg.inv(a), atol=1e-5)

    def test_confidence_interval_contains_theta(self):
        def loglik(theta):
            d = theta[0] - 2.0
            return -0.5 * 10 * d * d

        info = observed_information(loglik, [2.0])
        ci = info.confidence_interval(0.95)
        assert ci.shape == (1, 2)
        assert ci[0, 0] < 2.0 < ci[0, 1]
        with pytest.raises(OptimizationError):
            info.confidence_interval(1.5)

    def test_indefinite_information_yields_nan_se(self):
        # A maximum along one axis, minimum along the other -> indefinite.
        def saddle(theta):
            return float(-theta[0] ** 2 + theta[1] ** 2)

        info = observed_information(saddle, [1.0, 1.0])
        assert info.covariance is None
        assert np.all(np.isnan(info.standard_errors))

    def test_positive_parameter_guard(self):
        with pytest.raises(OptimizationError):
            observed_information(lambda t: 0.0, [1.0, -1.0])

    def test_matern_mle_standard_errors(self):
        # End to end: SEs of a real Matérn fit are finite and positive.
        from repro.data import generate_irregular_grid, sample_gaussian_field
        from repro.kernels import MaternCovariance
        from repro.mle import LikelihoodEvaluator, MLEstimator

        locs = generate_irregular_grid(144, seed=5)
        truth = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, truth, seed=6)
        est = MLEstimator(locs, z, variant="full-block")
        fit = est.fit(maxiter=120)
        info = observed_information(est.evaluator, fit.theta)
        se = info.standard_errors
        assert np.all(np.isfinite(se)) and np.all(se > 0)
        # Truth within a generous multiple of the standard errors.
        assert np.all(np.abs(fit.theta - truth.theta) < 8 * se + 0.5)
