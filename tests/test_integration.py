"""End-to-end integration tests: the paper's pipeline at laptop scale."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import MLEstimator, MaternCovariance, Runtime, use_config
from repro.data import (
    generate_irregular_grid,
    make_soil_moisture_dataset,
    sample_gaussian_field,
    train_test_split,
)
from repro.data.datasets import GeoDataset
from repro.mle import mean_squared_error, predict


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("MLEstimator", "MaternCovariance", "TLRMatrix", "Runtime"):
            assert hasattr(repro, name)


class TestFigure2Pipeline:
    """The paper's Figure 2 workflow: 400 points, 362 fit + 38 predict."""

    def test_fit_predict_pipeline(self):
        locs = generate_irregular_grid(400, seed=0)
        truth = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, truth, seed=1)
        ds = GeoDataset(locs, z, name="fig2")
        train, test = train_test_split(ds, 38, seed=2)

        est = MLEstimator.from_dataset(train, variant="tlr", acc=1e-9, tile_size=91)
        fit = est.fit(maxiter=80)
        pred = est.predict(fit, test.locations)
        mse = mean_squared_error(test.values, pred)
        # Prediction must beat the trivial zero-mean predictor clearly.
        assert mse < 0.5 * float(np.var(test.values))
        # Parameters in a plausible window around the truth.
        assert 0.2 < fit.theta[0] < 4.0
        assert 0.01 < fit.theta[1] < 0.6


class TestVariantConsistency:
    """All three substrates must tell the same statistical story."""

    def test_likelihood_surface_agreement(self):
        locs = generate_irregular_grid(169, seed=5)
        truth = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, truth, seed=6)
        from repro.mle import LikelihoodEvaluator, exact_loglikelihood

        thetas = [(1.0, 0.1, 0.5), (0.7, 0.05, 0.5), (1.5, 0.2, 1.0)]
        for theta in thetas:
            model = truth.with_theta(np.array(theta))
            exact = exact_loglikelihood(locs, z, model)
            for variant, acc in (("full-tile", None), ("tlr", 1e-10)):
                ev = LikelihoodEvaluator(
                    locs, z, truth, variant=variant, acc=acc, tile_size=43
                )
                assert ev(np.array(theta)) == pytest.approx(exact, abs=1e-3)

    def test_parallel_fit_equals_serial_fit(self):
        locs = generate_irregular_grid(169, seed=8)
        truth = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, truth, seed=9)
        serial = MLEstimator(locs, z, variant="tlr", acc=1e-8, tile_size=43).fit(maxiter=40)
        with Runtime(num_workers=4) as rt:
            par = MLEstimator(
                locs, z, variant="tlr", acc=1e-8, tile_size=43, runtime=rt
            ).fit(maxiter=40)
        np.testing.assert_allclose(par.theta, serial.theta, rtol=1e-10)
        assert par.loglik == pytest.approx(serial.loglik, rel=1e-10)


class TestRealDataSubstitutePipeline:
    def test_soil_moisture_region_fit(self):
        ds = make_soil_moisture_dataset("R1", n=150, seed=3)
        est = MLEstimator.from_dataset(ds, variant="tlr", acc=1e-9, tile_size=50)
        from repro.optim.bounds import default_matern_bounds

        fit = est.fit(
            maxiter=60,
            bounds=default_matern_bounds(ds.values, max_range=60.0),
            x0=np.asarray(ds.meta["theta_true"]),
        )
        assert np.all(fit.theta > 0)
        # Smoothness is the paper's most identifiable parameter.
        assert 0.1 < fit.theta[2] < 2.5


class TestConfigIntegration:
    def test_config_drives_defaults(self):
        locs = generate_irregular_grid(100, seed=11)
        truth = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, truth, seed=12)
        with use_config(tile_size=25, tlr_accuracy=1e-6):
            from repro.mle import LikelihoodEvaluator

            ev = LikelihoodEvaluator(locs, z, truth, variant="tlr")
            assert ev.tile_size == 25
            assert ev.acc == 1e-6
            val = ev(truth.theta)
        assert np.isfinite(val)

    def test_prediction_variants_close(self):
        locs = generate_irregular_grid(150, seed=13)
        truth = MaternCovariance(1.0, 0.1, 0.5)
        z = sample_gaussian_field(locs, truth, seed=14)
        new = np.array([[0.5, 0.5], [0.25, 0.75]])
        base = predict(locs, z, new, truth, variant="full-block")
        for variant, acc in (("full-tile", None), ("tlr", 1e-11)):
            got = predict(locs, z, new, truth, variant=variant, acc=acc, tile_size=50)
            np.testing.assert_allclose(got, base, atol=1e-5)
