"""Tests for the analytic estimator and the distributed DES simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.perfmodel.analytic import (
    estimate_mle_iteration,
    estimate_prediction,
)
from repro.perfmodel.cluster import ClusterSpec, shaheen2
from repro.perfmodel.distsim import DistributedSimulator
from repro.perfmodel.machine import MachineSpec, get_machine


class TestSharedMemoryEstimates:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ConfigurationError):
            estimate_mle_iteration(1000, variant="tlr")
        with pytest.raises(ConfigurationError):
            estimate_mle_iteration(
                1000, machine=get_machine("haswell"), cluster=shaheen2(4)
            )

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            estimate_mle_iteration(1000, variant="magic", machine=get_machine("haswell"))

    def test_time_grows_with_n(self):
        hw = get_machine("haswell")
        times = [
            estimate_mle_iteration(n, variant="full-tile", nb=560, machine=hw).time_s
            for n in (50_000, 100_000, 200_000)
        ]
        assert times == sorted(times)
        # Dense Cholesky is cubic: 2x n should be ~8x time at scale.
        assert times[2] / times[1] == pytest.approx(8.0, rel=0.35)

    def test_variant_ordering_at_paper_size(self):
        hw = get_machine("haswell")
        fb = estimate_mle_iteration(112225, variant="full-block", nb=560, machine=hw)
        ft = estimate_mle_iteration(112225, variant="full-tile", nb=560, machine=hw)
        tlr = estimate_mle_iteration(112225, variant="tlr", nb=1150, acc=1e-5, machine=hw)
        assert fb.time_s > ft.time_s > tlr.time_s  # Figure 3's ordering

    def test_accuracy_ladder(self):
        hw = get_machine("haswell")
        times = [
            estimate_mle_iteration(112225, variant="tlr", nb=1150, acc=a, machine=hw).time_s
            for a in (1e-5, 1e-7, 1e-9, 1e-12)
        ]
        assert times == sorted(times)  # tighter accuracy costs more

    def test_paper_speedup_window(self):
        # §VIII-B: max speedups ~7X/10X/13X/5X at accuracy 1e-5.
        claims = {"haswell": 7.0, "broadwell": 10.0, "knl": 13.0, "skylake": 5.0}
        for name, claim in claims.items():
            m = get_machine(name)
            ft = estimate_mle_iteration(112225, variant="full-tile", nb=560, machine=m)
            t5 = estimate_mle_iteration(112225, variant="tlr", nb=1150, acc=1e-5, machine=m)
            speedup = ft.time_s / t5.time_s
            assert claim * 0.6 <= speedup <= claim * 1.4, (name, speedup)

    def test_memory_and_oom(self):
        tiny = MachineSpec("tiny", 4, 2.0, 8, 0.8, 0.5, 0.25, 50.0, 1.0)  # 1 GB
        est = estimate_mle_iteration(50_000, variant="full-block", machine=tiny)
        assert est.oom  # 20 GB matrix cannot fit
        est_tlr = estimate_mle_iteration(
            50_000, variant="tlr", nb=1000, acc=1e-5, machine=tiny
        )
        assert est_tlr.matrix_bytes < est.matrix_bytes

    def test_tlr_memory_below_dense(self):
        hw = get_machine("haswell")
        ft = estimate_mle_iteration(112225, variant="full-tile", nb=560, machine=hw)
        tlr = estimate_mle_iteration(112225, variant="tlr", nb=1150, acc=1e-7, machine=hw)
        assert tlr.matrix_bytes < 0.5 * ft.matrix_bytes

    def test_breakdown_sums_to_total(self):
        hw = get_machine("haswell")
        est = estimate_mle_iteration(50_000, variant="full-tile", nb=560, machine=hw)
        assert est.time_s == pytest.approx(
            sum(v for k, v in est.breakdown.items() if k != "communication_overlapped")
        )


class TestDistributedEstimates:
    def test_more_nodes_faster_at_scale(self):
        t256 = estimate_mle_iteration(
            1_000_000, variant="full-tile", nb=560, cluster=shaheen2(256)
        ).time_s
        t1024 = estimate_mle_iteration(
            1_000_000, variant="full-tile", nb=560, cluster=shaheen2(1024)
        ).time_s
        assert t1024 < t256

    def test_paper_distributed_speedup_window(self):
        # §VIII-C: up to ~5X on Shaheen-2.
        c = shaheen2(256)
        ft = estimate_mle_iteration(1_000_000, variant="full-tile", nb=560, cluster=c)
        t5 = estimate_mle_iteration(1_000_000, variant="tlr", nb=1900, acc=1e-5, cluster=c)
        speedup = ft.time_s / t5.time_s
        assert 3.0 <= speedup <= 8.0

    def test_communication_recorded(self):
        c = shaheen2(64)
        est = estimate_mle_iteration(200_000, variant="full-tile", nb=560, cluster=c)
        assert est.breakdown["communication_overlapped"] > 0

    def test_prediction_dominated_by_factorization(self):
        # Figure 5's observation: prediction ~ MLE iteration time.
        c = shaheen2(256)
        mle = estimate_mle_iteration(500_000, variant="tlr", nb=1900, acc=1e-7, cluster=c)
        pred = estimate_prediction(500_000, 100, variant="tlr", nb=1900, acc=1e-7, cluster=c)
        assert pred.time_s >= mle.time_s
        assert pred.time_s <= 1.5 * mle.time_s


class TestDistributedSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return DistributedSimulator(shaheen2(4))

    def test_owner_block_cyclic(self, sim):
        pr, pc = sim.pr, sim.pc
        assert sim.owner(0, 0) == 0
        owners = {sim.owner(i, j) for i in range(8) for j in range(8)}
        assert owners == set(range(4))

    def test_dag_task_count(self, sim):
        nt = 6
        tasks = sim.build_cholesky_dag(nt, 128, variant="full-tile")
        expect = nt + nt * (nt - 1) + sum((i - 1) * i // 2 for i in range(1, nt))
        # potrf: nt, trsm: nt(nt-1)/2, syrk: nt(nt-1)/2, gemm: sum.
        n_potrf = sum(1 for t in tasks if t.name == "potrf")
        n_trsm = sum(1 for t in tasks if t.name == "trsm")
        n_syrk = sum(1 for t in tasks if t.name == "syrk")
        assert n_potrf == nt
        assert n_trsm == nt * (nt - 1) // 2
        assert n_syrk == nt * (nt - 1) // 2

    def test_simulation_invariants(self, sim):
        tasks = sim.build_cholesky_dag(8, 256, variant="full-tile")
        rep = sim.simulate(tasks, 256, variant="full-tile")
        assert rep.makespan_s > 0
        assert rep.n_tasks == len(tasks)
        assert 0.0 < rep.utilization(sim.cluster) <= 1.0
        # Makespan bounded below by the best possible parallel time and
        # above by fully serial execution.
        serial = sum(sim._task_seconds(t.cost) for t in tasks)
        assert rep.makespan_s <= serial + 1e-9
        assert rep.makespan_s >= serial / sim.cluster.total_cores - 1e-9
        # Dependencies respected.
        by_id = {t.tid: t for t in tasks}
        for t in tasks:
            for d in t.deps:
                assert by_id[d].finish <= t.start + 1e-12

    def test_single_node_no_comm(self):
        sim = DistributedSimulator(shaheen2(1))
        tasks = sim.build_cholesky_dag(6, 128, variant="full-tile")
        rep = sim.simulate(tasks, 128, variant="full-tile")
        assert rep.comm_events == 0
        assert rep.comm_bytes == 0.0

    def test_tlr_cheaper_than_dense(self, sim):
        dense = sim.simulate(
            sim.build_cholesky_dag(10, 1024, variant="full-tile"), 1024, variant="full-tile"
        )
        tlr = sim.simulate(
            sim.build_cholesky_dag(10, 1024, variant="tlr", acc=1e-5), 1024, variant="tlr"
        )
        assert tlr.makespan_s < dense.makespan_s
        assert tlr.mem_per_node_bytes < dense.mem_per_node_bytes

    def test_unsupported_variant(self, sim):
        with pytest.raises(SimulationError):
            sim.build_cholesky_dag(4, 64, variant="full-block")

    def test_des_vs_analytic_same_order(self):
        # Cross-validation: the closed form and the DES should agree
        # within a small factor for a dense factorization.
        cluster = shaheen2(4)
        sim = DistributedSimulator(cluster)
        nt, nb = 16, 560
        n = nt * nb
        tasks = sim.build_cholesky_dag(nt, nb, variant="full-tile")
        rep = sim.simulate(tasks, nb, variant="full-tile")
        est = estimate_mle_iteration(n, variant="full-tile", nb=nb, cluster=cluster)
        chol_s = est.breakdown["factorization"]
        assert chol_s / 5 <= rep.makespan_s <= chol_s * 5
