#!/usr/bin/env python
"""Fit → save → serve over HTTP → concurrent clients → hot-reload.

``examples/serving_demo.py`` serves a persisted fit inside one process.
This demo runs the full production shape on top of it:

1. **Plan before you fit**: :func:`repro.plan` micro-calibrates this
   host (seconds of seeded probes, cached for the process) and searches
   the fitted performance model for the cheapest feasible config — the
   fit below adopts the planned tile size instead of a guess. The same
   search is served by ``GET /v1/plan`` once the server is up.
2. **Fit** a Matérn model by TLR MLE and **save** it as a bundle.
3. **Serve** it from a :class:`~repro.serving.ServingServer` — worker
   *processes* (each hosting a registry + micro-batching service)
   behind a stdlib HTTP front-end that shards model ids onto workers
   by stable hash.
4. **Concurrent clients**: a pool of threads, each with its own
   :class:`~repro.serving.ServingClient`, hammers the endpoint; every
   response is verified **bit-identical** to calling
   ``MLEstimator.predict`` in the fitting process — JSON's float
   encoding round-trips every finite float64 exactly.
5. **Binary transport**: the same predict over
   ``application/x-repro-npy`` — raw little-endian float64 frames,
   streamed both ways, pipelined over one connection — bit-identical
   to the JSON answer and several times smaller on the wire (map-grid
   targets deflate on top).
6. **Hot-reload**: the model is re-fitted (here: refit at a nudged
   theta), saved, and swapped in via ``POST /v1/models/<id>/reload``
   while clients keep hammering — zero failed requests; traffic drains
   from old-engine answers to new-engine answers.
7. **Reading a trace**: telemetry is armed before the server starts
   (one ``configure(enabled=True)`` — workers inherit it), so every
   request can answer "where did my time go". The client opens a
   trace, predicts once, and fetches ``GET /v1/trace/<id>``: one
   connected tree from ``client.predict`` through the router, the
   owning worker process, the batching service, and the engine, with
   per-phase durations. ``GET /v1/metrics?format=prometheus`` renders
   the fleet-merged counters/histograms as standard exposition text.

Run:  python examples/serving_http_demo.py
"""

from __future__ import annotations

import concurrent.futures
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator, PredictionEngine
from repro.perfmodel import Planner, default_profile
from repro.serving import ServingClient, ServingServer, wire
from repro.telemetry import configure_telemetry
from repro.telemetry import context as trace_context

N_TRAIN = 400
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 6
MODEL_ID = "matern-tlr"


def main() -> None:
    rng = np.random.default_rng(7)
    locs, _, _ = sort_locations(generate_irregular_grid(N_TRAIN, seed=0))
    truth = MaternCovariance(1.0, 0.12, 0.5)
    z = sample_gaussian_field(locs, truth, seed=1)

    # -- 1. plan before you fit: micro-calibrate this host (~1 s of
    # seeded probes, cached for the process) and let the fitted model
    # choose the tile size. The ladder is capped so the TLR substrate
    # keeps several tiles per side at this small n.
    tuned = Planner(default_profile()).plan(
        N_TRAIN, substrate="tlr", accuracy=1e-7, tile_sizes=(50, 80, 100, 134)
    )
    predicted = tuned.predicted["fit_iteration"]["total_s"]
    print(
        f"planned config: nb={tuned.tile_size}, "
        f"predicted fit iteration {predicted * 1e3:.1f} ms"
    )

    # -- 2. fit + save (at the planned tile size)
    est = MLEstimator(locs, z, variant="tlr", acc=1e-7, tile_size=tuned.tile_size)
    fit = est.fit(maxiter=40)
    print(f"fitted theta = {np.round(fit.theta, 4)}  ({fit.n_evals} evaluations)")

    targets = [
        np.ascontiguousarray(rng.random((20, 2))) for _ in range(N_CLIENTS)
    ]
    references = [est.predict(fit, t) for t in targets]

    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = est.save_fit(fit, Path(tmp) / f"{MODEL_ID}.bundle")
        print(f"saved bundle to {bundle_path.name}")

        # -- 3. serve: worker processes behind an HTTP router.
        # Telemetry armed up front: workers spawned by this server
        # inherit it, so step 7 can assemble cross-process traces.
        configure_telemetry(enabled=True)
        with ServingServer(
            {MODEL_ID: bundle_path},
            num_workers=2,
            service_options={"batch_window": 0.005, "max_batch": 16},
        ) as server:
            print(f"serving on {server.url} "
                  f"(model on worker {server.worker_for(MODEL_ID)})")

            # The planner is also served: ops can ask the running fleet
            # what config a future workload should use (router-side, no
            # worker round-trip, same calibrated profile as step 1).
            with ServingClient(server.url) as admin:
                over_http = admin.plan(N_TRAIN, substrate="tlr")
            print(f"GET /v1/plan?n={N_TRAIN}: {over_http['config']}")

            # -- 4. concurrent clients, bit-identity verified per response
            def hammer(idx: int) -> float:
                with ServingClient(server.url) as client:
                    t0 = time.perf_counter()
                    for _ in range(REQUESTS_PER_CLIENT):
                        pred = client.predict(MODEL_ID, targets[idx], deadline=30.0)
                        assert np.array_equal(pred, references[idx]), \
                            "HTTP serving must be bit-identical"
                    return (time.perf_counter() - t0) / REQUESTS_PER_CLIENT

            with concurrent.futures.ThreadPoolExecutor(N_CLIENTS) as pool:
                latencies = list(pool.map(hammer, range(N_CLIENTS)))
            with ServingClient(server.url) as admin:
                counters = admin.metrics()["aggregate"]["counters"]
            print(
                f"served {counters['completed']} requests from {N_CLIENTS} "
                f"concurrent clients in {counters['engine_calls']} engine calls"
            )
            print(f"mean client latency {np.mean(latencies) * 1e3:.1f} ms")
            print("every HTTP response bit-identical to the fitting process: yes")

            # -- 5. binary transport: bit-identical, smaller, pipelined
            k = 80
            xs = np.linspace(0.0, 1.0, k)
            gx, gy = np.meshgrid(xs, xs, indexing="ij")
            grid = np.column_stack([gx.ravel(), gy.ravel()])  # the map to krige
            json_bytes = len(
                json.dumps(
                    {"model_id": MODEL_ID, "targets": grid.tolist()}
                ).encode()
            )
            binary_bytes = wire.encoded_length(
                {"model_id": MODEL_ID}, {"targets": grid}
            )
            with ServingClient(server.url, transport="binary") as bclient, \
                 ServingClient(server.url) as jclient:
                t0 = time.perf_counter()
                via_binary = bclient.predict(MODEL_ID, grid, deadline=30.0)
                binary_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                via_json = jclient.predict(MODEL_ID, grid, deadline=30.0)
                json_s = time.perf_counter() - t0
                assert np.array_equal(via_binary, via_json), \
                    "transports must be bit-identical"
                pipelined = bclient.predict_pipelined(
                    [{"model_id": MODEL_ID, "targets": t} for t in targets]
                )
                for got, ref in zip(pipelined, references):
                    assert np.array_equal(got, ref)
            print(
                f"binary transport: {k * k:,}-target map request "
                f"{json_bytes:,} B as JSON -> {binary_bytes:,} B framed "
                f"({json_bytes / binary_bytes:.1f}x smaller), "
                f"{json_s * 1e3:.0f} ms -> {binary_s * 1e3:.0f} ms, bit-identical"
            )
            print(f"pipelined {len(targets)} predicts on one connection: "
                  "all bit-identical")

            # -- 6. hot-reload under traffic
            refit = MLEstimator(locs, z, variant="tlr", acc=1e-7, tile_size=tuned.tile_size)
            fit2 = refit.fit(maxiter=60)  # the "nightly refit"
            new_path = refit.save_fit(fit2, Path(tmp) / f"{MODEL_ID}-v2.bundle")
            new_refs = [refit.predict(fit2, t) for t in targets]

            stop = False
            served = {"old": 0, "new": 0}

            def background_traffic() -> None:
                with ServingClient(server.url) as client:
                    while not stop:
                        out = client.predict(MODEL_ID, targets[0])
                        if np.array_equal(out, references[0]):
                            served["old"] += 1
                        else:
                            assert np.array_equal(out, new_refs[0])
                            served["new"] += 1

            with concurrent.futures.ThreadPoolExecutor(2) as pool:
                futures = [pool.submit(background_traffic) for _ in range(2)]
                time.sleep(0.05)
                with ServingClient(server.url) as admin:
                    t0 = time.perf_counter()
                    admin.reload(MODEL_ID, new_path)
                    reload_s = time.perf_counter() - t0
                time.sleep(0.05)
                stop = True
                for f in futures:
                    f.result()  # raises if any request failed mid-swap
            print(
                f"hot-reload in {reload_s * 1e3:.0f} ms under traffic: "
                f"{served['old']} old-engine + {served['new']} new-engine "
                f"answers, 0 failures"
            )
            assert np.array_equal(
                ServingClient(server.url).predict(MODEL_ID, targets[0]), new_refs[0]
            )
            print("post-reload traffic serves the re-fitted model: yes")

            # -- 7. reading a trace: where did one predict spend its time?
            with ServingClient(server.url) as client:
                ctx = trace_context.new_trace()
                with trace_context.activate(ctx):
                    client.predict(MODEL_ID, targets[0])
                tree = client.trace(ctx.trace_id)
                exposition = client.metrics(format="prometheus")

            print(f"trace {ctx.trace_id}: {tree['span_count']} spans")

            def show(node: dict, depth: int = 0) -> None:
                print(
                    f"  {'  ' * depth}{node['name']:<{30 - 2 * depth}} "
                    f"{node['duration'] * 1e3:8.3f} ms  (pid {node['pid']})"
                )
                for child in node["children"]:
                    show(child, depth + 1)

            for root in tree["tree"]:
                show(root)
            service_lines = [
                line for line in exposition.splitlines()
                if line.startswith("repro_service_") and "_bucket" not in line
            ]
            print("prometheus exposition (service family):")
            for line in service_lines:
                print(f"  {line}")


if __name__ == "__main__":
    main()
