"""Tests for distance metrics (Euclidean and great-circle)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ShapeError
from repro.kernels.distance import (
    EARTH_RADIUS_KM,
    euclidean_distance_matrix,
    great_circle_distance_matrix,
    haversine,
    pairwise_distance,
)


class TestEuclidean:
    def test_matches_bruteforce(self, rng):
        x = rng.random((40, 2))
        y = rng.random((25, 2))
        d = euclidean_distance_matrix(x, y)
        brute = np.sqrt(((x[:, None, :] - y[None, :, :]) ** 2).sum(-1))
        np.testing.assert_allclose(d, brute, atol=1e-12)

    def test_symmetric_zero_diagonal(self, rng):
        x = rng.random((30, 2))
        d = euclidean_distance_matrix(x)
        np.testing.assert_allclose(d, d.T, atol=1e-12)
        assert np.all(np.diag(d) == 0.0)

    def test_non_negative_despite_cancellation(self, rng):
        # Nearly identical points stress the expanded-square identity.
        base = rng.random((10, 2))
        x = np.vstack([base, base + 1e-12])
        d = euclidean_distance_matrix(x)
        assert np.all(d >= 0.0)

    def test_1d_and_3d(self, rng):
        x1 = rng.random((10, 1))
        assert euclidean_distance_matrix(x1).shape == (10, 10)
        x3 = rng.random((10, 3))
        assert euclidean_distance_matrix(x3).shape == (10, 10)

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            euclidean_distance_matrix(rng.random((5, 2)), rng.random((5, 3)))

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 12), st.just(2)),
            elements=st.floats(-100, 100),
        )
    )
    def test_metric_axioms(self, x):
        d = euclidean_distance_matrix(x)
        assert np.all(d >= 0)
        np.testing.assert_allclose(d, d.T, atol=1e-9)
        # Triangle inequality on all triples. The tolerance must scale
        # with the coordinate magnitude: the expanded-square identity
        # loses ~sqrt(||x||^2 * eps) absolute accuracy for nearly
        # coincident points far from the origin (e.g. points 1e-7 apart
        # at coordinate 8 come out ~1e-7 off), so a flat 1e-7 is tighter
        # than the documented algorithm can honor.
        tol = 1e-6 * (1.0 + float(np.abs(x).max()))
        n = d.shape[0]
        for i in range(n):
            assert np.all(d[i, :][None, :] <= d[i, :][:, None] + d + tol)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_equator_degrees(self):
        # Along the equator, the central angle equals the longitude gap.
        assert haversine(0.0, 0.0, 90.0, 0.0, unit="deg") == pytest.approx(90.0)

    def test_poles_km(self):
        # Pole to pole is half the great circle.
        d = haversine(0.0, 90.0, 0.0, -90.0, unit="km")
        assert d == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_known_city_pair(self):
        # Paris (2.3522E, 48.8566N) to New York (-74.0060, 40.7128): ~5837 km.
        d = haversine(2.3522, 48.8566, -74.0060, 40.7128, unit="km")
        assert d == pytest.approx(5837.0, rel=0.01)

    def test_radians_unit(self):
        assert haversine(0.0, 0.0, 180.0, 0.0, unit="rad") == pytest.approx(np.pi)

    def test_bad_unit(self):
        with pytest.raises(ShapeError):
            haversine(0.0, 0.0, 1.0, 1.0, unit="miles")

    @given(
        st.floats(-180, 180), st.floats(-89, 89), st.floats(-180, 180), st.floats(-89, 89)
    )
    def test_symmetry_and_range(self, lon1, lat1, lon2, lat2):
        d12 = haversine(lon1, lat1, lon2, lat2, unit="deg")
        d21 = haversine(lon2, lat2, lon1, lat1, unit="deg")
        assert d12 == pytest.approx(d21, abs=1e-9)
        assert 0.0 <= d12 <= 180.0 + 1e-9


class TestGreatCircleMatrix:
    def test_shape_and_diag(self, rng):
        pts = np.column_stack([rng.uniform(-90, 90, 20), rng.uniform(-45, 45, 20)])
        d = great_circle_distance_matrix(pts)
        assert d.shape == (20, 20)
        assert np.all(np.diag(d) == 0.0)
        np.testing.assert_allclose(d, d.T, atol=1e-9)

    def test_requires_lonlat(self, rng):
        with pytest.raises(ShapeError):
            great_circle_distance_matrix(rng.random((5, 3)))

    def test_cross_matrix(self, rng):
        a = np.column_stack([rng.uniform(0, 10, 6), rng.uniform(0, 10, 6)])
        b = np.column_stack([rng.uniform(0, 10, 4), rng.uniform(0, 10, 4)])
        assert great_circle_distance_matrix(a, b).shape == (6, 4)


class TestDispatch:
    def test_registry(self, rng):
        x = rng.random((8, 2))
        np.testing.assert_allclose(
            pairwise_distance(x, metric="euclidean"), euclidean_distance_matrix(x)
        )
        np.testing.assert_allclose(
            pairwise_distance(x, metric="gcd"), great_circle_distance_matrix(x)
        )

    def test_unknown_metric(self, rng):
        with pytest.raises(ShapeError, match="unknown metric"):
            pairwise_distance(rng.random((4, 2)), metric="chebyshev")
