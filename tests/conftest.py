"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance

# Keep property tests fast and robust under shared-CI load.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def small_locations() -> np.ndarray:
    """256 Morton-ordered irregular-grid locations on the unit square."""
    locs = generate_irregular_grid(256, seed=42)
    locs, _, _ = sort_locations(locs)
    return locs


@pytest.fixture(scope="session")
def matern_model() -> MaternCovariance:
    """Medium-correlation rough Matérn model, the paper's workhorse."""
    return MaternCovariance(1.0, 0.1, 0.5)


@pytest.fixture(scope="session")
def small_sigma(small_locations, matern_model) -> np.ndarray:
    """Exact covariance of the small location set."""
    return matern_model.matrix(small_locations)


@pytest.fixture(scope="session")
def small_field(small_locations, matern_model) -> np.ndarray:
    """One exact GP realization over the small location set."""
    return sample_gaussian_field(small_locations, matern_model, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(123)
