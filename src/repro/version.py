"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Version of the paper's software stack this package reproduces.
PAPER = (
    "Abdulah, Ltaief, Sun, Genton, Keyes — Parallel Approximation of the "
    "Maximum Likelihood Estimation for the Prediction of Large-Scale "
    "Geostatistics Simulations, IEEE CLUSTER 2018 (arXiv:1804.09137)"
)
